#include "embedding/compress.h"

#include <algorithm>
#include <cmath>

namespace mlfs {
namespace {

/// Writes `code` as dimension `j` of the packed row at `row`. The row
/// buffer must be zero-initialized; codes never straddle more than three
/// bytes (bits <= 16, shift <= 7).
inline void PutPackedCode(uint8_t* row, size_t j, int bits, uint32_t code) {
  const size_t bitpos = j * static_cast<size_t>(bits);
  const size_t byte = bitpos >> 3;
  const int shift = static_cast<int>(bitpos & 7);
  const uint32_t v = code << shift;
  row[byte] |= static_cast<uint8_t>(v & 0xff);
  if (shift + bits > 8) row[byte + 1] |= static_cast<uint8_t>((v >> 8) & 0xff);
  if (shift + bits > 16) {
    row[byte + 2] |= static_cast<uint8_t>((v >> 16) & 0xff);
  }
}

}  // namespace

uint32_t PackedCodeAt(const uint8_t* row, size_t j, int bits) {
  const size_t bitpos = j * static_cast<size_t>(bits);
  const size_t byte = bitpos >> 3;
  const int shift = static_cast<int>(bitpos & 7);
  uint32_t v = row[byte];
  if (shift + bits > 8) v |= static_cast<uint32_t>(row[byte + 1]) << 8;
  if (shift + bits > 16) v |= static_cast<uint32_t>(row[byte + 2]) << 16;
  return (v >> shift) & ((1u << bits) - 1u);
}

PackedDecodeTables MakeDecodeTables(int bits, const std::vector<float>& lo,
                                    const std::vector<float>& hi) {
  PackedDecodeTables tables;
  const size_t dim = lo.size();
  const double levels = static_cast<double>((1 << bits) - 1);
  tables.lo.resize(dim);
  tables.step.resize(dim);
  for (size_t j = 0; j < dim; ++j) {
    tables.lo[j] = static_cast<double>(lo[j]);
    // The range is computed in double: hi - lo can overflow *float* to
    // +inf for extreme ranges (e.g. ±FLT_MAX), which would make the step
    // infinite and collapse the dimension to lo. Double holds any
    // difference of two finite floats exactly enough.
    const double range = static_cast<double>(hi[j]) - static_cast<double>(lo[j]);
    tables.step[j] = bits > 0 && range > 0 ? range / levels : 0.0;
  }
  return tables;
}

PackedCodesView ViewOf(const PackedCodes& packed,
                       const PackedDecodeTables& tables) {
  PackedCodesView view;
  view.bits = packed.bits;
  view.n = packed.n;
  view.dim = packed.dim;
  view.row_bytes = packed.row_bytes;
  view.lo = tables.lo.data();
  view.step = tables.step.data();
  view.codes = packed.codes.data();
  return view;
}

StatusOr<PackedCodes> PackUniform(const float* data, size_t n, size_t dim,
                                  int bits) {
  if (bits < 1 || bits > 16) {
    return Status::InvalidArgument("bits must be in [1, 16]");
  }
  if (data == nullptr || n == 0 || dim == 0) {
    return Status::InvalidArgument("cannot quantize an empty matrix");
  }
  PackedCodes packed;
  packed.bits = bits;
  packed.n = n;
  packed.dim = dim;
  packed.row_bytes = (dim * static_cast<size_t>(bits) + 7) / 8;

  // Per-dimension ranges over *finite* values only: a single NaN/inf cell
  // must not poison its whole dimension's range.
  packed.lo.assign(dim, 0.0f);
  packed.hi.assign(dim, 0.0f);
  std::vector<bool> seen(dim, false);
  for (size_t i = 0; i < n; ++i) {
    const float* r = data + i * dim;
    for (size_t j = 0; j < dim; ++j) {
      if (!std::isfinite(r[j])) continue;
      if (!seen[j]) {
        packed.lo[j] = packed.hi[j] = r[j];
        seen[j] = true;
      } else {
        packed.lo[j] = std::min(packed.lo[j], r[j]);
        packed.hi[j] = std::max(packed.hi[j], r[j]);
      }
    }
  }

  const PackedDecodeTables tables = MakeDecodeTables(bits, packed.lo,
                                                     packed.hi);
  const double top = static_cast<double>((1 << bits) - 1);
  packed.codes.assign(n * packed.row_bytes, 0);
  for (size_t i = 0; i < n; ++i) {
    const float* r = data + i * dim;
    uint8_t* row = packed.codes.data() + i * packed.row_bytes;
    for (size_t j = 0; j < dim; ++j) {
      uint32_t code = 0;
      if (tables.step[j] > 0) {
        const double x = static_cast<double>(r[j]);
        // Saturating non-finite handling: NaN pins to the lo end, ±inf
        // clamp to the range bounds. The clamp runs in double *before*
        // any integer conversion, so std::lround never sees a NaN/inf
        // (UB) and the long -> int narrowing overflow of the old
        // cast-then-clamp order cannot happen.
        double q = std::isnan(x) ? 0.0 : (x - tables.lo[j]) / tables.step[j];
        q = std::clamp(std::isnan(q) ? 0.0 : q, 0.0, top);
        code = static_cast<uint32_t>(std::lround(q));
      }
      if (code != 0) PutPackedCode(row, j, bits, code);
    }
  }
  return packed;
}

void DequantizeRange(const PackedCodesView& view, size_t row0, size_t nrows,
                     float* out) {
  const size_t dim = view.dim;
  for (size_t r = 0; r < nrows; ++r) {
    const uint8_t* row = view.codes + (row0 + r) * view.row_bytes;
    float* dst = out + r * dim;
    if (view.bits == 8) {
      for (size_t j = 0; j < dim; ++j) {
        dst[j] = static_cast<float>(view.lo[j] + row[j] * view.step[j]);
      }
    } else {
      for (size_t j = 0; j < dim; ++j) {
        const uint32_t code = PackedCodeAt(row, j, view.bits);
        dst[j] = static_cast<float>(view.lo[j] + code * view.step[j]);
      }
    }
  }
}

double CompressionRatio(int bits, size_t n, size_t dim) {
  if (bits < 1 || n == 0 || dim == 0) return 0.0;
  const double raw = static_cast<double>(n) * dim * 4.0;
  const size_t row_bytes = (dim * static_cast<size_t>(bits) + 7) / 8;
  // Codes plus the per-dimension min/max floats the codec must retain to
  // dequantize (the storage QuantizeUniform's old 32/bits doc ignored).
  const double packed = static_cast<double>(n) * row_bytes + dim * 8.0;
  return raw / packed;
}

StatusOr<EmbeddingTablePtr> QuantizeUniform(const EmbeddingTable& table,
                                            int bits) {
  const size_t n = table.size();
  const size_t d = table.dim();
  if (n == 0) {
    return Status::InvalidArgument("cannot quantize an empty table");
  }
  std::vector<float> source;
  const float* data = nullptr;
  if (table.tiered()) {
    source.resize(n * d);
    for (size_t i = 0; i < n; ++i) table.CopyRow(i, source.data() + i * d);
    data = source.data();
  } else {
    data = table.raw().data();
  }
  MLFS_ASSIGN_OR_RETURN(PackedCodes packed, PackUniform(data, n, d, bits));
  const PackedDecodeTables tables = MakeDecodeTables(bits, packed.lo,
                                                     packed.hi);
  std::vector<float> out(n * d);
  DequantizeRange(ViewOf(packed, tables), 0, n, out.data());

  EmbeddingTableMetadata metadata = table.metadata();
  metadata.parent = table.metadata().VersionedName();
  metadata.version = 0;  // Unregistered derivative.
  metadata.notes = "uniform quantization to " + std::to_string(bits) +
                   " bits (ratio " +
                   std::to_string(CompressionRatio(bits, n, d)) + "x)";
  return table.WithVectors(std::move(metadata), std::move(out), d);
}

StatusOr<double> ReconstructionMse(const EmbeddingTable& a,
                                   const EmbeddingTable& b) {
  if (a.size() != b.size() || a.dim() != b.dim()) {
    return Status::InvalidArgument("tables have different shapes");
  }
  if (a.size() == 0) return 0.0;
  const size_t dim = a.dim();
  std::vector<float> row_a(dim), row_b(dim);
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    a.CopyRow(i, row_a.data());
    b.CopyRow(i, row_b.data());
    for (size_t j = 0; j < dim; ++j) {
      double diff = static_cast<double>(row_a[j]) - row_b[j];
      total += diff * diff;
    }
  }
  return total / static_cast<double>(a.size() * a.dim());
}

}  // namespace mlfs
