#include <algorithm>
#include <queue>

#include "embedding/ann.h"

namespace mlfs {
namespace {

class BruteForceIndex final : public AnnIndex {
 public:
  explicit BruteForceIndex(Metric metric) : metric_(metric) {}

  Status Build(const float* data, size_t n, size_t dim) override {
    if (data == nullptr || n == 0 || dim == 0) {
      return Status::InvalidArgument("brute-force index needs data");
    }
    if (data_ != nullptr) {
      return Status::FailedPrecondition("index already built");
    }
    data_ = data;
    n_ = n;
    dim_ = dim;
    return Status::OK();
  }

  StatusOr<std::vector<Neighbor>> Search(const float* query,
                                         size_t k) const override {
    if (data_ == nullptr) {
      return Status::FailedPrecondition("index not built");
    }
    if (query == nullptr || k == 0) {
      return Status::InvalidArgument("bad query");
    }
    k = std::min(k, n_);
    // Max-heap of the current best k (largest distance on top).
    std::priority_queue<std::pair<float, size_t>> heap;
    for (size_t i = 0; i < n_; ++i) {
      float d = Distance(metric_, query, data_ + i * dim_, dim_);
      if (heap.size() < k) {
        heap.emplace(d, i);
      } else if (d < heap.top().first) {
        heap.pop();
        heap.emplace(d, i);
      }
    }
    std::vector<Neighbor> out(heap.size());
    for (size_t i = heap.size(); i-- > 0;) {
      out[i] = {heap.top().first, heap.top().second};
      heap.pop();
    }
    return out;
  }

  std::string name() const override { return "brute_force"; }
  Metric metric() const override { return metric_; }

 private:
  Metric metric_;
  const float* data_ = nullptr;
  size_t n_ = 0;
  size_t dim_ = 0;
};

}  // namespace

std::string_view MetricToString(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "l2";
    case Metric::kInnerProduct:
      return "ip";
    case Metric::kCosine:
      return "cosine";
  }
  return "?";
}

std::unique_ptr<AnnIndex> MakeBruteForceIndex(Metric metric) {
  return std::make_unique<BruteForceIndex>(metric);
}

double RecallAtK(const std::vector<Neighbor>& result,
                 const std::vector<Neighbor>& ground_truth, size_t k) {
  if (k == 0 || ground_truth.empty()) return 0.0;
  size_t limit = std::min(k, ground_truth.size());
  size_t hits = 0;
  for (size_t i = 0; i < limit; ++i) {
    for (size_t j = 0; j < result.size() && j < k; ++j) {
      if (result[j].id == ground_truth[i].id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(limit);
}

}  // namespace mlfs
