#include <algorithm>
#include <cmath>
#include <queue>

#include "common/threadpool.h"
#include "embedding/ann.h"

namespace mlfs {
namespace {

/// Max-heap of the current best k (largest distance on top), updated in
/// ascending row order so ties resolve identically in Search/BatchSearch.
using BestHeap = std::priority_queue<std::pair<float, size_t>>;

std::vector<Neighbor> DrainHeap(BestHeap* heap) {
  std::vector<Neighbor> out(heap->size());
  for (size_t i = heap->size(); i-- > 0;) {
    out[i] = {heap->top().first, heap->top().second};
    heap->pop();
  }
  return out;
}

class BruteForceIndex final : public AnnIndex {
 public:
  explicit BruteForceIndex(Metric metric) : metric_(metric) {}

  Status Build(const float* data, size_t n, size_t dim) override {
    if (data == nullptr || n == 0 || dim == 0) {
      return Status::InvalidArgument("brute-force index needs data");
    }
    if (data_ != nullptr) {
      return Status::FailedPrecondition("index already built");
    }
    data_ = data;
    n_ = n;
    dim_ = dim;
    if (metric_ == Metric::kCosine) {
      // Per-row inverse norms so the batched scan computes cosine from one
      // dot product per (query, row) instead of three.
      inv_norms_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        float norm = L2Norm(data + i * dim, dim);
        inv_norms_[i] = norm == 0 ? 0.0f : 1.0f / norm;
      }
    }
    return Status::OK();
  }

  StatusOr<std::vector<Neighbor>> Search(const float* query,
                                         size_t k) const override {
    if (data_ == nullptr) {
      return Status::FailedPrecondition("index not built");
    }
    if (query == nullptr || k == 0) {
      return Status::InvalidArgument("bad query");
    }
    k = std::min(k, n_);
    BestHeap heap;
    for (size_t i = 0; i < n_; ++i) {
      float d = Distance(metric_, query, data_ + i * dim_, dim_);
      if (heap.size() < k) {
        heap.emplace(d, i);
      } else if (d < heap.top().first) {
        heap.pop();
        heap.emplace(d, i);
      }
    }
    return DrainHeap(&heap);
  }

  /// Query-tiled blocked scan: the row-major buffer is read once per tile
  /// of queries (not once per query), so each cache-resident data block is
  /// reused across the whole tile — the batch-1 scan is memory-bound at
  /// embedding scale, the tiled scan is compute-bound. With `pool`, tiles
  /// fan out across workers (each tile touches disjoint output slots).
  StatusOr<std::vector<std::vector<Neighbor>>> BatchSearch(
      const float* queries, size_t nq, size_t k,
      ThreadPool* pool) const override {
    if (data_ == nullptr) {
      return Status::FailedPrecondition("index not built");
    }
    if ((queries == nullptr && nq > 0) || k == 0) {
      return Status::InvalidArgument("bad query batch");
    }
    k = std::min(k, n_);
    std::vector<std::vector<Neighbor>> out(nq);
    const size_t num_tiles = (nq + kQueryTile - 1) / kQueryTile;
    auto scan_tile = [&](size_t tile) {
      const size_t q0 = tile * kQueryTile;
      const size_t q1 = std::min(q0 + kQueryTile, nq);
      const size_t tile_size = q1 - q0;
      BestHeap heaps[kQueryTile];
      float query_inv_norm[kQueryTile];
      if (metric_ == Metric::kCosine) {
        for (size_t q = 0; q < tile_size; ++q) {
          float norm = L2Norm(queries + (q0 + q) * dim_, dim_);
          query_inv_norm[q] = norm == 0 ? 0.0f : 1.0f / norm;
        }
      }
      for (size_t row0 = 0; row0 < n_; row0 += kRowBlock) {
        const size_t row1 = std::min(row0 + kRowBlock, n_);
        for (size_t q = 0; q < tile_size; ++q) {
          const float* query = queries + (q0 + q) * dim_;
          BestHeap& heap = heaps[q];
          for (size_t i = row0; i < row1; ++i) {
            const float* row = data_ + i * dim_;
            float d;
            switch (metric_) {
              case Metric::kL2:
                d = L2Squared(query, row, dim_);
                break;
              case Metric::kInnerProduct:
                d = -DotProduct(query, row, dim_);
                break;
              case Metric::kCosine:
                d = 1.0f - DotProduct(query, row, dim_) * inv_norms_[i] *
                               query_inv_norm[q];
                break;
            }
            if (heap.size() < k) {
              heap.emplace(d, i);
            } else if (d < heap.top().first) {
              heap.pop();
              heap.emplace(d, i);
            }
          }
        }
      }
      for (size_t q = 0; q < tile_size; ++q) {
        out[q0 + q] = DrainHeap(&heaps[q]);
      }
    };
    if (pool != nullptr && num_tiles > 1) {
      ParallelFor(pool, 0, num_tiles, scan_tile);
    } else {
      for (size_t tile = 0; tile < num_tiles; ++tile) scan_tile(tile);
    }
    return out;
  }

  std::string name() const override { return "brute_force"; }
  Metric metric() const override { return metric_; }
  size_t dim() const override { return dim_; }

 private:
  /// Queries per tile: enough reuse per data block to amortize the scan,
  /// small enough that a tile's heaps and norms stay register/L1 resident.
  static constexpr size_t kQueryTile = 16;
  /// Rows per block: 256 x 300d x 4B = 300KB worst case, L2-resident.
  static constexpr size_t kRowBlock = 256;

  Metric metric_;
  const float* data_ = nullptr;
  size_t n_ = 0;
  size_t dim_ = 0;
  std::vector<float> inv_norms_;  // Only populated for kCosine.
};

}  // namespace

StatusOr<std::vector<std::vector<Neighbor>>> AnnIndex::BatchSearch(
    const float* queries, size_t nq, size_t k, ThreadPool* pool) const {
  if ((queries == nullptr && nq > 0) || k == 0) {
    return Status::InvalidArgument("bad query batch");
  }
  const size_t stride = dim();
  if (stride == 0 && nq > 0) {
    return Status::FailedPrecondition("index not built");
  }
  std::vector<std::vector<Neighbor>> out(nq);
  auto search_one = [&](size_t i) -> Status {
    MLFS_ASSIGN_OR_RETURN(out[i], Search(queries + i * stride, k));
    return Status::OK();
  };
  if (pool != nullptr && nq > 1) {
    std::vector<Status> statuses(nq);
    ParallelFor(pool, 0, nq,
                [&](size_t i) { statuses[i] = search_one(i); });
    for (Status& s : statuses) {
      if (!s.ok()) return s;
    }
  } else {
    for (size_t i = 0; i < nq; ++i) {
      MLFS_RETURN_IF_ERROR(search_one(i));
    }
  }
  return out;
}

std::string_view MetricToString(Metric metric) {
  switch (metric) {
    case Metric::kL2:
      return "l2";
    case Metric::kInnerProduct:
      return "ip";
    case Metric::kCosine:
      return "cosine";
  }
  return "?";
}

std::unique_ptr<AnnIndex> MakeBruteForceIndex(Metric metric) {
  return std::make_unique<BruteForceIndex>(metric);
}

double RecallAtK(const std::vector<Neighbor>& result,
                 const std::vector<Neighbor>& ground_truth, size_t k) {
  if (k == 0 || ground_truth.empty()) return 0.0;
  size_t limit = std::min(k, ground_truth.size());
  size_t hits = 0;
  for (size_t i = 0; i < limit; ++i) {
    for (size_t j = 0; j < result.size() && j < k; ++j) {
      if (result[j].id == ground_truth[i].id) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(limit);
}

}  // namespace mlfs
