#ifndef MLFS_EMBEDDING_COMPRESS_H_
#define MLFS_EMBEDDING_COMPRESS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "embedding/embedding_table.h"

namespace mlfs {

/// Uniform scalar quantization of embedding matrices to `bits` per
/// dimension (1..16) with per-dimension min/max ranges — the compression
/// family studied by May et al. [18], whose downstream effect the
/// eigenspace overlap score predicts (paper §3.1.2).
///
/// Two forms share one codec:
///   - PackUniform produces *packed* codes (`bits` bits per dimension,
///     rows padded to a byte boundary) plus the per-dimension ranges —
///     the storage format of the out-of-core embedding tier.
///   - QuantizeUniform returns a new float32 table holding the
///     *dequantized* vectors (the historical API). It is implemented as
///     PackUniform + DequantizeRange, so its output is byte-identical to
///     what a packed cold tier serves at the same bit width.
///
/// Edge-case contract (pinned by tests/compress_codec_test.cc):
///   - Ranges are computed over *finite* values only; a dimension with no
///     finite value gets the empty range [0, 0].
///   - Non-finite inputs saturate: +inf encodes as the top code, -inf as
///     code 0, NaN as code 0 (the lo end). Quantization never propagates
///     NaN/inf into the dequantized output.
///   - The step and all rounding run in double, so extreme float ranges
///     (hi - lo overflowing float to +inf) and the int narrowing UB of a
///     float-domain lround are both impossible by construction.

/// Per-dimension codes packed LSB-first: dimension j of a row occupies
/// bits [j*bits, (j+1)*bits) of that row's `row_bytes`-byte code string.
struct PackedCodes {
  int bits = 0;
  size_t n = 0;
  size_t dim = 0;
  size_t row_bytes = 0;           // (dim * bits + 7) / 8
  std::vector<float> lo, hi;      // Per-dimension finite ranges.
  std::vector<uint8_t> codes;     // n * row_bytes.
};

/// Borrowed view of a packed matrix plus the precomputed double-domain
/// decode tables; what the dequantize kernels and the mmap'd tier operate
/// on (the codes may live in a memory-mapped file).
struct PackedCodesView {
  int bits = 0;
  size_t n = 0;
  size_t dim = 0;
  size_t row_bytes = 0;
  const double* lo = nullptr;    // dim entries (lo widened to double).
  const double* step = nullptr;  // dim entries; 0 for empty-range dims.
  const uint8_t* codes = nullptr;
};

/// Decode tables for a PackedCodes/tier file: lo widened to double and
/// step = (hi - lo) / (2^bits - 1) computed in double per dimension.
struct PackedDecodeTables {
  std::vector<double> lo, step;
};
PackedDecodeTables MakeDecodeTables(int bits, const std::vector<float>& lo,
                                    const std::vector<float>& hi);

/// Packs `data` (n x dim row-major) to `bits`-bit codes.
StatusOr<PackedCodes> PackUniform(const float* data, size_t n, size_t dim,
                                  int bits);

/// View over an owned PackedCodes (tables must outlive the view).
PackedCodesView ViewOf(const PackedCodes& packed,
                       const PackedDecodeTables& tables);

/// Dequantizes rows [row0, row0 + nrows) into `out` (nrows * dim floats).
void DequantizeRange(const PackedCodesView& view, size_t row0, size_t nrows,
                     float* out);

/// Code of dimension `j` in the packed row starting at `row` (test hook).
uint32_t PackedCodeAt(const uint8_t* row, size_t j, int bits);

/// Returns a new (unregistered) table holding the dequantized float
/// vectors, with parent lineage set to the source table.
StatusOr<EmbeddingTablePtr> QuantizeUniform(const EmbeddingTable& table,
                                            int bits);

/// Compression ratio of `bits`-bit packed quantization vs float32 for an
/// n x dim matrix, counting the per-dimension min/max range storage (two
/// float32 per dimension) and the per-row byte padding that a packed tier
/// actually pays — not the bare 32/bits code ratio.
double CompressionRatio(int bits, size_t n, size_t dim);

/// Mean squared reconstruction error between two same-shape tables.
/// Tier-aware: cold rows of a tiered table are compared at their served
/// (dequantized) values.
StatusOr<double> ReconstructionMse(const EmbeddingTable& a,
                                   const EmbeddingTable& b);

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_COMPRESS_H_
