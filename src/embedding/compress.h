#ifndef MLFS_EMBEDDING_COMPRESS_H_
#define MLFS_EMBEDDING_COMPRESS_H_

#include "common/status.h"
#include "embedding/embedding_table.h"

namespace mlfs {

/// Uniform scalar quantization of an embedding table to `bits` per
/// dimension (1..16), per-dimension min/max ranges — the compression family
/// studied by May et al. [18], whose downstream effect the eigenspace
/// overlap score predicts (paper §3.1.2). Returns a new (unregistered)
/// table holding the *dequantized* float vectors, with parent lineage set
/// to the source table.
StatusOr<EmbeddingTablePtr> QuantizeUniform(const EmbeddingTable& table,
                                            int bits);

/// Compression ratio of `bits`-bit quantization vs float32.
inline double CompressionRatio(int bits) { return 32.0 / bits; }

/// Mean squared reconstruction error between two same-shape tables.
StatusOr<double> ReconstructionMse(const EmbeddingTable& a,
                                   const EmbeddingTable& b);

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_COMPRESS_H_
