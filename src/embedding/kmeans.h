#ifndef MLFS_EMBEDDING_KMEANS_H_
#define MLFS_EMBEDDING_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace mlfs {

struct KMeansResult {
  size_t k = 0;
  size_t dim = 0;
  std::vector<float> centroids;     // k * dim.
  std::vector<uint32_t> assignment; // One per input point.
  double inertia = 0.0;             // Sum of squared distances to centroid.
  int iterations = 0;

  const float* centroid(size_t c) const { return centroids.data() + c * dim; }
};

/// Lloyd's k-means with k-means++ initialization over `n` points of
/// dimension `dim` (L2). Deterministic given `seed`. `k` is clamped to n.
/// Used as the coarse quantizer of the IVF index.
StatusOr<KMeansResult> KMeans(const float* data, size_t n, size_t dim,
                              size_t k, int max_iterations = 25,
                              uint64_t seed = 1);

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_KMEANS_H_
