#ifndef MLFS_EMBEDDING_TIER_H_
#define MLFS_EMBEDDING_TIER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "embedding/compress.h"

namespace mlfs {

/// Configuration of one table's cold tier.
struct EmbeddingTierOptions {
  /// Budget for the hot float32 arena (the only RAM the tier manages; the
  /// packed file is memory-mapped and the key index stays resident either
  /// way). 0 means no hot blocks: every read dequantizes.
  size_t memory_budget_bytes = 0;
  /// Bits per dimension in the packed cold tier (1..16).
  int bits = 8;
  /// Rows per block — the promotion/demotion and dequantization unit.
  size_t block_rows = 256;
  /// Directory the packed tier file is written into (required).
  std::string dir;
  /// Stem of the tier file name (a unique suffix is always appended).
  std::string file_stem = "tier";
  /// Tier files are scratch by default: deleted when the tier is
  /// destroyed. Snapshots embed the packed codes, not the file path.
  bool remove_file_on_destroy = true;
};

/// Monotonic tier counters plus a point-in-time occupancy snapshot.
struct EmbeddingTierStats {
  uint64_t hot_hits = 0;      // Rows served from the hot arena.
  uint64_t cold_misses = 0;   // Rows that needed a cold block.
  uint64_t promotions = 0;    // Cold blocks dequantized into the hot arena.
  uint64_t demotions = 0;     // Hot blocks evicted back to codes-only.
  uint64_t scans = 0;         // ScanBlocks passes (ANN scans).
  uint64_t scan_cold_blocks = 0;  // Blocks dequantized into scan scratch.
  uint64_t load_faults = 0;   // Injected embedding.tier.load failures.
  size_t hot_blocks = 0;
  size_t total_blocks = 0;
  size_t hot_limit_blocks = 0;
  size_t resident_bytes = 0;  // Hot arena bytes right now.
  size_t packed_bytes = 0;    // Size of the mmap'd tier file.
};

/// The out-of-core half of a tiered EmbeddingTable (MLKV-style): every row
/// lives scalar-quantized in a checksummed, memory-mapped file; a bounded
/// set of "hot" blocks additionally holds float32 rows in RAM. Reads are
/// served from the hot arena when possible and dequantized from the mapped
/// codes otherwise, with batch-aware promotion: all rows a MultiGet batch
/// touches in one block count as a single access, so one burst cannot
/// monopolize the LRU clock, and full scans (ScanBlocks) refresh hot
/// stamps without growing the hot set (scan-resistant — a brute-force ANN
/// pass must not evict the point-lookup working set).
///
/// File format ("MLET"):
///   [u32 magic][u32 version][u64 body_len][body][u64 fnv1a64(body)]
///   body: u32 bits, u64 n, u64 dim, u64 block_rows,
///         float lo[dim], float hi[dim], codes[n * row_bytes]
/// Everything is validated at open (magic, length, checksum, shape
/// arithmetic, finite ranges) so a truncated or bit-flipped file surfaces
/// as Status::Corruption, never UB. Written with WriteFileAtomic and
/// reopened via mmap — the same spill discipline as storage/segment.cc.
///
/// Pointer lifetime: pointers handed out by GetRow/MultiGetRows stay
/// valid until the *calling thread's* next GetRow/MultiGetRows on any
/// tier (a thread-local pin set keeps the backing blocks alive across
/// concurrent demotion); copy before issuing another read. Hot demotion
/// therefore never invalidates a pointer another thread just obtained.
///
/// Failpoints: "embedding.tier.spill" fires before the tier file is
/// written (Build/Restore fail cleanly); "embedding.tier.load" fires when
/// a read or scan needs a cold block (GetRow/ScanBlocks propagate the
/// injected status; MultiGetRows degrades the affected rows to misses).
///
/// Thread-safe; all mutable state is behind one mutex, dequantization
/// runs outside it.
class EmbeddingTier {
 public:
  /// Packs `data` (n x dim row-major float32), writes + maps the tier
  /// file, and seeds the hot arena with the first blocks that fit the
  /// budget, holding *exact* copies of `data` (a never-demoted row serves
  /// byte-identical floats; only demoted/cold rows pay quantization
  /// error).
  static StatusOr<std::unique_ptr<EmbeddingTier>> Build(
      const float* data, size_t n, size_t dim, EmbeddingTierOptions options);

  /// Rebuilds a tier from snapshot parts: the packed codes and the hot
  /// blocks (block id -> exact float rows) captured by HotBlocksSnapshot.
  static StatusOr<std::unique_ptr<EmbeddingTier>> Restore(
      PackedCodes packed,
      std::vector<std::pair<uint32_t, std::vector<float>>> hot_blocks,
      EmbeddingTierOptions options);

  ~EmbeddingTier();
  EmbeddingTier(const EmbeddingTier&) = delete;
  EmbeddingTier& operator=(const EmbeddingTier&) = delete;

  /// Row pointer (hot arena or freshly promoted block); see the pointer
  /// lifetime contract above.
  StatusOr<const float*> GetRow(size_t row) const;

  /// Batched lookup: out[i] points at rows[i]'s vector, or is null when
  /// rows[i] < 0 or its cold load was fault-injected. Each distinct block
  /// counts one access regardless of how many batch rows it serves.
  void MultiGetRows(std::span<const int64_t> rows,
                    std::vector<const float*>* out) const;

  /// Copies one row into `out` (dim floats) without promoting or pinning.
  void CopyRow(size_t row, float* out) const;

  /// Streams every row block-wise in ascending row order:
  /// fn(row0, nrows, rows) where `rows` is nrows x dim floats — the hot
  /// arena directly, or a per-call scratch for dequantized cold blocks.
  /// Refreshes hot stamps, never promotes.
  Status ScanBlocks(
      const std::function<void(size_t row0, size_t nrows, const float* rows)>&
          fn) const;

  size_t n() const { return n_; }
  size_t dim() const { return dim_; }
  int bits() const { return bits_; }
  size_t block_rows() const { return block_rows_; }
  size_t row_bytes() const { return row_bytes_; }
  size_t num_blocks() const { return blocks_count_; }
  size_t hot_limit_blocks() const { return hot_limit_; }
  const std::vector<float>& lo() const { return lo_f_; }
  const std::vector<float>& hi() const { return hi_f_; }
  /// The packed code section (n * row_bytes bytes, mmap-backed).
  const uint8_t* codes() const { return codes_; }
  const std::string& path() const { return path_; }

  /// Adjusts the hot arena capacity in blocks (cache policy, not data):
  /// shrinking demotes excess blocks immediately; growing lets future
  /// promotions fill the new room. The store uses this to take the arena
  /// away from superseded versions without rewriting tier files.
  void SetHotLimit(size_t blocks) const;

  EmbeddingTierStats stats() const;

  /// Current hot blocks as (block id, exact float rows) pairs — the
  /// mutable half of a snapshot (the immutable half is codes()/lo()/hi()).
  std::vector<std::pair<uint32_t, std::vector<float>>> HotBlocksSnapshot()
      const;

 private:
  using BlockData = std::shared_ptr<const std::vector<float>>;
  struct Block {
    BlockData data;      // Null = cold.
    uint64_t stamp = 0;  // Batch-granular LRU clock tick of last access.
  };

  EmbeddingTier() = default;

  /// Encodes the packed matrix into the checksummed blob, writes it via
  /// WriteFileAtomic, and memory-maps it back into this tier.
  Status WriteAndMap(const PackedCodes& packed, const EmbeddingTierOptions&
                     options);
  /// Validates the mapped blob and wires up codes_/lo/hi/steps.
  Status OpenMapped();

  /// Borrowed codec view over the mapped code section.
  PackedCodesView MapView() const;

  size_t BlockRow0(size_t b) const { return b * block_rows_; }
  size_t BlockRows(size_t b) const {
    return std::min(block_rows_, n_ - BlockRow0(b));
  }
  /// Dequantizes block `b` into a fresh buffer (no locks needed: the
  /// mapped codes are immutable).
  std::vector<float> LoadBlock(size_t b) const;
  /// Caller holds mu_. Evicts lowest-stamp hot blocks until the hot count
  /// is back under the limit.
  void EvictOverLimitLocked() const;

  // Codec geometry (immutable after open).
  int bits_ = 0;
  size_t n_ = 0;
  size_t dim_ = 0;
  size_t block_rows_ = 0;
  size_t row_bytes_ = 0;
  size_t blocks_count_ = 0;
  std::vector<float> lo_f_, hi_f_;
  PackedDecodeTables tables_;
  const uint8_t* codes_ = nullptr;

  // Mapped file.
  void* map_ = nullptr;
  size_t map_len_ = 0;
  std::string path_;
  bool remove_file_on_destroy_ = false;

  // Hot arena + counters (all under mu_ after construction).
  mutable std::mutex mu_;
  mutable size_t hot_limit_ = 0;
  mutable std::vector<Block> blocks_;
  mutable size_t hot_count_ = 0;
  mutable uint64_t tick_ = 0;
  mutable uint64_t hot_hits_ = 0, cold_misses_ = 0, promotions_ = 0,
                   demotions_ = 0, scans_ = 0, scan_cold_blocks_ = 0,
                   load_faults_ = 0;
};

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_TIER_H_
