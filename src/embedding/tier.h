#ifndef MLFS_EMBEDDING_TIER_H_
#define MLFS_EMBEDDING_TIER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "embedding/compress.h"
#include "io/block_cache.h"
#include "io/block_file.h"
#include "io/readahead.h"

namespace mlfs {

/// Configuration of one table's cold tier.
struct EmbeddingTierOptions {
  /// Budget for the hot float32 arena (the only RAM the tier manages; the
  /// packed file is memory-mapped and the key index stays resident either
  /// way). 0 means no hot blocks: every read dequantizes.
  size_t memory_budget_bytes = 0;
  /// Bits per dimension in the packed cold tier (1..16).
  int bits = 8;
  /// Rows per block — the promotion/demotion and dequantization unit.
  size_t block_rows = 256;
  /// Directory the packed tier file is written into (required).
  std::string dir;
  /// Stem of the tier file name (a unique suffix is always appended).
  std::string file_stem = "tier";
  /// Tier files are scratch by default: deleted when the tier is
  /// destroyed. Snapshots embed the packed codes, not the file path.
  bool remove_file_on_destroy = true;
  /// Async cold-block prefetch (io/readahead.h). Default-disabled;
  /// served bytes are identical either way (dequantization is
  /// deterministic), readahead only moves it off the serving thread.
  ReadaheadOptions readahead;
};

/// Monotonic tier counters plus a point-in-time occupancy snapshot.
struct EmbeddingTierStats {
  uint64_t hot_hits = 0;      // Rows served from the hot arena.
  uint64_t cold_misses = 0;   // Rows that needed a cold block.
  uint64_t promotions = 0;    // Cold blocks dequantized into the hot arena.
  uint64_t demotions = 0;     // Hot blocks evicted back to codes-only.
  uint64_t scans = 0;         // ScanBlocks passes (ANN scans).
  uint64_t scan_cold_blocks = 0;  // Blocks dequantized into scan scratch.
  uint64_t load_faults = 0;   // Injected embedding.tier.load failures.
  size_t hot_blocks = 0;
  size_t total_blocks = 0;
  size_t hot_limit_blocks = 0;
  size_t resident_bytes = 0;  // Hot arena bytes right now.
  size_t packed_bytes = 0;    // Size of the mmap'd tier file.
  ReadaheadStats readahead;   // Cold-block prefetch counters.
};

/// The out-of-core half of a tiered EmbeddingTable (MLKV-style): every row
/// lives scalar-quantized in a checksummed, memory-mapped file; a bounded
/// set of "hot" blocks additionally holds float32 rows in RAM. Reads are
/// served from the hot arena when possible and dequantized from the mapped
/// codes otherwise, with batch-aware promotion: all rows a MultiGet batch
/// touches in one block count as a single access, so one burst cannot
/// monopolize the LRU clock, and full scans (ScanBlocks) refresh hot
/// stamps without growing the hot set (scan-resistant — a brute-force ANN
/// pass must not evict the point-lookup working set).
///
/// Storage plumbing is the shared io/ subsystem: the packed file is a
/// BlockFile ("MLET" magic in the common envelope, spilled with the
/// WriteFileAtomic + mmap-reopen discipline and fully validated at open),
/// the hot arena is a BlockCache (batch-granular scan-resistant LRU with
/// the shared thread-local pin set), and cold-block prefetch runs on a
/// ReadaheadScheduler. This file owns only the quantization codec and the
/// row-addressing geometry.
///
///   body: u32 bits, u64 n, u64 dim, u64 block_rows,
///         float lo[dim], float hi[dim], codes[n * row_bytes]
///
/// Pointer lifetime: pointers handed out by GetRow/MultiGetRows stay
/// valid until the *calling thread's* next GetRow/MultiGetRows on any
/// tier (the BlockCache thread-local pin set keeps the backing blocks
/// alive across concurrent demotion); copy before issuing another read.
/// Hot demotion therefore never invalidates a pointer another thread
/// just obtained.
///
/// Failpoints: "embedding.tier.spill" fires before the tier file is
/// written (Build/Restore fail cleanly); "embedding.tier.load" fires when
/// a read or scan needs a cold block (GetRow/ScanBlocks propagate the
/// injected status; MultiGetRows degrades the affected rows to misses);
/// "io.load" (in BlockFile::Map) and "io.readahead" (in the scheduler)
/// fire underneath.
///
/// Thread-safe; the cache and scheduler carry their own locks,
/// dequantization runs outside all of them.
class EmbeddingTier {
 public:
  /// Packs `data` (n x dim row-major float32), writes + maps the tier
  /// file, and seeds the hot arena with the first blocks that fit the
  /// budget, holding *exact* copies of `data` (a never-demoted row serves
  /// byte-identical floats; only demoted/cold rows pay quantization
  /// error).
  static StatusOr<std::unique_ptr<EmbeddingTier>> Build(
      const float* data, size_t n, size_t dim, EmbeddingTierOptions options);

  /// Rebuilds a tier from snapshot parts: the packed codes and the hot
  /// blocks (block id -> exact float rows) captured by HotBlocksSnapshot.
  static StatusOr<std::unique_ptr<EmbeddingTier>> Restore(
      PackedCodes packed,
      std::vector<std::pair<uint32_t, std::vector<float>>> hot_blocks,
      EmbeddingTierOptions options);

  ~EmbeddingTier();
  EmbeddingTier(const EmbeddingTier&) = delete;
  EmbeddingTier& operator=(const EmbeddingTier&) = delete;

  /// Row pointer (hot arena or freshly promoted block); see the pointer
  /// lifetime contract above.
  StatusOr<const float*> GetRow(size_t row) const;

  /// Batched lookup: out[i] points at rows[i]'s vector, or is null when
  /// rows[i] < 0 or its cold load was fault-injected. Each distinct block
  /// counts one access regardless of how many batch rows it serves. With
  /// readahead enabled the back half of the batch's cold blocks
  /// dequantize on the scheduler while this thread does the front half.
  void MultiGetRows(std::span<const int64_t> rows,
                    std::vector<const float*>* out) const;

  /// Copies one row into `out` (dim floats) without promoting or pinning.
  void CopyRow(size_t row, float* out) const;

  /// Streams every row block-wise in ascending row order:
  /// fn(row0, nrows, rows) where `rows` is nrows x dim floats — the hot
  /// arena directly, or a per-call scratch for dequantized cold blocks.
  /// Refreshes hot stamps, never promotes. With readahead enabled the
  /// next cold block dequantizes on the scheduler while fn runs.
  Status ScanBlocks(
      const std::function<void(size_t row0, size_t nrows, const float* rows)>&
          fn) const;

  size_t n() const { return n_; }
  size_t dim() const { return dim_; }
  int bits() const { return bits_; }
  size_t block_rows() const { return block_rows_; }
  size_t row_bytes() const { return row_bytes_; }
  size_t num_blocks() const { return blocks_count_; }
  size_t hot_limit_blocks() const { return cache_->capacity(); }
  const std::vector<float>& lo() const { return lo_f_; }
  const std::vector<float>& hi() const { return hi_f_; }
  /// The packed code section (n * row_bytes bytes, mmap-backed).
  const uint8_t* codes() const { return codes_; }
  const std::string& path() const { return file_->path(); }

  /// Adjusts the hot arena capacity in blocks (cache policy, not data):
  /// shrinking demotes excess blocks immediately; growing lets future
  /// promotions fill the new room. The store uses this to take the arena
  /// away from superseded versions without rewriting tier files.
  void SetHotLimit(size_t blocks) const;

  EmbeddingTierStats stats() const;

  /// Current hot blocks as (block id, exact float rows) pairs — the
  /// mutable half of a snapshot (the immutable half is codes()/lo()/hi()).
  std::vector<std::pair<uint32_t, std::vector<float>>> HotBlocksSnapshot()
      const;

 private:
  using BlockData = std::shared_ptr<const std::vector<float>>;

  EmbeddingTier() = default;

  /// Encodes the packed matrix into the shared envelope, spills it via
  /// BlockFile (atomic write + mmap reopen), and wires up the cache and
  /// readahead scheduler.
  Status WriteAndMap(const PackedCodes& packed, const EmbeddingTierOptions&
                     options);
  /// Validates the mapped body and wires up codes_/lo/hi/steps.
  Status ParseBody();

  /// Borrowed codec view over the mapped code section.
  PackedCodesView MapView() const;

  size_t BlockRow0(size_t b) const { return b * block_rows_; }
  size_t BlockRows(size_t b) const {
    return std::min(block_rows_, n_ - BlockRow0(b));
  }
  size_t BlockBytes(size_t b) const {
    return BlockRows(b) * dim_ * sizeof(float);
  }
  /// Dequantizes block `b` into a fresh buffer (no locks needed: the
  /// mapped codes are immutable).
  std::vector<float> LoadBlock(size_t b) const;
  /// LoadBlock as a cache payload (what readahead jobs materialize).
  BlockCache::Payload LoadBlockPayload(size_t b) const {
    return std::make_shared<const std::vector<float>>(LoadBlock(b));
  }
  static const float* BlockFloats(const BlockCache::Payload& p) {
    return static_cast<const std::vector<float>*>(p.get())->data();
  }

  // Codec geometry (immutable after open).
  int bits_ = 0;
  size_t n_ = 0;
  size_t dim_ = 0;
  size_t block_rows_ = 0;
  size_t row_bytes_ = 0;
  size_t blocks_count_ = 0;
  std::vector<float> lo_f_, hi_f_;
  PackedDecodeTables tables_;
  const uint8_t* codes_ = nullptr;

  // The mapped tier file; declared before the cache and scheduler so
  // in-flight readahead jobs (which read the mapped codes) drain first.
  BlockFilePtr file_;
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<ReadaheadScheduler> readahead_;

  // Tier-specific counters (the cache and scheduler keep their own).
  mutable std::atomic<uint64_t> scans_{0};
  mutable std::atomic<uint64_t> scan_cold_blocks_{0};
  mutable std::atomic<uint64_t> load_faults_{0};
};

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_TIER_H_
