#include <algorithm>
#include <queue>

#include "embedding/ann.h"
#include "embedding/kmeans.h"

namespace mlfs {
namespace {

class IvfIndex final : public AnnIndex {
 public:
  explicit IvfIndex(IvfOptions options) : options_(options) {}

  Status Build(const float* data, size_t n, size_t dim) override {
    if (data == nullptr || n == 0 || dim == 0) {
      return Status::InvalidArgument("IVF index needs data");
    }
    if (data_ != nullptr) {
      return Status::FailedPrecondition("index already built");
    }
    if (options_.nlist == 0 || options_.nprobe == 0) {
      return Status::InvalidArgument("IVF needs nlist > 0 and nprobe > 0");
    }
    MLFS_ASSIGN_OR_RETURN(
        KMeansResult km,
        KMeans(data, n, dim, options_.nlist, options_.kmeans_iterations,
               options_.seed));
    centroids_ = std::move(km.centroids);
    nlist_ = km.k;
    lists_.assign(nlist_, {});
    for (size_t i = 0; i < n; ++i) {
      lists_[km.assignment[i]].push_back(i);
    }
    data_ = data;
    n_ = n;
    dim_ = dim;
    return Status::OK();
  }

  StatusOr<std::vector<Neighbor>> Search(const float* query,
                                         size_t k) const override {
    if (data_ == nullptr) {
      return Status::FailedPrecondition("index not built");
    }
    if (query == nullptr || k == 0) {
      return Status::InvalidArgument("bad query");
    }
    // Rank cells by centroid distance; probe the closest nprobe.
    std::vector<std::pair<float, size_t>> cells(nlist_);
    for (size_t c = 0; c < nlist_; ++c) {
      cells[c] = {L2Squared(query, centroids_.data() + c * dim_, dim_), c};
    }
    size_t probes = std::min(options_.nprobe, nlist_);
    std::partial_sort(cells.begin(), cells.begin() + probes, cells.end());

    std::priority_queue<std::pair<float, size_t>> heap;
    for (size_t p = 0; p < probes; ++p) {
      for (size_t id : lists_[cells[p].second]) {
        float d = L2Squared(query, data_ + id * dim_, dim_);
        if (heap.size() < k) {
          heap.emplace(d, id);
        } else if (d < heap.top().first) {
          heap.pop();
          heap.emplace(d, id);
        }
      }
    }
    std::vector<Neighbor> out(heap.size());
    for (size_t i = heap.size(); i-- > 0;) {
      out[i] = {heap.top().first, heap.top().second};
      heap.pop();
    }
    return out;
  }

  std::string name() const override {
    return "ivf_flat(nlist=" + std::to_string(options_.nlist) +
           ",nprobe=" + std::to_string(options_.nprobe) + ")";
  }
  Metric metric() const override { return Metric::kL2; }
  size_t dim() const override { return dim_; }

 private:
  IvfOptions options_;
  const float* data_ = nullptr;
  size_t n_ = 0;
  size_t dim_ = 0;
  size_t nlist_ = 0;
  std::vector<float> centroids_;
  std::vector<std::vector<size_t>> lists_;
};

}  // namespace

std::unique_ptr<AnnIndex> MakeIvfIndex(IvfOptions options) {
  return std::make_unique<IvfIndex>(options);
}

}  // namespace mlfs
