#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/threadpool.h"
#include "embedding/ann.h"

namespace mlfs {
namespace {

/// Epoch-stamped visited set: marking every node unvisited is one epoch
/// bump instead of an O(n) allocation + clear per query. The stamp array
/// is allocated once and reused across queries — during Build this turns
/// the insert loop from effectively quadratic (n queries x O(n) clears)
/// into linear bookkeeping, and during serving it keeps the search
/// allocation-free.
class VisitedPool {
 public:
  /// Starts a new query over `n` nodes.
  void BeginQuery(size_t n) {
    if (stamps_.size() < n) {
      stamps_.assign(n, 0);
      epoch_ = 0;
    }
    if (++epoch_ == 0) {  // Stamp wraparound: one O(n) clear every 2^32.
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Marks `id` visited; returns true on first visit this query.
  bool Visit(uint32_t id) {
    if (stamps_[id] == epoch_) return false;
    stamps_[id] = epoch_;
    return true;
  }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 0;
};

/// Hierarchical Navigable Small World graph (Malkov & Yashunin, 2018):
/// multi-layer proximity graph with greedy descent. Neighbor selection
/// uses the simple closest-M heuristic, which is adequate at the scales
/// the benchmarks exercise (<= a few hundred thousand vectors).
class HnswIndex final : public AnnIndex {
 public:
  explicit HnswIndex(HnswOptions options) : options_(options) {}

  Status Build(const float* data, size_t n, size_t dim) override {
    if (data == nullptr || n == 0 || dim == 0) {
      return Status::InvalidArgument("HNSW index needs data");
    }
    if (data_ != nullptr) {
      return Status::FailedPrecondition("index already built");
    }
    if (options_.m < 2 || options_.ef_construction < options_.m) {
      return Status::InvalidArgument(
          "HNSW needs m >= 2 and ef_construction >= m");
    }
    data_ = data;
    n_ = n;
    dim_ = dim;
    nodes_.resize(n);
    Rng rng(options_.seed);
    const double ml = 1.0 / std::log(static_cast<double>(options_.m));
    for (size_t i = 0; i < n; ++i) {
      double u = rng.UniformDouble();
      if (u < 1e-12) u = 1e-12;
      int level = static_cast<int>(-std::log(u) * ml);
      nodes_[i].links.resize(level + 1);
    }
    entry_ = 0;
    // Build is single-threaded; one pool serves every insert.
    VisitedPool pool;
    for (size_t i = 0; i < n; ++i) Insert(i, &pool);
    return Status::OK();
  }

  StatusOr<std::vector<Neighbor>> Search(const float* query,
                                         size_t k) const override {
    if (data_ == nullptr) {
      return Status::FailedPrecondition("index not built");
    }
    if (query == nullptr || k == 0) {
      return Status::InvalidArgument("bad query");
    }
    return SearchWithPool(query, k, &LocalPool());
  }

  /// Batched search: one visited pool per worker (thread-local), queries
  /// fanned out over `pool` when provided. Results are identical to the
  /// per-query loop — the pool only changes bookkeeping, not traversal.
  StatusOr<std::vector<std::vector<Neighbor>>> BatchSearch(
      const float* queries, size_t nq, size_t k,
      ThreadPool* pool) const override {
    if (data_ == nullptr) {
      return Status::FailedPrecondition("index not built");
    }
    if ((queries == nullptr && nq > 0) || k == 0) {
      return Status::InvalidArgument("bad query batch");
    }
    std::vector<std::vector<Neighbor>> out(nq);
    auto search_one = [&](size_t i) {
      out[i] = SearchWithPool(queries + i * dim_, k, &LocalPool());
    };
    if (pool != nullptr && nq > 1) {
      ParallelFor(pool, 0, nq, search_one);
    } else {
      for (size_t i = 0; i < nq; ++i) search_one(i);
    }
    return out;
  }

  std::string name() const override {
    return "hnsw(m=" + std::to_string(options_.m) +
           ",ef=" + std::to_string(options_.ef_search) + ")";
  }
  Metric metric() const override { return options_.metric; }
  size_t dim() const override { return dim_; }

 private:
  struct Node {
    // links[level] = neighbor ids at that level.
    std::vector<std::vector<uint32_t>> links;
  };

  /// Per-thread visited pool: Search stays thread-safe and allocation-free
  /// after warmup. Shared across HnswIndex instances on a thread, which is
  /// fine — BeginQuery re-sizes and re-stamps as needed.
  static VisitedPool& LocalPool() {
    thread_local VisitedPool pool;
    return pool;
  }

  int TopLevel(size_t id) const {
    return static_cast<int>(nodes_[id].links.size()) - 1;
  }

  float Dist(const float* a, const float* b) const {
    return Distance(options_.metric, a, b, dim_);
  }
  const float* Vec(size_t id) const { return data_ + id * dim_; }

  std::vector<Neighbor> SearchWithPool(const float* query, size_t k,
                                       VisitedPool* pool) const {
    size_t ep = entry_;
    for (int level = TopLevel(entry_); level > 0; --level) {
      ep = GreedyClosest(query, ep, level);
    }
    auto candidates =
        SearchLayer(query, ep, std::max(options_.ef_search, k), 0, pool);
    std::sort(candidates.begin(), candidates.end());
    size_t take = std::min(k, candidates.size());
    std::vector<Neighbor> out;
    out.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out.push_back({candidates[i].first, candidates[i].second});
    }
    return out;
  }

  size_t GreedyClosest(const float* query, size_t start, int level) const {
    size_t current = start;
    float best = Dist(query, Vec(current));
    bool improved = true;
    while (improved) {
      improved = false;
      for (uint32_t neighbor : nodes_[current].links[level]) {
        float d = Dist(query, Vec(neighbor));
        if (d < best) {
          best = d;
          current = neighbor;
          improved = true;
        }
      }
    }
    return current;
  }

  // Best-first search returning up to `ef` (distance, id) pairs.
  std::vector<std::pair<float, uint32_t>> SearchLayer(const float* query,
                                                      size_t entry, size_t ef,
                                                      int level,
                                                      VisitedPool* pool) const {
    pool->BeginQuery(n_);
    // Min-heap of candidates to expand; max-heap of current best.
    using DistId = std::pair<float, uint32_t>;
    std::priority_queue<DistId, std::vector<DistId>, std::greater<>>
        candidates;
    std::priority_queue<DistId> best;
    float d0 = Dist(query, Vec(entry));
    candidates.emplace(d0, static_cast<uint32_t>(entry));
    best.emplace(d0, static_cast<uint32_t>(entry));
    pool->Visit(static_cast<uint32_t>(entry));
    while (!candidates.empty()) {
      auto [d, id] = candidates.top();
      if (d > best.top().first && best.size() >= ef) break;
      candidates.pop();
      const std::vector<uint32_t>& links = nodes_[id].links[level];
      // The neighbor vectors are the cache misses of this loop: pull the
      // next few in while the current distance computes.
      constexpr size_t kLookahead = 4;
      for (size_t i = 0; i < links.size() && i < kLookahead; ++i) {
        __builtin_prefetch(Vec(links[i]));
      }
      for (size_t i = 0; i < links.size(); ++i) {
        if (i + kLookahead < links.size()) {
          __builtin_prefetch(Vec(links[i + kLookahead]));
        }
        uint32_t neighbor = links[i];
        if (!pool->Visit(neighbor)) continue;
        float dn = Dist(query, Vec(neighbor));
        if (best.size() < ef || dn < best.top().first) {
          candidates.emplace(dn, neighbor);
          best.emplace(dn, neighbor);
          if (best.size() > ef) best.pop();
        }
      }
    }
    std::vector<DistId> out(best.size());
    for (size_t i = best.size(); i-- > 0;) {
      out[i] = best.top();
      best.pop();
    }
    return out;
  }

  void Insert(size_t id, VisitedPool* pool) {
    if (id == 0) return;  // Node 0 is the initial entry point.
    const float* x = Vec(id);
    const int node_level = TopLevel(id);
    const int max_level = TopLevel(entry_);
    size_t ep = entry_;
    for (int level = max_level; level > node_level; --level) {
      ep = GreedyClosest(x, ep, level);
    }
    for (int level = std::min(node_level, max_level); level >= 0; --level) {
      auto candidates =
          SearchLayer(x, ep, options_.ef_construction, level, pool);
      std::sort(candidates.begin(), candidates.end());
      const size_t max_degree = level == 0 ? options_.m * 2 : options_.m;
      size_t take = std::min(options_.m, candidates.size());
      for (size_t i = 0; i < take; ++i) {
        uint32_t neighbor = candidates[i].second;
        if (neighbor == id) continue;
        nodes_[id].links[level].push_back(neighbor);
        auto& back_links = nodes_[neighbor].links[level];
        back_links.push_back(static_cast<uint32_t>(id));
        if (back_links.size() > max_degree) {
          PruneLinks(neighbor, level, max_degree);
        }
      }
      if (!candidates.empty()) ep = candidates.front().second;
    }
    if (node_level > max_level) entry_ = id;
  }

  // Keeps the closest `max_degree` links of `id` at `level`.
  void PruneLinks(size_t id, int level, size_t max_degree) {
    auto& links = nodes_[id].links[level];
    const float* x = Vec(id);
    std::sort(links.begin(), links.end(),
              [&](uint32_t a, uint32_t b) {
                return Dist(x, Vec(a)) < Dist(x, Vec(b));
              });
    links.resize(max_degree);
  }

  HnswOptions options_;
  const float* data_ = nullptr;
  size_t n_ = 0;
  size_t dim_ = 0;
  std::vector<Node> nodes_;
  size_t entry_ = 0;
};

}  // namespace

std::unique_ptr<AnnIndex> MakeHnswIndex(HnswOptions options) {
  return std::make_unique<HnswIndex>(options);
}

}  // namespace mlfs
