#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "embedding/ann.h"

namespace mlfs {
namespace {

/// Hierarchical Navigable Small World graph (Malkov & Yashunin, 2018):
/// multi-layer proximity graph with greedy descent. Neighbor selection
/// uses the simple closest-M heuristic, which is adequate at the scales
/// the benchmarks exercise (<= a few hundred thousand vectors).
class HnswIndex final : public AnnIndex {
 public:
  explicit HnswIndex(HnswOptions options) : options_(options) {}

  Status Build(const float* data, size_t n, size_t dim) override {
    if (data == nullptr || n == 0 || dim == 0) {
      return Status::InvalidArgument("HNSW index needs data");
    }
    if (data_ != nullptr) {
      return Status::FailedPrecondition("index already built");
    }
    if (options_.m < 2 || options_.ef_construction < options_.m) {
      return Status::InvalidArgument(
          "HNSW needs m >= 2 and ef_construction >= m");
    }
    data_ = data;
    n_ = n;
    dim_ = dim;
    nodes_.resize(n);
    Rng rng(options_.seed);
    const double ml = 1.0 / std::log(static_cast<double>(options_.m));
    for (size_t i = 0; i < n; ++i) {
      double u = rng.UniformDouble();
      if (u < 1e-12) u = 1e-12;
      int level = static_cast<int>(-std::log(u) * ml);
      nodes_[i].links.resize(level + 1);
    }
    entry_ = 0;
    for (size_t i = 0; i < n; ++i) Insert(i);
    return Status::OK();
  }

  StatusOr<std::vector<Neighbor>> Search(const float* query,
                                         size_t k) const override {
    if (data_ == nullptr) {
      return Status::FailedPrecondition("index not built");
    }
    if (query == nullptr || k == 0) {
      return Status::InvalidArgument("bad query");
    }
    size_t ep = entry_;
    for (int level = TopLevel(entry_); level > 0; --level) {
      ep = GreedyClosest(query, ep, level);
    }
    auto candidates =
        SearchLayer(query, ep, std::max(options_.ef_search, k), 0);
    std::sort(candidates.begin(), candidates.end());
    size_t take = std::min(k, candidates.size());
    std::vector<Neighbor> out;
    out.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      out.push_back({candidates[i].first, candidates[i].second});
    }
    return out;
  }

  std::string name() const override {
    return "hnsw(m=" + std::to_string(options_.m) +
           ",ef=" + std::to_string(options_.ef_search) + ")";
  }
  Metric metric() const override { return options_.metric; }

 private:
  struct Node {
    // links[level] = neighbor ids at that level.
    std::vector<std::vector<uint32_t>> links;
  };

  int TopLevel(size_t id) const {
    return static_cast<int>(nodes_[id].links.size()) - 1;
  }

  float Dist(const float* a, const float* b) const {
    return Distance(options_.metric, a, b, dim_);
  }
  const float* Vec(size_t id) const { return data_ + id * dim_; }

  size_t GreedyClosest(const float* query, size_t start, int level) const {
    size_t current = start;
    float best = Dist(query, Vec(current));
    bool improved = true;
    while (improved) {
      improved = false;
      for (uint32_t neighbor : nodes_[current].links[level]) {
        float d = Dist(query, Vec(neighbor));
        if (d < best) {
          best = d;
          current = neighbor;
          improved = true;
        }
      }
    }
    return current;
  }

  // Best-first search returning up to `ef` (distance, id) pairs.
  std::vector<std::pair<float, uint32_t>> SearchLayer(const float* query,
                                                      size_t entry, size_t ef,
                                                      int level) const {
    std::vector<bool> visited(n_, false);
    // Min-heap of candidates to expand; max-heap of current best.
    using DistId = std::pair<float, uint32_t>;
    std::priority_queue<DistId, std::vector<DistId>, std::greater<>>
        candidates;
    std::priority_queue<DistId> best;
    float d0 = Dist(query, Vec(entry));
    candidates.emplace(d0, static_cast<uint32_t>(entry));
    best.emplace(d0, static_cast<uint32_t>(entry));
    visited[entry] = true;
    while (!candidates.empty()) {
      auto [d, id] = candidates.top();
      if (d > best.top().first && best.size() >= ef) break;
      candidates.pop();
      for (uint32_t neighbor : nodes_[id].links[level]) {
        if (visited[neighbor]) continue;
        visited[neighbor] = true;
        float dn = Dist(query, Vec(neighbor));
        if (best.size() < ef || dn < best.top().first) {
          candidates.emplace(dn, neighbor);
          best.emplace(dn, neighbor);
          if (best.size() > ef) best.pop();
        }
      }
    }
    std::vector<DistId> out(best.size());
    for (size_t i = best.size(); i-- > 0;) {
      out[i] = best.top();
      best.pop();
    }
    return out;
  }

  void Insert(size_t id) {
    if (id == 0) return;  // Node 0 is the initial entry point.
    const float* x = Vec(id);
    const int node_level = TopLevel(id);
    const int max_level = TopLevel(entry_);
    size_t ep = entry_;
    for (int level = max_level; level > node_level; --level) {
      ep = GreedyClosest(x, ep, level);
    }
    for (int level = std::min(node_level, max_level); level >= 0; --level) {
      auto candidates = SearchLayer(x, ep, options_.ef_construction, level);
      std::sort(candidates.begin(), candidates.end());
      const size_t max_degree = level == 0 ? options_.m * 2 : options_.m;
      size_t take = std::min(options_.m, candidates.size());
      for (size_t i = 0; i < take; ++i) {
        uint32_t neighbor = candidates[i].second;
        if (neighbor == id) continue;
        nodes_[id].links[level].push_back(neighbor);
        auto& back_links = nodes_[neighbor].links[level];
        back_links.push_back(static_cast<uint32_t>(id));
        if (back_links.size() > max_degree) {
          PruneLinks(neighbor, level, max_degree);
        }
      }
      if (!candidates.empty()) ep = candidates.front().second;
    }
    if (node_level > max_level) entry_ = id;
  }

  // Keeps the closest `max_degree` links of `id` at `level`.
  void PruneLinks(size_t id, int level, size_t max_degree) {
    auto& links = nodes_[id].links[level];
    const float* x = Vec(id);
    std::sort(links.begin(), links.end(),
              [&](uint32_t a, uint32_t b) {
                return Dist(x, Vec(a)) < Dist(x, Vec(b));
              });
    links.resize(max_degree);
  }

  HnswOptions options_;
  const float* data_ = nullptr;
  size_t n_ = 0;
  size_t dim_ = 0;
  std::vector<Node> nodes_;
  size_t entry_ = 0;
};

}  // namespace

std::unique_ptr<AnnIndex> MakeHnswIndex(HnswOptions options) {
  return std::make_unique<HnswIndex>(options);
}

}  // namespace mlfs
