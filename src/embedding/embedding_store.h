#ifndef MLFS_EMBEDDING_EMBEDDING_STORE_H_
#define MLFS_EMBEDDING_EMBEDDING_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "embedding/embedding_table.h"
#include "lineage/lineage_graph.h"

namespace mlfs {

/// Versioned catalog of embedding tables: registration, retrieval by
/// version, and lineage — the embedding-native half of the feature store
/// the paper calls for ("support for versioning, provenance, and
/// downstream quality metrics", §4).
///
/// Tables are immutable; "updating" an embedding means registering a new
/// version. Consumers pin versions (see ModelRegistry), which is what makes
/// version skew detectable.
///
/// Every registration is recorded in a LineageGraph: the table itself as an
/// `embedding` artifact, its metadata().parent as a `derived_from` (or
/// `patched_into`, for PatchEmbedding outputs) edge, and its
/// training_source as a `trained_on` edge. Registering version K also marks
/// version K-1 superseded, fanning a StalenessEvent out to its transitive
/// consumers. Lineage() is a walk over that graph; parent chains have no
/// second, private representation.
class EmbeddingStore {
 public:
  /// `lineage` (not owned) is the shared cross-layer graph; when null the
  /// store owns a private graph (standalone use in tests/tools).
  explicit EmbeddingStore(LineageGraph* lineage = nullptr);

  /// Registers `table` under its metadata().name; assigns and returns the
  /// new version number. `registered_at` stamps metadata().created_at if
  /// unset.
  StatusOr<int> Register(const EmbeddingTablePtr& table,
                         Timestamp registered_at);

  /// Latest version of `name`.
  StatusOr<EmbeddingTablePtr> GetLatest(const std::string& name) const;

  StatusOr<EmbeddingTablePtr> GetVersion(const std::string& name,
                                         int version) const;

  /// Parses "name@vK" (or bare "name" = latest).
  StatusOr<EmbeddingTablePtr> Resolve(const std::string& reference) const;

  std::vector<std::string> Names() const;
  /// All versions of `name`, ascending.
  StatusOr<std::vector<EmbeddingTablePtr>> Versions(
      const std::string& name) const;

  /// Chain of ancestors starting at "name@vK" (inclusive), following
  /// `derived_from`/`patched_into` lineage edges up to the root table.
  StatusOr<std::vector<std::string>> Lineage(
      const std::string& reference) const;

  /// Marks the latest version of `name` deprecated: emits a kDeprecated
  /// StalenessEvent fanned out to its transitive downstream consumers.
  Status Deprecate(const std::string& name, Timestamp now);

  size_t num_tables() const;

  /// The lineage graph this store records into (shared or owned).
  LineageGraph& lineage_graph() { return *lineage_; }
  const LineageGraph& lineage_graph() const { return *lineage_; }

  /// Serializes every version of every table (metadata, keys, vectors).
  std::string Snapshot() const;

  /// Restores a Snapshot() into this (empty) store, preserving version
  /// numbers and re-recording lineage edges (without re-emitting
  /// staleness events — restore the graph's own snapshot for those).
  Status Restore(std::string_view snapshot);

 private:
  /// Records `table` (already version-stamped) into the lineage graph.
  void RecordLineage(const EmbeddingTableMetadata& metadata,
                     int previous_version);

  mutable std::mutex mu_;
  std::map<std::string, std::vector<EmbeddingTablePtr>> tables_;
  std::unique_ptr<LineageGraph> owned_lineage_;
  LineageGraph* lineage_;  // Shared (not owned) or owned_lineage_.get().
};

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_EMBEDDING_STORE_H_
