#ifndef MLFS_EMBEDDING_EMBEDDING_STORE_H_
#define MLFS_EMBEDDING_EMBEDDING_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "embedding/embedding_table.h"
#include "embedding/tier.h"
#include "lineage/lineage_graph.h"

namespace mlfs {

/// Store-wide out-of-core policy for registered embedding tables.
struct EmbeddingTierPolicy {
  /// Total float32 RAM the store may spend on registered embedding
  /// vectors. 0 disables tiering (every table stays resident — the
  /// historical behavior). When set, registration spills whatever does
  /// not fit into packed quantized tier files: the newest version of each
  /// name gets hot-arena budget first, superseded versions go fully cold.
  size_t memory_budget_bytes = 0;
  /// Bits per dimension for spilled tables (1..16).
  int bits = 8;
  /// Bits per dimension for superseded versions demoted to fully-cold
  /// tiers (1..16). Old versions are kept only for pinned consumers and
  /// reproducibility audits, so they can tolerate coarser quantization
  /// than the serving version. 0 keeps `bits` for superseded versions
  /// too. Applies when a resident superseded version is demoted; tables
  /// that were already tiered keep their original packing.
  int superseded_bits = 0;
  /// Rows per tier block.
  size_t block_rows = 256;
  /// Where tier files are written; empty means
  /// <system temp dir>/mlfs_emb. Files are removed with their tables.
  std::string spill_dir;
  /// Async cold-block readahead for every tier created under this policy
  /// (see ReadaheadOptions; disabled by default).
  ReadaheadOptions readahead;
};

/// Aggregate tiering counters across every table version in the store.
struct EmbeddingStoreTierStats {
  size_t tiered_tables = 0;
  size_t resident_tables = 0;
  /// Registrations kept resident because the tier spill failed (fault
  /// injection or I/O error) — tiering degrades, never drops data.
  uint64_t spill_errors = 0;
  /// Snapshot restores that fell back to a resident table because the
  /// tier file could not be rebuilt.
  uint64_t restore_fallbacks = 0;
  /// Sum of the per-tier counters (hits, misses, promotions, ...).
  EmbeddingTierStats tier;
};

/// Versioned catalog of embedding tables: registration, retrieval by
/// version, and lineage — the embedding-native half of the feature store
/// the paper calls for ("support for versioning, provenance, and
/// downstream quality metrics", §4).
///
/// Tables are immutable; "updating" an embedding means registering a new
/// version. Consumers pin versions (see ModelRegistry), which is what makes
/// version skew detectable.
///
/// Every registration is recorded in a LineageGraph: the table itself as an
/// `embedding` artifact, its metadata().parent as a `derived_from` (or
/// `patched_into`, for PatchEmbedding outputs) edge, and its
/// training_source as a `trained_on` edge. Registering version K also marks
/// version K-1 superseded, fanning a StalenessEvent out to its transitive
/// consumers. Lineage() is a walk over that graph; parent chains have no
/// second, private representation.
///
/// With an EmbeddingTierPolicy budget, the store is additionally the
/// admission controller for embedding RAM (paper §3.1.2: embedding working
/// sets outgrow memory): each registration re-applies the budget, spilling
/// cold versions to packed quantized tier files (see EmbeddingTier) while
/// lookups keep their exact API contracts.
class EmbeddingStore {
 public:
  /// `lineage` (not owned) is the shared cross-layer graph; when null the
  /// store owns a private graph (standalone use in tests/tools).
  explicit EmbeddingStore(LineageGraph* lineage = nullptr,
                          EmbeddingTierPolicy tier_policy = {});

  /// Registers `table` under its metadata().name; assigns and returns the
  /// new version number. `registered_at` stamps metadata().created_at if
  /// unset. Under a tier policy this may spill this or older versions.
  StatusOr<int> Register(const EmbeddingTablePtr& table,
                         Timestamp registered_at);

  /// Latest version of `name`.
  StatusOr<EmbeddingTablePtr> GetLatest(const std::string& name) const;

  StatusOr<EmbeddingTablePtr> GetVersion(const std::string& name,
                                         int version) const;

  /// Parses "name@vK" (or bare "name" = latest).
  StatusOr<EmbeddingTablePtr> Resolve(const std::string& reference) const;

  std::vector<std::string> Names() const;
  /// All versions of `name`, ascending.
  StatusOr<std::vector<EmbeddingTablePtr>> Versions(
      const std::string& name) const;

  /// Chain of ancestors starting at "name@vK" (inclusive), following
  /// `derived_from`/`patched_into` lineage edges up to the root table.
  StatusOr<std::vector<std::string>> Lineage(
      const std::string& reference) const;

  /// Marks the latest version of `name` deprecated: emits a kDeprecated
  /// StalenessEvent fanned out to its transitive downstream consumers.
  Status Deprecate(const std::string& name, Timestamp now);

  size_t num_tables() const;

  const EmbeddingTierPolicy& tier_policy() const { return tier_policy_; }

  /// Aggregated tiering counters (zeros when tiering is disabled).
  EmbeddingStoreTierStats TierStats() const;

  /// The lineage graph this store records into (shared or owned).
  LineageGraph& lineage_graph() { return *lineage_; }
  const LineageGraph& lineage_graph() const { return *lineage_; }

  /// Serializes every version of every table. Resident tables store raw
  /// floats; tiered tables store their packed codes plus the exact hot
  /// blocks, so a restore reproduces byte-identical serving.
  std::string Snapshot() const;

  /// Restores a Snapshot() into this (empty) store, preserving version
  /// numbers and re-recording lineage edges (without re-emitting
  /// staleness events — restore the graph's own snapshot for those).
  /// Reads both the legacy resident-only format and the tiered format; a
  /// tiered entry whose tier file cannot be rebuilt falls back to an
  /// equivalent resident table (counted in TierStats().restore_fallbacks).
  Status Restore(std::string_view snapshot);

 private:
  /// Records `table` (already version-stamped) into the lineage graph.
  void RecordLineage(const EmbeddingTableMetadata& metadata,
                     int previous_version);

  /// Caller holds mu_. Re-applies the tier budget across every version:
  /// newest version of each name is granted hot budget first, superseded
  /// versions oldest-last, and tables that no longer fit are converted to
  /// tiered form in place. No-op without a budget.
  void ApplyTierBudgetLocked(Timestamp now);

  /// Caller holds mu_. Tier options for one table under the policy.
  EmbeddingTierOptions TierOptionsLocked(const EmbeddingTableMetadata&
                                             metadata,
                                         size_t hot_budget) const;

  mutable std::mutex mu_;
  std::map<std::string, std::vector<EmbeddingTablePtr>> tables_;
  std::unique_ptr<LineageGraph> owned_lineage_;
  LineageGraph* lineage_;  // Shared (not owned) or owned_lineage_.get().
  EmbeddingTierPolicy tier_policy_;
  std::string spill_dir_;  // Resolved tier_policy_.spill_dir.
  mutable uint64_t spill_errors_ = 0;
  mutable uint64_t restore_fallbacks_ = 0;
};

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_EMBEDDING_STORE_H_
