#ifndef MLFS_EMBEDDING_EMBEDDING_STORE_H_
#define MLFS_EMBEDDING_EMBEDDING_STORE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "embedding/embedding_table.h"

namespace mlfs {

/// Versioned catalog of embedding tables: registration, retrieval by
/// version, and lineage — the embedding-native half of the feature store
/// the paper calls for ("support for versioning, provenance, and
/// downstream quality metrics", §4).
///
/// Tables are immutable; "updating" an embedding means registering a new
/// version. Consumers pin versions (see ModelRegistry), which is what makes
/// version skew detectable.
class EmbeddingStore {
 public:
  /// Registers `table` under its metadata().name; assigns and returns the
  /// new version number. `registered_at` stamps metadata().created_at if
  /// unset.
  StatusOr<int> Register(const EmbeddingTablePtr& table,
                         Timestamp registered_at);

  /// Latest version of `name`.
  StatusOr<EmbeddingTablePtr> GetLatest(const std::string& name) const;

  StatusOr<EmbeddingTablePtr> GetVersion(const std::string& name,
                                         int version) const;

  /// Parses "name@vK" (or bare "name" = latest).
  StatusOr<EmbeddingTablePtr> Resolve(const std::string& reference) const;

  std::vector<std::string> Names() const;
  /// All versions of `name`, ascending.
  StatusOr<std::vector<EmbeddingTablePtr>> Versions(
      const std::string& name) const;

  /// Chain of parents starting at "name@vK" (inclusive), following
  /// metadata().parent until a root table.
  StatusOr<std::vector<std::string>> Lineage(
      const std::string& reference) const;

  size_t num_tables() const;

  /// Serializes every version of every table (metadata, keys, vectors).
  std::string Snapshot() const;

  /// Restores a Snapshot() into this (empty) store, preserving version
  /// numbers.
  Status Restore(std::string_view snapshot);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<EmbeddingTablePtr>> tables_;
};

}  // namespace mlfs

#endif  // MLFS_EMBEDDING_EMBEDDING_STORE_H_
