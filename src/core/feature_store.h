#ifndef MLFS_CORE_FEATURE_STORE_H_
#define MLFS_CORE_FEATURE_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timestamp.h"
#include "embedding/ann.h"
#include "embedding/embedding_drift.h"
#include "embedding/embedding_store.h"
#include "lineage/lineage_graph.h"
#include "modelstore/model_registry.h"
#include "monitoring/alerting.h"
#include "quality/drift.h"
#include "quality/feature_stats.h"
#include "registry/orchestrator.h"
#include "registry/registry.h"
#include "serving/feature_server.h"
#include "serving/point_in_time.h"
#include "storage/offline_store.h"
#include "storage/online_store.h"
#include "streaming/stream_pipeline.h"

namespace mlfs {

struct FeatureStoreOptions {
  OnlineStoreOptions online;
  FeatureServerOptions serving;
  /// Logical start of time.
  Timestamp start_time = 0;
  /// ANN index used by NearestNeighbors: "hnsw" or "brute".
  std::string ann_index = "hnsw";
  /// Out-of-core policy for registered embeddings: with a
  /// memory_budget_bytes, versions that do not fit spill to packed
  /// quantized tier files (see EmbeddingTierPolicy). Default: disabled,
  /// everything stays resident.
  EmbeddingTierPolicy embedding_tiering;
};

/// The integrated system this repository reproduces: a feature store that
/// manages *both* tabular features and embeddings as first-class citizens
/// across the full ML pipeline — authoring, materialization, serving,
/// training-set construction, model registration, and monitoring — per
/// Orr et al., "Managing ML Pipelines: Feature Stores and the Coming Wave
/// of Embedding Ecosystems" (VLDB 2021).
///
/// All time is logical (clock()); the store never reads the wall clock.
///
/// All components share one LineageGraph (lineage()): every publish,
/// embedding registration, model registration, and materialization run is
/// recorded there, staleness events fan out to the AlertBus, and served
/// responses carry staleness annotations (FeatureVector::stale).
class FeatureStore {
 public:
  explicit FeatureStore(FeatureStoreOptions options = {});

  // --- Component access (power users / tests) ------------------------------
  SimClock& clock() { return clock_; }
  OfflineStore& offline() { return offline_; }
  OnlineStore& online() { return online_; }
  FeatureRegistry& registry() { return registry_; }
  Orchestrator& orchestrator() { return orchestrator_; }
  EmbeddingStore& embeddings() { return embedding_store_; }
  ModelRegistry& models() { return model_registry_; }
  AlertBus& alerts() { return alerts_; }
  FeatureServer& server() { return server_; }
  LineageGraph& lineage() { return lineage_; }
  const LineageGraph& lineage() const { return lineage_; }

  // --- Tabular feature workflow (paper §2.2) -------------------------------

  /// Registers a raw source table in the offline store.
  Status CreateSourceTable(OfflineTableOptions options);

  /// Appends raw event rows and advances the clock to the newest event.
  Status Ingest(const std::string& table, const std::vector<Row>& rows);

  /// Publishes a feature definition (validated against its source).
  StatusOr<int> PublishFeature(const FeatureDefinition& def);

  /// Runs every due feature refresh at the current logical time.
  StatusOr<int> RunMaterialization();

  /// Serves a feature vector from the online store at logical now.
  StatusOr<FeatureVector> ServeFeatures(
      const Value& entity_key, const std::vector<std::string>& features);

  /// Leakage-free training set: point-in-time joins each feature's
  /// materialization log onto the spine; output columns carry the feature
  /// names. `max_age` 0 disables age filtering. `join_options` fans the
  /// merge-join out across sources/entity shards for large spines.
  StatusOr<TrainingSet> BuildTrainingSet(
      const std::vector<Row>& spine, const std::string& spine_entity_column,
      const std::string& spine_time_column,
      const std::vector<std::string>& features, Timestamp max_age = 0,
      const JoinOptions& join_options = {});

  /// As above with a prebuilt SpineIndex, so pipelines that join the same
  /// label spine against several feature sets canonicalize and sort it
  /// once instead of per call.
  StatusOr<TrainingSet> BuildTrainingSet(
      const SpineIndex& spine, const std::vector<std::string>& features,
      Timestamp max_age = 0, const JoinOptions& join_options = {});

  /// Creates a streaming feature view materializing into both stores.
  /// The returned pipeline is owned by the store.
  StatusOr<StreamPipeline*> CreateStreamPipeline(
      StreamPipelineOptions options);

  // --- Embeddings as first-class citizens (paper §3) ------------------------

  /// Registers an embedding table version.
  StatusOr<int> RegisterEmbedding(const EmbeddingTablePtr& table);

  /// Pushes the latest version's vectors into the online store as a
  /// feature view "<name>" (schema {entity, event_time, value EMBEDDING}),
  /// so ServeFeatures can return embeddings alongside tabular features.
  Status MaterializeEmbedding(const std::string& name);

  /// Latest vector for `key`.
  StatusOr<std::vector<float>> GetEmbedding(const std::string& name,
                                            const std::string& key) const;

  /// k nearest entities of `reference_key` under the latest version (ANN
  /// index built and cached per version). The index build happens outside
  /// the cache lock with once-per-version semantics: concurrent callers on
  /// the same version share one build, and a slow build on one embedding
  /// never blocks lookups on another.
  StatusOr<std::vector<std::pair<std::string, float>>> NearestEntities(
      const std::string& name, const std::string& reference_key, size_t k);

  /// Batched NearestEntities: entry i is reference_keys[i]'s neighbors.
  /// One index resolve + one AnnIndex::BatchSearch for the whole batch;
  /// entries fail independently (an unknown reference key NotFounds only
  /// its own slot).
  std::vector<StatusOr<std::vector<std::pair<std::string, float>>>>
  NearestEntitiesBatch(const std::string& name,
                       const std::vector<std::string>& reference_keys,
                       size_t k);

  // --- Models & version skew (paper §2.2.2, §4) ------------------------------

  /// Registers a trained model with pinned feature/embedding versions.
  StatusOr<int> RegisterModel(ModelRecord record);

  /// Latest models pinned to outdated embedding versions; emits a
  /// CRITICAL alert per skewed consumer ("dot product loses meaning") and
  /// a WARNING per dangling (unpinned/unresolvable) reference.
  StatusOr<VersionSkewReport> CheckEmbeddingVersionSkew();

  // --- Lineage & staleness (paper §2.2.2, §4) --------------------------------

  /// Transitive downstream consumers impacted by a change to `artifact` —
  /// "what breaks if this changes?" across every layer.
  std::vector<ArtifactId> ImpactOf(const ArtifactId& artifact) const;

  /// Deprecates the latest version of feature `name`: the kDeprecated
  /// StalenessEvent fans out to its consumers (alerts + serving
  /// annotations).
  Status DeprecateFeature(const std::string& name);

  /// Deprecates the latest version of embedding `name`; same fan-out.
  Status DeprecateEmbedding(const std::string& name);

  // --- Monitoring (paper §2.2.3, §3.1.3) ------------------------------------

  /// Drift of `feature`'s materialized values: reference window
  /// [ref_lo, ref_hi) vs current window [cur_lo, cur_hi) of its log table.
  /// Emits a WARNING alert when drifted.
  StatusOr<DriftReport> CheckFeatureDrift(const std::string& feature,
                                          Timestamp ref_lo, Timestamp ref_hi,
                                          Timestamp cur_lo, Timestamp cur_hi);

  /// Geometry drift between two registered versions of an embedding;
  /// emits a WARNING alert when drifted.
  StatusOr<EmbeddingDriftReport> CheckEmbeddingUpdateDrift(
      const std::string& name, int from_version, int to_version);

  /// Online freshness of `feature` for the given entities at logical now.
  FreshnessReport CheckFreshness(const std::string& feature,
                                 const std::vector<Value>& entity_keys) const;

  /// Number of cached ANN indexes (bounded: superseded unpinned versions
  /// are evicted on insert).
  size_t ann_cache_size() const;

  // --- Durability -------------------------------------------------------------

  /// Writes a full checkpoint (offline tables, online cells, feature
  /// registry, embedding store, model registry, lineage graph, logical
  /// clock) into `dir`.
  Status Checkpoint(const std::string& dir) const;

  /// Restores a Checkpoint() into this *fresh* store (no tables, views,
  /// features, embeddings, or models may exist yet). Stream pipelines and
  /// orchestrator refresh state are not persisted.
  Status RestoreCheckpoint(const std::string& dir);

 private:
  /// Maps registered feature names to JoinSources over their log tables.
  StatusOr<std::vector<JoinSource>> ResolveFeatureSources(
      const std::vector<std::string>& features, Timestamp max_age);

  FeatureStoreOptions options_;
  SimClock clock_;
  OfflineStore offline_;
  OnlineStore online_;
  /// Shared cross-layer artifact graph; declared before every component
  /// that records into it (construction and destruction order).
  LineageGraph lineage_;
  FeatureRegistry registry_;
  Materializer materializer_;
  Orchestrator orchestrator_;
  EmbeddingStore embedding_store_;
  ModelRegistry model_registry_;
  AlertBus alerts_;
  FeatureServer server_;
  std::vector<std::unique_ptr<StreamPipeline>> pipelines_;

  /// One cached (or in-flight) ANN index build for "name@vK". Entries are
  /// inserted under ann_mu_ but *built* outside it via the once flag, so a
  /// slow HNSW build never holds the cache lock; build_status records a
  /// failed build for every sharer.
  struct CachedIndex {
    EmbeddingTablePtr table;  // Keeps the indexed buffer alive.
    std::once_flag built;
    std::unique_ptr<AnnIndex> index;
    Status build_status;
  };

  /// Cached (building if needed) index for `table`'s version. Evicts
  /// superseded versions of the same name on insert — only the latest
  /// version plus versions still pinned by registered models stay cached,
  /// so re-registering an embedding N times cannot pin N full tables.
  StatusOr<std::shared_ptr<CachedIndex>> GetOrBuildAnnIndex(
      const EmbeddingTablePtr& table);

  /// Drops cached indexes of `name` with a version below `version`, except
  /// versions pinned by a latest registered model. Caller holds ann_mu_
  /// exclusively.
  void EvictSupersededAnnLocked(const std::string& name, int version);

  mutable std::shared_mutex ann_mu_;
  // Key: "name@vK".
  std::map<std::string, std::shared_ptr<CachedIndex>> ann_cache_;
};

}  // namespace mlfs

#endif  // MLFS_CORE_FEATURE_STORE_H_
