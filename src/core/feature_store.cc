#include "core/feature_store.h"

#include <algorithm>

#include "common/serde.h"
#include "registry/materializer.h"
#include "storage/entity_key.h"
#include "storage/persistence.h"

namespace mlfs {

FeatureStore::FeatureStore(FeatureStoreOptions options)
    : options_(std::move(options)),
      clock_(options_.start_time),
      online_(options_.online),
      registry_(&offline_, &lineage_),
      materializer_(&online_, &offline_, &lineage_),
      orchestrator_(&registry_, &materializer_),
      embedding_store_(&lineage_, options_.embedding_tiering),
      model_registry_(&lineage_),
      server_(&online_, options_.serving, &embedding_store_, &lineage_,
              &registry_) {
  // Surface every staleness fan-out on the alert bus. Routine supersedes
  // (a new version landed) are informational; deprecations and drift mean
  // downstream consumers are actively at risk.
  lineage_.Subscribe([this](const StalenessEvent& event) {
    const AlertSeverity severity =
        event.reason == StalenessReason::kSuperseded ? AlertSeverity::kInfo
                                                     : AlertSeverity::kWarning;
    std::string message = StalenessInfo{event.reason, event.at, event.source,
                                        event.detail}
                              .ToString();
    message += "; impacted: " + std::to_string(event.impacted.size()) +
               " downstream artifact(s)";
    alerts_.Emit({event.at, "staleness:" + event.source.ToString(), severity,
                  std::move(message)});
  });
}

Status FeatureStore::CreateSourceTable(OfflineTableOptions options) {
  return offline_.CreateTable(std::move(options));
}

Status FeatureStore::Ingest(const std::string& table,
                            const std::vector<Row>& rows) {
  MLFS_ASSIGN_OR_RETURN(OfflineTable* offline_table, offline_.GetTable(table));
  MLFS_RETURN_IF_ERROR(offline_table->AppendBatch(rows));
  clock_.AdvanceTo(offline_table->max_event_time());
  // Mirror each entity's latest raw row into the online store (full
  // source schema, keyed by the table's entity column) so the server can
  // evaluate registered features at request time over exactly the inputs
  // the materializer would read. Event-time LWW with write order breaking
  // ties matches the offline side's latest-ordinal-wins, so the mirror
  // always holds the row EvalLatestPerEntityAsOf(now) would pick.
  const OfflineTableOptions& opts = offline_table->options();
  const int entity_idx = opts.schema->FieldIndex(opts.entity_column);
  const int time_idx = opts.schema->FieldIndex(opts.time_column);
  if (entity_idx < 0 || time_idx < 0) return Status::OK();
  const std::string mirror = SourceMirrorViewName(table);
  if (!online_.HasView(mirror)) {
    MLFS_RETURN_IF_ERROR(online_.CreateView(mirror, opts.schema));
    (void)lineage_.AddEdge(ViewArtifact(mirror), EdgeKind::kMaterializes,
                           TableArtifact(table));
  }
  const Timestamp now = clock_.now();
  for (const Row& row : rows) {
    const Value& key = row.value(static_cast<size_t>(entity_idx));
    const Value& ts = row.value(static_cast<size_t>(time_idx));
    if (key.is_null() || ts.is_null()) continue;
    MLFS_RETURN_IF_ERROR(
        online_.Put(mirror, key, row, ts.time_value(), now));
  }
  return Status::OK();
}

StatusOr<int> FeatureStore::PublishFeature(const FeatureDefinition& def) {
  return registry_.Publish(def, clock_.now());
}

StatusOr<int> FeatureStore::RunMaterialization() {
  return orchestrator_.RunDue(clock_.now());
}

StatusOr<FeatureVector> FeatureStore::ServeFeatures(
    const Value& entity_key, const std::vector<std::string>& features) {
  return server_.GetFeatures(entity_key, features, clock_.now());
}

StatusOr<std::vector<JoinSource>> FeatureStore::ResolveFeatureSources(
    const std::vector<std::string>& features, Timestamp max_age) {
  std::vector<JoinSource> sources;
  sources.reserve(features.size());
  for (const std::string& feature : features) {
    // Validate the feature exists (clearer error than a missing log table).
    MLFS_RETURN_IF_ERROR(registry_.Get(feature).status());
    MLFS_ASSIGN_OR_RETURN(
        OfflineTable* log_table,
        offline_.GetTable(Materializer::LogTableName(feature)));
    JoinSource source;
    source.table = log_table;
    source.columns = {"value"};
    source.output_columns = {feature};
    source.max_age = max_age;
    sources.push_back(std::move(source));
  }
  return sources;
}

StatusOr<TrainingSet> FeatureStore::BuildTrainingSet(
    const std::vector<Row>& spine, const std::string& spine_entity_column,
    const std::string& spine_time_column,
    const std::vector<std::string>& features, Timestamp max_age,
    const JoinOptions& join_options) {
  MLFS_ASSIGN_OR_RETURN(std::vector<JoinSource> sources,
                        ResolveFeatureSources(features, max_age));
  return PointInTimeJoin(spine, spine_entity_column, spine_time_column,
                         sources, join_options);
}

StatusOr<TrainingSet> FeatureStore::BuildTrainingSet(
    const SpineIndex& spine, const std::vector<std::string>& features,
    Timestamp max_age, const JoinOptions& join_options) {
  MLFS_ASSIGN_OR_RETURN(std::vector<JoinSource> sources,
                        ResolveFeatureSources(features, max_age));
  return PointInTimeJoin(spine, sources, join_options);
}

StatusOr<StreamPipeline*> FeatureStore::CreateStreamPipeline(
    StreamPipelineOptions options) {
  MLFS_ASSIGN_OR_RETURN(auto pipeline,
                        StreamPipeline::Create(std::move(options), &online_,
                                               &offline_));
  pipelines_.push_back(std::move(pipeline));
  return pipelines_.back().get();
}

StatusOr<int> FeatureStore::RegisterEmbedding(const EmbeddingTablePtr& table) {
  return embedding_store_.Register(table, clock_.now());
}

Status FeatureStore::MaterializeEmbedding(const std::string& name) {
  MLFS_ASSIGN_OR_RETURN(EmbeddingTablePtr table,
                        embedding_store_.GetLatest(name));
  MLFS_ASSIGN_OR_RETURN(
      SchemaPtr schema,
      Schema::Create({{"entity", FeatureType::kString, false},
                      {"event_time", FeatureType::kTimestamp, false},
                      {"value", FeatureType::kEmbedding, true}}));
  if (!online_.HasView(name)) {
    MLFS_RETURN_IF_ERROR(online_.CreateView(name, schema));
  }
  const Timestamp now = clock_.now();
  const Timestamp event_time =
      table->metadata().created_at > 0 ? table->metadata().created_at : now;
  for (size_t i = 0; i < table->size(); ++i) {
    std::vector<float> vec(table->dim());
    table->CopyRow(i, vec.data());
    MLFS_ASSIGN_OR_RETURN(
        Row out,
        Row::Create(schema, {Value::String(table->key(i)),
                             Value::Time(event_time),
                             Value::Embedding(std::move(vec))}));
    MLFS_RETURN_IF_ERROR(online_.Put(name, Value::String(table->key(i)),
                                     out, event_time, now));
  }
  return Status::OK();
}

StatusOr<std::vector<float>> FeatureStore::GetEmbedding(
    const std::string& name, const std::string& key) const {
  MLFS_ASSIGN_OR_RETURN(EmbeddingTablePtr table,
                        embedding_store_.GetLatest(name));
  return table->GetVector(key);
}

StatusOr<std::shared_ptr<FeatureStore::CachedIndex>>
FeatureStore::GetOrBuildAnnIndex(const EmbeddingTablePtr& table) {
  const std::string cache_key = table->metadata().VersionedName();
  std::shared_ptr<CachedIndex> entry;
  {
    std::shared_lock lock(ann_mu_);
    auto it = ann_cache_.find(cache_key);
    if (it != ann_cache_.end()) entry = it->second;
  }
  if (entry == nullptr) {
    std::unique_lock lock(ann_mu_);
    auto it = ann_cache_.find(cache_key);
    if (it == ann_cache_.end()) {
      entry = std::make_shared<CachedIndex>();
      entry->table = table;
      ann_cache_.emplace(cache_key, entry);
      EvictSupersededAnnLocked(table->metadata().name,
                               table->metadata().version);
    } else {
      entry = it->second;
    }
  }
  // The build runs outside ann_mu_: one slow HNSW build stalls only
  // callers of this same version (who share its result via the once flag),
  // never lookups on other embeddings or versions.
  std::call_once(entry->built, [&] {
    if (entry->table->tiered() && options_.ann_index == "brute") {
      // Stays out-of-core: the index streams tier blocks per search
      // instead of holding a second resident copy of the vectors.
      entry->index = MakeTieredBruteForceIndex(entry->table);
      entry->build_status = entry->index->Build(nullptr, 0, 0);
    } else {
      if (entry->table->tiered()) {
        // HNSW needs stable row pointers for its whole lifetime, which a
        // tiered table cannot give; index a resident copy (the documented
        // RAM cost of graph indexes over spilled versions).
        StatusOr<EmbeddingTablePtr> resident = entry->table->Materialize();
        if (!resident.ok()) {
          entry->build_status = resident.status();
          return;
        }
        entry->table = *std::move(resident);
      }
      entry->index = options_.ann_index == "brute" ? MakeBruteForceIndex()
                                                   : MakeHnswIndex();
      entry->build_status = entry->index->Build(
          entry->table->raw().data(), entry->table->size(),
          entry->table->dim());
    }
    if (!entry->build_status.ok()) entry->index.reset();
  });
  if (!entry->build_status.ok()) return entry->build_status;
  return entry;
}

void FeatureStore::EvictSupersededAnnLocked(const std::string& name,
                                            int version) {
  // Versions pinned by the latest registered models stay cached: a skewed
  // consumer still being served must not lose its index to an eviction.
  std::vector<std::string> pinned;
  for (const ModelRecord& model : model_registry_.ListLatest()) {
    for (const std::string& ref : model.embedding_refs) {
      pinned.push_back(ref);
    }
  }
  for (auto it = ann_cache_.begin(); it != ann_cache_.end();) {
    const EmbeddingTableMetadata& metadata = it->second->table->metadata();
    const bool superseded =
        metadata.name == name && metadata.version < version;
    if (superseded && std::find(pinned.begin(), pinned.end(), it->first) ==
                          pinned.end()) {
      it = ann_cache_.erase(it);
    } else {
      ++it;
    }
  }
}

namespace {

/// Drops the reference key from its own neighbor list and truncates to k.
std::vector<std::pair<std::string, float>> FilterSelf(
    const EmbeddingTable& table, const std::string& reference_key,
    const std::vector<Neighbor>& hits, size_t k) {
  std::vector<std::pair<std::string, float>> out;
  out.reserve(k);
  for (const Neighbor& hit : hits) {
    if (table.key(hit.id) == reference_key) continue;
    out.emplace_back(table.key(hit.id), hit.distance);
    if (out.size() == k) break;
  }
  return out;
}

}  // namespace

StatusOr<std::vector<std::pair<std::string, float>>>
FeatureStore::NearestEntities(const std::string& name,
                              const std::string& reference_key, size_t k) {
  MLFS_ASSIGN_OR_RETURN(EmbeddingTablePtr table,
                        embedding_store_.GetLatest(name));
  MLFS_ASSIGN_OR_RETURN(std::shared_ptr<CachedIndex> entry,
                        GetOrBuildAnnIndex(table));
  MLFS_ASSIGN_OR_RETURN(const float* query, table->Get(reference_key));
  // Ask for one extra hit since the reference itself is in the index.
  MLFS_ASSIGN_OR_RETURN(std::vector<Neighbor> hits,
                        entry->index->Search(query, k + 1));
  return FilterSelf(*table, reference_key, hits, k);
}

std::vector<StatusOr<std::vector<std::pair<std::string, float>>>>
FeatureStore::NearestEntitiesBatch(
    const std::string& name, const std::vector<std::string>& reference_keys,
    size_t k) {
  using Result = StatusOr<std::vector<std::pair<std::string, float>>>;
  const size_t n = reference_keys.size();
  StatusOr<EmbeddingTablePtr> table = embedding_store_.GetLatest(name);
  if (!table.ok()) {
    return std::vector<Result>(n, Result(table.status()));
  }
  StatusOr<std::shared_ptr<CachedIndex>> entry = GetOrBuildAnnIndex(*table);
  if (!entry.ok()) {
    return std::vector<Result>(n, Result(entry.status()));
  }
  // Gather the resolved reference vectors into one contiguous query
  // buffer; unknown keys fail only their own slot.
  std::vector<Result> out(n, Result(Status::Internal("slot not filled")));
  const size_t dim = (*table)->dim();
  std::vector<const float*> rows = (*table)->MultiGet(reference_keys);
  std::vector<float> queries;
  queries.reserve(n * dim);
  std::vector<size_t> query_slot;  // queries row -> out slot.
  query_slot.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rows[i] == nullptr) {
      out[i] = Status::NotFound("no embedding for key '" + reference_keys[i] +
                                "'");
      continue;
    }
    queries.insert(queries.end(), rows[i], rows[i] + dim);
    query_slot.push_back(i);
  }
  if (query_slot.empty()) return out;
  StatusOr<std::vector<std::vector<Neighbor>>> hits =
      (*entry)->index->BatchSearch(queries.data(), query_slot.size(), k + 1);
  if (!hits.ok()) {
    for (size_t slot : query_slot) out[slot] = hits.status();
    return out;
  }
  for (size_t q = 0; q < query_slot.size(); ++q) {
    const size_t slot = query_slot[q];
    out[slot] = FilterSelf(**table, reference_keys[slot], (*hits)[q], k);
  }
  return out;
}

size_t FeatureStore::ann_cache_size() const {
  std::shared_lock lock(ann_mu_);
  return ann_cache_.size();
}

StatusOr<int> FeatureStore::RegisterModel(ModelRecord record) {
  return model_registry_.Register(std::move(record), clock_.now());
}

StatusOr<VersionSkewReport> FeatureStore::CheckEmbeddingVersionSkew() {
  MLFS_ASSIGN_OR_RETURN(VersionSkewReport report,
                        model_registry_.CheckEmbeddingSkew(embedding_store_));
  for (const VersionSkew& skew : report.skews) {
    alerts_.Emit({clock_.now(), "version_skew:" + skew.model,
                  AlertSeverity::kCritical,
                  "model pins " + skew.embedding + "@v" +
                      std::to_string(skew.pinned_version) +
                      " but serving has v" +
                      std::to_string(skew.latest_version) +
                      " — dot products against the new space are "
                      "meaningless; retrain or hold the rollout"});
  }
  for (const DanglingRef& dangling : report.dangling) {
    alerts_.Emit({clock_.now(), "dangling_ref:" + dangling.model,
                  AlertSeverity::kWarning,
                  "embedding ref '" + dangling.ref +
                      "' cannot be skew-checked: " + dangling.detail});
  }
  return report;
}

std::vector<ArtifactId> FeatureStore::ImpactOf(
    const ArtifactId& artifact) const {
  return lineage_.ImpactSet(artifact);
}

Status FeatureStore::DeprecateFeature(const std::string& name) {
  return registry_.Deprecate(name, clock_.now());
}

Status FeatureStore::DeprecateEmbedding(const std::string& name) {
  return embedding_store_.Deprecate(name, clock_.now());
}

StatusOr<DriftReport> FeatureStore::CheckFeatureDrift(
    const std::string& feature, Timestamp ref_lo, Timestamp ref_hi,
    Timestamp cur_lo, Timestamp cur_hi) {
  MLFS_ASSIGN_OR_RETURN(
      OfflineTable* log_table,
      offline_.GetTable(Materializer::LogTableName(feature)));
  auto extract = [&](Timestamp lo, Timestamp hi) {
    std::vector<double> values;
    for (const Row& row : log_table->Scan(lo, hi)) {
      auto v = row.ValueByName("value");
      if (!v.ok() || v->is_null()) continue;
      auto d = v->AsDouble();
      if (d.ok()) values.push_back(*d);
    }
    return values;
  };
  std::vector<double> reference = extract(ref_lo, ref_hi);
  std::vector<double> current = extract(cur_lo, cur_hi);
  if (reference.size() < 10) {
    return Status::FailedPrecondition(
        "reference window has too few materialized values (" +
        std::to_string(reference.size()) + ")");
  }
  if (current.empty()) {
    return Status::FailedPrecondition("current window is empty");
  }
  MLFS_ASSIGN_OR_RETURN(DriftDetector detector,
                        DriftDetector::Fit(std::move(reference)));
  MLFS_ASSIGN_OR_RETURN(DriftReport report, detector.Check(current));
  if (report.drifted) {
    alerts_.Emit({clock_.now(), "drift:" + feature, AlertSeverity::kWarning,
                  report.ToString()});
    // Propagate: the feature's current version (and everything serving or
    // consuming it) is now suspect.
    auto latest = registry_.Get(feature);
    if (latest.ok()) {
      (void)lineage_.MarkStale(FeatureArtifact(feature, latest->version),
                               StalenessReason::kDrift, clock_.now(),
                               report.ToString());
    }
  }
  return report;
}

StatusOr<EmbeddingDriftReport> FeatureStore::CheckEmbeddingUpdateDrift(
    const std::string& name, int from_version, int to_version) {
  MLFS_ASSIGN_OR_RETURN(EmbeddingTablePtr from,
                        embedding_store_.GetVersion(name, from_version));
  MLFS_ASSIGN_OR_RETURN(EmbeddingTablePtr to,
                        embedding_store_.GetVersion(name, to_version));
  MLFS_ASSIGN_OR_RETURN(EmbeddingDriftReport report,
                        CheckEmbeddingDrift(*from, *to));
  if (report.drifted) {
    alerts_.Emit({clock_.now(), "embedding_drift:" + name,
                  AlertSeverity::kWarning, report.ToString()});
    // The old version's geometry no longer matches the space being rolled
    // out: consumers still pinned to it are the ones at risk.
    (void)lineage_.MarkStale(EmbeddingArtifact(name, from_version),
                             StalenessReason::kDrift, clock_.now(),
                             report.ToString());
  }
  return report;
}

FreshnessReport FeatureStore::CheckFreshness(
    const std::string& feature,
    const std::vector<Value>& entity_keys) const {
  return ComputeFreshness(online_, feature, entity_keys, clock_.now());
}

Status FeatureStore::Checkpoint(const std::string& dir) const {
  MLFS_RETURN_IF_ERROR(CheckpointOfflineStore(offline_, dir).status());
  MLFS_RETURN_IF_ERROR(CheckpointOnlineStore(online_, dir));
  MLFS_RETURN_IF_ERROR(WriteFileAtomic(dir + "/registry.mlfs",
                                       registry_.Snapshot()));
  MLFS_RETURN_IF_ERROR(WriteFileAtomic(dir + "/embeddings.mlfs",
                                       embedding_store_.Snapshot()));
  MLFS_RETURN_IF_ERROR(WriteFileAtomic(dir + "/models.mlfs",
                                       model_registry_.Snapshot()));
  MLFS_RETURN_IF_ERROR(WriteFileAtomic(dir + "/lineage.mlfs",
                                       lineage_.Snapshot()));
  Encoder enc;
  enc.PutFixed64(static_cast<uint64_t>(clock_.now()));
  return WriteFileAtomic(dir + "/clock.mlfs", enc.buffer());
}

Status FeatureStore::RestoreCheckpoint(const std::string& dir) {
  MLFS_RETURN_IF_ERROR(RestoreOfflineStore(&offline_, dir));
  MLFS_RETURN_IF_ERROR(RestoreOnlineStore(&online_, dir));
  // Lineage first: it carries staleness annotations and the event log the
  // silo restores cannot reconstruct; their re-recorded edges then land as
  // idempotent no-ops.
  MLFS_ASSIGN_OR_RETURN(std::string lineage_data,
                        ReadFile(dir + "/lineage.mlfs"));
  MLFS_RETURN_IF_ERROR(lineage_.Restore(lineage_data));
  MLFS_ASSIGN_OR_RETURN(std::string registry_data,
                        ReadFile(dir + "/registry.mlfs"));
  MLFS_RETURN_IF_ERROR(registry_.Restore(registry_data));
  MLFS_ASSIGN_OR_RETURN(std::string embedding_data,
                        ReadFile(dir + "/embeddings.mlfs"));
  MLFS_RETURN_IF_ERROR(embedding_store_.Restore(embedding_data));
  MLFS_ASSIGN_OR_RETURN(std::string model_data,
                        ReadFile(dir + "/models.mlfs"));
  MLFS_RETURN_IF_ERROR(model_registry_.Restore(model_data));
  MLFS_ASSIGN_OR_RETURN(std::string clock_data, ReadFile(dir + "/clock.mlfs"));
  Decoder dec(clock_data);
  MLFS_ASSIGN_OR_RETURN(uint64_t now, dec.GetFixed64());
  clock_.AdvanceTo(static_cast<Timestamp>(now));
  return Status::OK();
}

}  // namespace mlfs
