#ifndef MLFS_COMMON_SCHEMA_H_
#define MLFS_COMMON_SCHEMA_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace mlfs {

/// One column of a schema.
struct FieldSpec {
  std::string name;
  FeatureType type = FeatureType::kNull;
  bool nullable = true;

  friend bool operator==(const FieldSpec& a, const FieldSpec& b) {
    return a.name == b.name && a.type == b.type && a.nullable == b.nullable;
  }
};

/// Ordered, named, typed column set. Immutable after construction; shared
/// by all rows of a table via shared_ptr.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; fails if field names collide or are empty.
  static StatusOr<std::shared_ptr<const Schema>> Create(
      std::vector<FieldSpec> fields);

  size_t num_fields() const { return fields_.size(); }
  const FieldSpec& field(size_t i) const {
    MLFS_DCHECK(i < fields_.size());
    return fields_[i];
  }
  const std::vector<FieldSpec>& fields() const { return fields_; }

  /// Index of the field named `name`, or -1 if absent.
  int FieldIndex(std::string_view name) const;

  /// True if `v` may be stored in column `i` (type matches, or null and
  /// the column is nullable).
  bool Accepts(size_t i, const Value& v) const;

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  explicit Schema(std::vector<FieldSpec> fields);

  std::vector<FieldSpec> fields_;
  std::unordered_map<std::string, int> index_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace mlfs

#endif  // MLFS_COMMON_SCHEMA_H_
