#ifndef MLFS_COMMON_THREADPOOL_H_
#define MLFS_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mlfs {

/// Fixed-size worker pool used for parallel embedding training and batch
/// materialization. Tasks are plain std::function<void()>; use
/// `ParallelFor` for the common data-parallel case.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> tasks_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for i in [begin, end), splitting the range into contiguous
/// chunks across the pool (or inline when `pool` is null or the range is
/// tiny). Blocks until all iterations complete.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

}  // namespace mlfs

#endif  // MLFS_COMMON_THREADPOOL_H_
