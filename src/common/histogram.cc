#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mlfs {
namespace {

// Buckets grow geometrically by 4% from 1e-3 up to ~1e12.
constexpr double kFirstBound = 1e-3;
constexpr double kGrowth = 1.04;
constexpr size_t kNumBuckets = 900;

}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0), bounds_(kNumBuckets) {
  double b = kFirstBound;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    bounds_[i] = b;
    b *= kGrowth;
  }
}

size_t Histogram::BucketFor(double value) const {
  if (value <= bounds_[0]) return 0;
  // log_growth(value / first) — direct computation, then clamp.
  double idx = std::log(value / kFirstBound) / std::log(kGrowth);
  size_t i = static_cast<size_t>(std::max(0.0, idx));
  if (i >= kNumBuckets) return kNumBuckets - 1;
  // Guard rounding: ensure bounds_[i-1] < value <= bounds_[i].
  while (i > 0 && bounds_[i - 1] >= value) --i;
  while (i + 1 < kNumBuckets && bounds_[i] < value) ++i;
  return i;
}

void Histogram::Record(double value) {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const uint64_t prev = cum;
    cum += buckets_[i];
    if (static_cast<double>(cum) >= target) {
      const double lo = (i == 0) ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac =
          buckets_[i] ? (target - static_cast<double>(prev)) /
                            static_cast<double>(buckets_[i])
                      : 0.0;
      double v = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                static_cast<unsigned long long>(count_), mean(),
                Percentile(50), Percentile(95), Percentile(99), max());
  return buf;
}

}  // namespace mlfs
