#ifndef MLFS_COMMON_SERDE_H_
#define MLFS_COMMON_SERDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "common/value.h"

namespace mlfs {

/// Binary row/value codec used by the offline store's on-disk snapshots and
/// by the wire format of the (in-process) feature server.
///
/// Encoding: little-endian fixed ints, LEB128 varints for lengths, a 1-byte
/// type tag per value. The format is self-describing at the value level so
/// a reader can skip unknown rows.
class Encoder {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutFixed32(uint32_t v);
  void PutFixed64(uint64_t v);
  void PutVarint64(uint64_t v);
  void PutDouble(double v);
  void PutFloat(float v);
  void PutString(std::string_view s);
  void PutValue(const Value& v);
  /// Encodes the row's values (not its schema).
  void PutRow(const Row& row);
  /// Encodes a schema (field names, types, nullability).
  void PutSchema(const Schema& schema);

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Streaming reader over a byte buffer produced by Encoder. All Get*
/// methods fail with Corruption on truncated input.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  StatusOr<uint8_t> GetU8();
  StatusOr<uint32_t> GetFixed32();
  StatusOr<uint64_t> GetFixed64();
  StatusOr<uint64_t> GetVarint64();
  StatusOr<double> GetDouble();
  StatusOr<float> GetFloat();
  StatusOr<std::string> GetString();
  StatusOr<Value> GetValue();
  /// Decodes values and validates them against `schema`.
  StatusOr<Row> GetRow(SchemaPtr schema);
  StatusOr<SchemaPtr> GetSchema();

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace mlfs

#endif  // MLFS_COMMON_SERDE_H_
