#include "common/timestamp.h"

#include <cinttypes>
#include <cstdio>

namespace mlfs {

std::string FormatTimestamp(Timestamp ts) {
  if (ts == kMinTimestamp) return "-inf";
  if (ts == kMaxTimestamp) return "+inf";
  const char* sign = "";
  if (ts < 0) {
    sign = "-";
    ts = -ts;
  }
  int64_t days = ts / kMicrosPerDay;
  int64_t rem = ts % kMicrosPerDay;
  int64_t hours = rem / kMicrosPerHour;
  rem %= kMicrosPerHour;
  int64_t minutes = rem / kMicrosPerMinute;
  rem %= kMicrosPerMinute;
  int64_t seconds = rem / kMicrosPerSecond;
  int64_t millis = (rem % kMicrosPerSecond) / kMicrosPerMilli;
  char buf[64];
  std::snprintf(buf, sizeof(buf),
                "%sd%" PRId64 " %02" PRId64 ":%02" PRId64 ":%02" PRId64
                ".%03" PRId64,
                sign, days, hours, minutes, seconds, millis);
  return buf;
}

}  // namespace mlfs
