#ifndef MLFS_COMMON_HISTOGRAM_H_
#define MLFS_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mlfs {

/// Log-bucketed latency/value histogram (HdrHistogram-lite). Records
/// non-negative values with ~4% relative bucket width; supports mean, count,
/// min/max and percentile queries. Used for serving-latency metrics.
class Histogram {
 public:
  Histogram();

  void Record(double value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Value at percentile `p` in [0, 100]; 0 when empty. Interpolates within
  /// the containing bucket.
  double Percentile(double p) const;

  /// "count=... mean=... p50=... p95=... p99=... max=..."
  std::string Summary() const;

 private:
  size_t BucketFor(double value) const;

  std::vector<uint64_t> buckets_;
  std::vector<double> bounds_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mlfs

#endif  // MLFS_COMMON_HISTOGRAM_H_
