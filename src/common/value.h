#ifndef MLFS_COMMON_VALUE_H_
#define MLFS_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "common/timestamp.h"

namespace mlfs {

/// Type of a feature value.
///
/// `kEmbedding` makes dense float vectors a first-class feature type — the
/// paper's central thesis is that feature stores must treat embeddings as
/// first-class citizens rather than opaque blobs.
enum class FeatureType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
  kTimestamp = 5,
  kEmbedding = 6,
};

/// Human-readable type name ("INT64", "EMBEDDING", ...).
std::string_view FeatureTypeToString(FeatureType type);

/// True for types on which arithmetic is defined (bool/int64/double).
constexpr bool IsNumeric(FeatureType type) {
  return type == FeatureType::kBool || type == FeatureType::kInt64 ||
         type == FeatureType::kDouble;
}

/// A dynamically typed feature value: the unit of data flowing through
/// ingestion, storage, transformation, and serving.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : type_(FeatureType::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(FeatureType::kBool, b); }
  static Value Int64(int64_t i) { return Value(FeatureType::kInt64, i); }
  static Value Double(double d) { return Value(FeatureType::kDouble, d); }
  static Value String(std::string s) {
    return Value(FeatureType::kString, std::move(s));
  }
  static Value Time(Timestamp t) { return Value(FeatureType::kTimestamp, t); }
  static Value Embedding(std::vector<float> v) {
    return Value(FeatureType::kEmbedding, std::move(v));
  }

  FeatureType type() const { return type_; }
  bool is_null() const { return type_ == FeatureType::kNull; }

  /// Typed accessors; aborts (DCHECK) on type mismatch.
  bool bool_value() const {
    MLFS_DCHECK(type_ == FeatureType::kBool);
    return std::get<bool>(data_);
  }
  int64_t int64_value() const {
    MLFS_DCHECK(type_ == FeatureType::kInt64);
    return std::get<int64_t>(data_);
  }
  double double_value() const {
    MLFS_DCHECK(type_ == FeatureType::kDouble);
    return std::get<double>(data_);
  }
  const std::string& string_value() const {
    MLFS_DCHECK(type_ == FeatureType::kString);
    return std::get<std::string>(data_);
  }
  Timestamp time_value() const {
    MLFS_DCHECK(type_ == FeatureType::kTimestamp);
    return std::get<int64_t>(data_);
  }
  const std::vector<float>& embedding_value() const {
    MLFS_DCHECK(type_ == FeatureType::kEmbedding);
    return std::get<std::vector<float>>(data_);
  }
  std::vector<float>& mutable_embedding() {
    MLFS_DCHECK(type_ == FeatureType::kEmbedding);
    return std::get<std::vector<float>>(data_);
  }

  /// Numeric coercion: bool -> 0/1, int64 -> double, double -> itself.
  /// Error for other types (including null).
  StatusOr<double> AsDouble() const;

  /// Byte footprint estimate used by store accounting.
  size_t ByteSize() const;

  /// Debug rendering; embeddings render as "emb[dim]" with a short prefix.
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    if (a.type_ != b.type_) return false;
    return a.data_ == b.data_;
  }

 private:
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string,
                           std::vector<float>>;

  Value(FeatureType type, bool b) : type_(type), data_(b) {}
  Value(FeatureType type, int64_t i) : type_(type), data_(i) {}
  Value(FeatureType type, double d) : type_(type), data_(d) {}
  Value(FeatureType type, std::string s) : type_(type), data_(std::move(s)) {}
  Value(FeatureType type, std::vector<float> v)
      : type_(type), data_(std::move(v)) {}

  FeatureType type_;
  Rep data_;
};

/// Stable 64-bit hash of a value (used for sketches and dedup).
uint64_t HashValue(const Value& v);

}  // namespace mlfs

#endif  // MLFS_COMMON_VALUE_H_
