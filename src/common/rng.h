#ifndef MLFS_COMMON_RNG_H_
#define MLFS_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace mlfs {

/// Deterministic pseudo-random number generator (xoshiro256**) with the
/// distribution helpers the synthetic workloads need.
///
/// All randomness in MLFS flows through explicitly seeded `Rng` instances so
/// that every test, example, and benchmark is exactly reproducible.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). `n` must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// True with probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Exponential with rate `lambda` (> 0).
  double Exponential(double lambda);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (reservoir sampling). If
  /// k >= n, returns all of [0, n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t s_[4];
};

/// Zipf(n, s) sampler over {0, 1, ..., n-1}: rank r has probability
/// proportional to 1 / (r+1)^s. Uses a precomputed CDF with binary search,
/// which is exact and fast enough for the workload sizes used here.
///
/// Zipfian access patterns model both the popularity skew of entity mentions
/// in self-supervised corpora (the paper's "rare things" problem, §3.1.1)
/// and hot-key skew in online feature serving.
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `s` is the skew exponent (s=0 is uniform).
  ZipfDistribution(size_t n, double s);

  /// Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of rank `r`.
  double Pmf(size_t r) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace mlfs

#endif  // MLFS_COMMON_RNG_H_
