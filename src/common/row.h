#ifndef MLFS_COMMON_ROW_H_
#define MLFS_COMMON_ROW_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace mlfs {

/// A tuple conforming to a Schema. Rows are the unit of ingestion and of
/// offline-store scans; the online store flattens them into per-feature
/// cells.
///
/// The values are held behind a shared, copy-on-write buffer: copying a
/// Row is two reference-count bumps (no heap allocation, no per-value
/// copy), which keeps the serving hot path — every online Get/MultiGet
/// returns a Row by value — allocation-free. set_value() clones the
/// buffer first when it is shared, so copies still behave as independent
/// tuples.
class Row {
 public:
  Row() = default;

  /// Builds a row after validating each value against the schema.
  static StatusOr<Row> Create(SchemaPtr schema, std::vector<Value> values);

  /// Builds without validation; DCHECKs the arity. Use on hot paths where
  /// the producer guarantees conformance.
  static Row CreateUnsafe(SchemaPtr schema, std::vector<Value> values) {
    MLFS_DCHECK(schema != nullptr);
    MLFS_DCHECK(values.size() == schema->num_fields());
    return Row(std::move(schema), std::move(values));
  }

  const SchemaPtr& schema() const { return schema_; }
  size_t num_values() const { return values_ ? values_->size() : 0; }

  const Value& value(size_t i) const {
    MLFS_DCHECK(values_ != nullptr && i < values_->size());
    return (*values_)[i];
  }

  /// Value of the column named `name`; error if no such column.
  StatusOr<Value> ValueByName(std::string_view name) const;

  /// Mutates column `i`. Detaches (clones) the value buffer first when it
  /// is shared with other Row copies.
  void set_value(size_t i, Value v) {
    MLFS_DCHECK(values_ != nullptr && i < values_->size());
    if (values_.use_count() > 1) {
      values_ = std::make_shared<std::vector<Value>>(*values_);
    }
    (*values_)[i] = std::move(v);
  }

  const std::vector<Value>& values() const {
    static const std::vector<Value> kEmpty;
    return values_ ? *values_ : kEmpty;
  }

  /// Address of the shared value buffer (control block + vector header
  /// line), for software prefetching only — copying a Row bumps the
  /// reference count that lives there. May be null; never dereference.
  const void* payload_address() const { return values_.get(); }

  size_t ByteSize() const;

  std::string ToString() const;

  friend bool operator==(const Row& a, const Row& b) {
    return a.values() == b.values();
  }

 private:
  Row(SchemaPtr schema, std::vector<Value> values)
      : schema_(std::move(schema)),
        values_(std::make_shared<std::vector<Value>>(std::move(values))) {}

  SchemaPtr schema_;
  std::shared_ptr<std::vector<Value>> values_;
};

}  // namespace mlfs

#endif  // MLFS_COMMON_ROW_H_
