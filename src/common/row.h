#ifndef MLFS_COMMON_ROW_H_
#define MLFS_COMMON_ROW_H_

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace mlfs {

/// A tuple conforming to a Schema. Rows are the unit of ingestion and of
/// offline-store scans; the online store flattens them into per-feature
/// cells.
class Row {
 public:
  Row() = default;

  /// Builds a row after validating each value against the schema.
  static StatusOr<Row> Create(SchemaPtr schema, std::vector<Value> values);

  /// Builds without validation; DCHECKs the arity. Use on hot paths where
  /// the producer guarantees conformance.
  static Row CreateUnsafe(SchemaPtr schema, std::vector<Value> values) {
    MLFS_DCHECK(schema != nullptr);
    MLFS_DCHECK(values.size() == schema->num_fields());
    return Row(std::move(schema), std::move(values));
  }

  const SchemaPtr& schema() const { return schema_; }
  size_t num_values() const { return values_.size(); }

  const Value& value(size_t i) const {
    MLFS_DCHECK(i < values_.size());
    return values_[i];
  }

  /// Value of the column named `name`; error if no such column.
  StatusOr<Value> ValueByName(std::string_view name) const;

  void set_value(size_t i, Value v) {
    MLFS_DCHECK(i < values_.size());
    values_[i] = std::move(v);
  }

  const std::vector<Value>& values() const { return values_; }

  size_t ByteSize() const;

  std::string ToString() const;

  friend bool operator==(const Row& a, const Row& b) {
    return a.values_ == b.values_;
  }

 private:
  Row(SchemaPtr schema, std::vector<Value> values)
      : schema_(std::move(schema)), values_(std::move(values)) {}

  SchemaPtr schema_;
  std::vector<Value> values_;
};

}  // namespace mlfs

#endif  // MLFS_COMMON_ROW_H_
