#include "common/serde.h"

#include <cstring>

namespace mlfs {

void Encoder::PutFixed32(uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 4);
}

void Encoder::PutFixed64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 8);
}

void Encoder::PutVarint64(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void Encoder::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(bits);
}

void Encoder::PutFloat(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed32(bits);
}

void Encoder::PutString(std::string_view s) {
  PutVarint64(s.size());
  buf_.append(s.data(), s.size());
}

void Encoder::PutValue(const Value& v) {
  PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case FeatureType::kNull:
      break;
    case FeatureType::kBool:
      PutU8(v.bool_value() ? 1 : 0);
      break;
    case FeatureType::kInt64:
      PutFixed64(static_cast<uint64_t>(v.int64_value()));
      break;
    case FeatureType::kDouble:
      PutDouble(v.double_value());
      break;
    case FeatureType::kString:
      PutString(v.string_value());
      break;
    case FeatureType::kTimestamp:
      PutFixed64(static_cast<uint64_t>(v.time_value()));
      break;
    case FeatureType::kEmbedding: {
      const auto& e = v.embedding_value();
      PutVarint64(e.size());
      for (float f : e) PutFloat(f);
      break;
    }
  }
}

void Encoder::PutRow(const Row& row) {
  PutVarint64(row.num_values());
  for (size_t i = 0; i < row.num_values(); ++i) PutValue(row.value(i));
}

void Encoder::PutSchema(const Schema& schema) {
  PutVarint64(schema.num_fields());
  for (const FieldSpec& field : schema.fields()) {
    PutString(field.name);
    PutU8(static_cast<uint8_t>(field.type));
    PutU8(field.nullable ? 1 : 0);
  }
}

Status Decoder::Need(size_t n) const {
  if (data_.size() - pos_ < n) {
    return Status::Corruption("decoder: truncated input (need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(data_.size() - pos_) + ")");
  }
  return Status::OK();
}

StatusOr<uint8_t> Decoder::GetU8() {
  MLFS_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

StatusOr<uint32_t> Decoder::GetFixed32() {
  MLFS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> Decoder::GetFixed64() {
  MLFS_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

StatusOr<uint64_t> Decoder::GetVarint64() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (shift > 63) return Status::Corruption("varint too long");
    MLFS_RETURN_IF_ERROR(Need(1));
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

StatusOr<double> Decoder::GetDouble() {
  MLFS_ASSIGN_OR_RETURN(uint64_t bits, GetFixed64());
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

StatusOr<float> Decoder::GetFloat() {
  MLFS_ASSIGN_OR_RETURN(uint32_t bits, GetFixed32());
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

StatusOr<std::string> Decoder::GetString() {
  MLFS_ASSIGN_OR_RETURN(uint64_t len, GetVarint64());
  MLFS_RETURN_IF_ERROR(Need(len));
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

StatusOr<Value> Decoder::GetValue() {
  MLFS_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  if (tag > static_cast<uint8_t>(FeatureType::kEmbedding)) {
    return Status::Corruption("bad value tag " + std::to_string(tag));
  }
  switch (static_cast<FeatureType>(tag)) {
    case FeatureType::kNull:
      return Value::Null();
    case FeatureType::kBool: {
      MLFS_ASSIGN_OR_RETURN(uint8_t b, GetU8());
      return Value::Bool(b != 0);
    }
    case FeatureType::kInt64: {
      MLFS_ASSIGN_OR_RETURN(uint64_t v, GetFixed64());
      return Value::Int64(static_cast<int64_t>(v));
    }
    case FeatureType::kDouble: {
      MLFS_ASSIGN_OR_RETURN(double d, GetDouble());
      return Value::Double(d);
    }
    case FeatureType::kString: {
      MLFS_ASSIGN_OR_RETURN(std::string s, GetString());
      return Value::String(std::move(s));
    }
    case FeatureType::kTimestamp: {
      MLFS_ASSIGN_OR_RETURN(uint64_t v, GetFixed64());
      return Value::Time(static_cast<Timestamp>(v));
    }
    case FeatureType::kEmbedding: {
      MLFS_ASSIGN_OR_RETURN(uint64_t dim, GetVarint64());
      if (dim > (1ULL << 24)) {
        return Status::Corruption("embedding dim too large: " +
                                  std::to_string(dim));
      }
      std::vector<float> e(dim);
      for (uint64_t i = 0; i < dim; ++i) {
        MLFS_ASSIGN_OR_RETURN(e[i], GetFloat());
      }
      return Value::Embedding(std::move(e));
    }
  }
  return Status::Corruption("unreachable value tag");
}

StatusOr<SchemaPtr> Decoder::GetSchema() {
  MLFS_ASSIGN_OR_RETURN(uint64_t n, GetVarint64());
  if (n > 100000) {
    return Status::Corruption("schema field count too large");
  }
  std::vector<FieldSpec> fields;
  fields.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    FieldSpec field;
    MLFS_ASSIGN_OR_RETURN(field.name, GetString());
    MLFS_ASSIGN_OR_RETURN(uint8_t type, GetU8());
    if (type > static_cast<uint8_t>(FeatureType::kEmbedding)) {
      return Status::Corruption("bad field type tag");
    }
    field.type = static_cast<FeatureType>(type);
    MLFS_ASSIGN_OR_RETURN(uint8_t nullable, GetU8());
    field.nullable = nullable != 0;
    fields.push_back(std::move(field));
  }
  return Schema::Create(std::move(fields));
}

StatusOr<Row> Decoder::GetRow(SchemaPtr schema) {
  MLFS_ASSIGN_OR_RETURN(uint64_t n, GetVarint64());
  std::vector<Value> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    MLFS_ASSIGN_OR_RETURN(Value v, GetValue());
    values.push_back(std::move(v));
  }
  return Row::Create(std::move(schema), std::move(values));
}

}  // namespace mlfs
