#ifndef MLFS_COMMON_FAILPOINT_H_
#define MLFS_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "common/status.h"

namespace mlfs {

/// Deterministic fault injection ("failpoints") for resilience testing.
///
/// Fallible operations on the storage/serving/streaming hot paths declare a
/// named failpoint (e.g. "online_store.get") via MLFS_FAILPOINT. Tests arm a
/// failpoint with a FailpointConfig — an error to inject, a trigger rule
/// (probability / every-Nth / first-K), and optional simulated latency — and
/// the operation then fails or stalls exactly as a flaky disk, overloaded
/// shard, or lossy network hop would, but reproducibly: probabilistic
/// triggers draw from the registry's explicitly seeded `Rng`, never from
/// wall-clock entropy.
///
/// When nothing is armed the per-callsite cost is one relaxed atomic load,
/// so failpoints stay compiled into release binaries.
struct FailpointConfig {
  /// Injected when the failpoint fires. An OK status turns the failpoint
  /// into a pure latency injector.
  Status status = Status::Internal("injected fault");
  /// Probability that an eligible evaluation fires ([0, 1]).
  double probability = 1.0;
  /// If > 0, only every Nth eligible evaluation may fire (1st, N+1th, ...).
  uint64_t every_nth = 0;
  /// Evaluations ignored before the failpoint becomes eligible.
  uint64_t skip_first = 0;
  /// If > 0, the failpoint disarms itself after firing this many times.
  uint64_t max_fires = 0;
  /// Simulated latency slept (real time) on every fire.
  uint64_t latency_micros = 0;
};

/// Lifetime counters of one failpoint (kept across disarm, reset on re-arm).
struct FailpointStats {
  uint64_t evaluations = 0;
  uint64_t fires = 0;
};

/// Process-wide registry of named failpoints. Thread-safe.
class FailpointRegistry {
 public:
  /// The singleton used by MLFS_FAILPOINT callsites.
  static FailpointRegistry& Instance();

  /// Arms `name` with `config`, resetting its counters. Re-arming an armed
  /// failpoint replaces its configuration.
  void Arm(const std::string& name, FailpointConfig config);

  /// Disarms `name` (no-op when not armed). Counters are retained so tests
  /// can assert on them after the fact.
  void Disarm(const std::string& name);

  /// Disarms every failpoint. Tests should call this (or use
  /// ScopedFailpoint) to avoid leaking armed state across test cases.
  void DisarmAll();

  /// Reseeds the deterministic RNG behind probabilistic triggers. Equal
  /// seeds and equal evaluation sequences produce identical fire patterns.
  void Reseed(uint64_t seed);

  bool IsArmed(const std::string& name) const;

  /// Counters for `name` (zeros when never armed).
  FailpointStats stats(const std::string& name) const;

  /// True iff at least one failpoint is armed. Lock-free fast path for
  /// MLFS_FAILPOINT.
  bool AnyArmed() const {
    return armed_count_.load(std::memory_order_acquire) > 0;
  }

  /// Evaluates `name`: returns the injected status when it fires (after
  /// sleeping any configured latency), OK otherwise.
  Status Evaluate(const std::string& name);

 private:
  struct Point {
    FailpointConfig config;
    bool armed = false;
    uint64_t evaluations = 0;
    uint64_t fires = 0;
  };

  FailpointRegistry() = default;

  std::atomic<int> armed_count_{0};
  mutable std::mutex mu_;
  Rng rng_{0xfa17b017u};  // Overridden by Reseed().
  std::unordered_map<std::string, Point> points_;
};

/// RAII failpoint activation: arms on construction, disarms on destruction.
/// The standard way for a test to scope injected faults.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, FailpointConfig config);
  ~ScopedFailpoint();

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  const std::string& name() const { return name_; }
  FailpointStats stats() const;

 private:
  std::string name_;
};

}  // namespace mlfs

/// Declares a failpoint on a fallible path: when armed and fired, returns
/// the injected error out of the enclosing function (works for both Status
/// and StatusOr<T> returns). One relaxed atomic load when nothing is armed.
#define MLFS_FAILPOINT(name)                                         \
  do {                                                               \
    if (::mlfs::FailpointRegistry::Instance().AnyArmed()) {          \
      ::mlfs::Status _mlfs_fp_status =                               \
          ::mlfs::FailpointRegistry::Instance().Evaluate(name);      \
      if (!_mlfs_fp_status.ok()) return _mlfs_fp_status;             \
    }                                                                \
  } while (false)

#endif  // MLFS_COMMON_FAILPOINT_H_
