#include "common/failpoint.h"

#include <chrono>
#include <thread>

namespace mlfs {

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Arm(const std::string& name, FailpointConfig config) {
  std::lock_guard lock(mu_);
  Point& point = points_[name];
  if (!point.armed) {
    armed_count_.fetch_add(1, std::memory_order_release);
  }
  point.config = std::move(config);
  point.armed = true;
  point.evaluations = 0;
  point.fires = 0;
}

void FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_release);
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard lock(mu_);
  for (auto& [name, point] : points_) {
    if (point.armed) {
      point.armed = false;
      armed_count_.fetch_sub(1, std::memory_order_release);
    }
  }
}

void FailpointRegistry::Reseed(uint64_t seed) {
  std::lock_guard lock(mu_);
  rng_ = Rng(seed);
}

bool FailpointRegistry::IsArmed(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = points_.find(name);
  return it != points_.end() && it->second.armed;
}

FailpointStats FailpointRegistry::stats(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) return {};
  return {it->second.evaluations, it->second.fires};
}

Status FailpointRegistry::Evaluate(const std::string& name) {
  Status injected;
  uint64_t latency_micros = 0;
  {
    std::lock_guard lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end() || !it->second.armed) return Status::OK();
    Point& point = it->second;
    ++point.evaluations;
    if (point.evaluations <= point.config.skip_first) return Status::OK();
    uint64_t eligible = point.evaluations - point.config.skip_first;
    if (point.config.every_nth > 0 &&
        (eligible - 1) % point.config.every_nth != 0) {
      return Status::OK();
    }
    if (point.config.probability < 1.0 &&
        !rng_.Bernoulli(point.config.probability)) {
      return Status::OK();
    }
    ++point.fires;
    if (point.config.max_fires > 0 &&
        point.fires >= point.config.max_fires) {
      point.armed = false;
      armed_count_.fetch_sub(1, std::memory_order_release);
    }
    injected = point.config.status;
    latency_micros = point.config.latency_micros;
  }
  // Sleep outside the lock so latency injection on one failpoint does not
  // stall evaluations of others.
  if (latency_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_micros));
  }
  return injected;
}

ScopedFailpoint::ScopedFailpoint(std::string name, FailpointConfig config)
    : name_(std::move(name)) {
  FailpointRegistry::Instance().Arm(name_, std::move(config));
}

ScopedFailpoint::~ScopedFailpoint() {
  FailpointRegistry::Instance().Disarm(name_);
}

FailpointStats ScopedFailpoint::stats() const {
  return FailpointRegistry::Instance().stats(name_);
}

}  // namespace mlfs
