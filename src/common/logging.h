#ifndef MLFS_COMMON_LOGGING_H_
#define MLFS_COMMON_LOGGING_H_

#include <sstream>

namespace mlfs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

namespace internal_logging {

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
LogLevel GetMinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Converts a streamed LogMessage expression to void so it can appear on
/// one arm of a ternary operator (the glog "voidify" idiom).
struct Voidify {
  template <typename T>
  void operator&(T&&) {}
};

}  // namespace internal_logging

/// Sets the global log threshold (messages below are suppressed).
inline void SetMinLogLevel(LogLevel level) {
  internal_logging::SetMinLogLevel(level);
}

#define MLFS_LOG(severity)                                             \
  ::mlfs::internal_logging::LogMessage(::mlfs::LogLevel::k##severity,  \
                                       __FILE__, __LINE__)

/// Aborts the process with a message when `condition` is false. Supports
/// trailing stream output: MLFS_CHECK(x > 0) << "x was " << x;
#define MLFS_CHECK(condition)                                 \
  (condition) ? (void)0                                       \
              : ::mlfs::internal_logging::Voidify() &         \
                    MLFS_LOG(Fatal) << "Check failed: " #condition " "

#define MLFS_CHECK_OK(expr)                                          \
  do {                                                               \
    const auto& _mlfs_check_status = (expr);                         \
    MLFS_CHECK(_mlfs_check_status.ok())                              \
        << "Status not OK: " << _mlfs_check_status.ToString();       \
  } while (false)

#ifndef NDEBUG
#define MLFS_DCHECK(condition) MLFS_CHECK(condition)
#else
#define MLFS_DCHECK(condition)                         \
  true ? (void)0                                       \
       : ::mlfs::internal_logging::Voidify() &         \
             ::mlfs::internal_logging::NullStream()
#endif

}  // namespace mlfs

#endif  // MLFS_COMMON_LOGGING_H_
