#ifndef MLFS_COMMON_STATUS_H_
#define MLFS_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace mlfs {

/// Canonical error codes, modeled after the RocksDB / Abseil status sets.
enum class StatusCode : uint8_t {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kCorruption = 6,
  kUnimplemented = 7,
  kResourceExhausted = 8,
  kInternal = 9,
};

/// Returns a human-readable name for `code` (e.g. "NotFound").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Cheap to copy in the OK case.
///
/// MLFS never throws exceptions across public API boundaries; fallible
/// operations return `Status` (or `StatusOr<T>` when they also produce a
/// value). Use the factory functions (`Status::NotFound(...)` etc.) to
/// construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type `T` or an error `Status`. Never holds an OK
/// status without a value.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit, mirroring absl::StatusOr).
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Aborts if `status.ok()`.
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    MLFS_CHECK(!std::get<Status>(rep_).ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  /// Returns the contained value; aborts if not ok().
  const T& value() const& {
    MLFS_CHECK(ok()) << "StatusOr::value() on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T& value() & {
    MLFS_CHECK(ok()) << "StatusOr::value() on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T&& value() && {
    MLFS_CHECK(ok()) << "StatusOr::value() on error: " << status().ToString();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

/// Propagates a non-OK status to the caller.
#define MLFS_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::mlfs::Status _mlfs_status = (expr);           \
    if (!_mlfs_status.ok()) return _mlfs_status;    \
  } while (false)

#define MLFS_STATUS_CONCAT_INNER_(a, b) a##b
#define MLFS_STATUS_CONCAT_(a, b) MLFS_STATUS_CONCAT_INNER_(a, b)

/// Evaluates `rexpr` (a StatusOr<T>), propagating errors; otherwise binds
/// the value to `lhs`.
#define MLFS_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  MLFS_ASSIGN_OR_RETURN_IMPL_(                                             \
      MLFS_STATUS_CONCAT_(_mlfs_statusor_, __LINE__), lhs, rexpr)

#define MLFS_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

}  // namespace mlfs

#endif  // MLFS_COMMON_STATUS_H_
