#ifndef MLFS_COMMON_REF_H_
#define MLFS_COMMON_REF_H_

#include <cstdlib>
#include <string>
#include <string_view>

namespace mlfs {

/// A parsed "name@vK" artifact reference — the one convention every catalog
/// in MLFS (features, embeddings, models) uses to pin a specific version of
/// a named artifact. version 0 means "unpinned": the reference names the
/// artifact without committing to a version (consumers resolve to latest).
///
/// Parsing is deliberately forgiving: a trailing "@v<non-digits>" (e.g. the
/// literal name "user@vip") is *not* a version suffix, so the whole string
/// is treated as a bare name. This mirrors what EmbeddingStore::Resolve and
/// ModelRegistry historically did in three private copies.
struct VersionedRef {
  std::string name;
  int version = 0;

  bool pinned() const { return version > 0; }

  /// "name@vK" when pinned, bare "name" otherwise.
  std::string ToString() const {
    return version > 0 ? name + "@v" + std::to_string(version) : name;
  }

  friend bool operator==(const VersionedRef& a, const VersionedRef& b) {
    return a.version == b.version && a.name == b.name;
  }
};

/// Canonical "name@vK" formatting (K > 0); bare name when version <= 0.
inline std::string FormatVersionedRef(const std::string& name, int version) {
  return version > 0 ? name + "@v" + std::to_string(version) : name;
}

/// Parses "name@vK" into {name, K}. Returns {reference, 0} when there is no
/// "@v" suffix, when the suffix is not a positive integer ("user@vip",
/// "emb@vx", "emb@v0"), or when the name part would be empty ("@v3").
inline VersionedRef ParseVersionedRef(std::string_view reference) {
  VersionedRef ref;
  size_t at = reference.rfind("@v");
  if (at == std::string_view::npos || at == 0) {
    ref.name = std::string(reference);
    return ref;
  }
  std::string version_text(reference.substr(at + 2));
  char* end = nullptr;
  long version = std::strtol(version_text.c_str(), &end, 10);
  if (version_text.empty() || end == nullptr || *end != '\0' || version <= 0) {
    ref.name = std::string(reference);
    return ref;
  }
  ref.name = std::string(reference.substr(0, at));
  ref.version = static_cast<int>(version);
  return ref;
}

}  // namespace mlfs

#endif  // MLFS_COMMON_REF_H_
