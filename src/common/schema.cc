#include "common/schema.h"

namespace mlfs {

Schema::Schema(std::vector<FieldSpec> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, static_cast<int>(i));
  }
}

StatusOr<SchemaPtr> Schema::Create(std::vector<FieldSpec> fields) {
  std::unordered_map<std::string, int> seen;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name.empty()) {
      return Status::InvalidArgument("schema field " + std::to_string(i) +
                                     " has empty name");
    }
    if (!seen.emplace(fields[i].name, 1).second) {
      return Status::InvalidArgument("duplicate schema field: " +
                                     fields[i].name);
    }
  }
  return SchemaPtr(new Schema(std::move(fields)));
}

int Schema::FieldIndex(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return -1;
  return it->second;
}

bool Schema::Accepts(size_t i, const Value& v) const {
  MLFS_DCHECK(i < fields_.size());
  if (v.is_null()) return fields_[i].nullable;
  return v.type() == fields_[i].type;
}

std::string Schema::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += FeatureTypeToString(fields_[i].type);
    if (!fields_[i].nullable) out += " NOT NULL";
  }
  out += "}";
  return out;
}

}  // namespace mlfs
