#ifndef MLFS_COMMON_HASH_H_
#define MLFS_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace mlfs {

/// 64-bit FNV-1a over raw bytes. Stable across platforms and runs, which
/// matters because store sharding and sketch bucketing must be
/// deterministic.
inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashBytes(std::string_view s, uint64_t seed = 0) {
  return Fnv1a64(s.data(), s.size(), 0xcbf29ce484222325ULL ^ seed);
}

/// Final avalanche of MurmurHash3; good integer mixer.
inline uint64_t MixHash(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Fast 64-bit hash over short byte strings: 8-byte blocks folded through
/// a multiplicative mixer, so a dozen-byte key costs a handful of
/// multiplies instead of a dependent multiply per byte (FNV-1a). Used on
/// the serving hot path where key hashing is per-request work.
/// Deterministic for a given platform byte order, which is all store
/// sharding needs.
inline uint64_t FastHash64(const void* data, size_t len, uint64_t seed = 0) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed ^ (0x9e3779b97f4a7c15ULL * (len + 1));
  for (; len >= 8; p += 8, len -= 8) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    h = MixHash(h ^ k);
  }
  if (len > 0) {
    uint64_t k = 0;
    std::memcpy(&k, p, len);
    h = MixHash(h ^ k);
  }
  return h;
}

/// Boost-style hash combiner.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace mlfs

#endif  // MLFS_COMMON_HASH_H_
