#ifndef MLFS_COMMON_STRING_UTIL_H_
#define MLFS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mlfs {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace mlfs

#endif  // MLFS_COMMON_STRING_UTIL_H_
