#include "common/threadpool.h"

#include <algorithm>

#include "common/logging.h"

namespace mlfs {

ThreadPool::ThreadPool(size_t num_threads) {
  MLFS_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    MLFS_CHECK(!shutdown_) << "Submit after shutdown";
    tasks_.push_back(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) done_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (pool == nullptr || pool->num_threads() <= 1 || n < 2) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const size_t num_chunks = std::min(n, pool->num_threads() * 4);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = 0;
  for (size_t start = begin; start < end; start += chunk) {
    const size_t stop = std::min(end, start + chunk);
    {
      std::unique_lock<std::mutex> lock(mu);
      ++pending;
    }
    pool->Submit([&, start, stop] {
      for (size_t i = start; i < stop; ++i) fn(i);
      std::unique_lock<std::mutex> lock(mu);
      if (--pending == 0) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return pending == 0; });
}

}  // namespace mlfs
