#include "common/row.h"

namespace mlfs {

StatusOr<Row> Row::Create(SchemaPtr schema, std::vector<Value> values) {
  if (schema == nullptr) {
    return Status::InvalidArgument("row schema is null");
  }
  if (values.size() != schema->num_fields()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(values.size()) +
        " does not match schema arity " +
        std::to_string(schema->num_fields()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (!schema->Accepts(i, values[i])) {
      return Status::InvalidArgument(
          "value for field '" + schema->field(i).name + "' has type " +
          std::string(FeatureTypeToString(values[i].type())) +
          ", schema expects " +
          std::string(FeatureTypeToString(schema->field(i).type)) +
          (values[i].is_null() ? " (non-nullable column)" : ""));
    }
  }
  return Row(std::move(schema), std::move(values));
}

StatusOr<Value> Row::ValueByName(std::string_view name) const {
  int idx = schema_ ? schema_->FieldIndex(name) : -1;
  if (idx < 0) {
    return Status::NotFound("no column named '" + std::string(name) + "'");
  }
  return (*values_)[static_cast<size_t>(idx)];
}

size_t Row::ByteSize() const {
  size_t total = 0;
  for (const auto& v : values()) total += v.ByteSize();
  return total;
}

std::string Row::ToString() const {
  std::string out = "(";
  const std::vector<Value>& vals = values();
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i) out += ", ";
    if (schema_) {
      out += schema_->field(i).name;
      out += "=";
    }
    out += vals[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace mlfs
