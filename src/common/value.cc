#include "common/value.h"

#include <cmath>
#include <cstdio>

#include "common/hash.h"

namespace mlfs {

std::string_view FeatureTypeToString(FeatureType type) {
  switch (type) {
    case FeatureType::kNull:
      return "NULL";
    case FeatureType::kBool:
      return "BOOL";
    case FeatureType::kInt64:
      return "INT64";
    case FeatureType::kDouble:
      return "DOUBLE";
    case FeatureType::kString:
      return "STRING";
    case FeatureType::kTimestamp:
      return "TIMESTAMP";
    case FeatureType::kEmbedding:
      return "EMBEDDING";
  }
  return "UNKNOWN";
}

StatusOr<double> Value::AsDouble() const {
  switch (type_) {
    case FeatureType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case FeatureType::kInt64:
      return static_cast<double>(int64_value());
    case FeatureType::kDouble:
      return double_value();
    default:
      return Status::InvalidArgument(
          std::string("cannot coerce ") +
          std::string(FeatureTypeToString(type_)) + " to double");
  }
}

size_t Value::ByteSize() const {
  switch (type_) {
    case FeatureType::kNull:
      return 1;
    case FeatureType::kBool:
      return 2;
    case FeatureType::kInt64:
    case FeatureType::kDouble:
    case FeatureType::kTimestamp:
      return 9;
    case FeatureType::kString:
      return 5 + string_value().size();
    case FeatureType::kEmbedding:
      return 5 + embedding_value().size() * sizeof(float);
  }
  return 1;
}

std::string Value::ToString() const {
  char buf[64];
  switch (type_) {
    case FeatureType::kNull:
      return "NULL";
    case FeatureType::kBool:
      return bool_value() ? "true" : "false";
    case FeatureType::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int64_value()));
      return buf;
    case FeatureType::kDouble:
      std::snprintf(buf, sizeof(buf), "%.6g", double_value());
      return buf;
    case FeatureType::kString:
      return "\"" + string_value() + "\"";
    case FeatureType::kTimestamp:
      return FormatTimestamp(time_value());
    case FeatureType::kEmbedding: {
      const auto& e = embedding_value();
      std::string out = "emb[" + std::to_string(e.size()) + "](";
      for (size_t i = 0; i < e.size() && i < 3; ++i) {
        std::snprintf(buf, sizeof(buf), "%s%.3f", i ? ", " : "",
                      static_cast<double>(e[i]));
        out += buf;
      }
      if (e.size() > 3) out += ", ...";
      out += ")";
      return out;
    }
  }
  return "?";
}

uint64_t HashValue(const Value& v) {
  uint64_t seed = MixHash(static_cast<uint64_t>(v.type()) + 0x51ULL);
  switch (v.type()) {
    case FeatureType::kNull:
      return seed;
    case FeatureType::kBool:
      return HashCombine(seed, v.bool_value() ? 1 : 0);
    case FeatureType::kInt64:
      return HashCombine(seed, MixHash(static_cast<uint64_t>(v.int64_value())));
    case FeatureType::kDouble: {
      double d = v.double_value();
      if (d == 0.0) d = 0.0;  // Collapse -0.0 and +0.0.
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return HashCombine(seed, MixHash(bits));
    }
    case FeatureType::kString:
      return HashCombine(seed, HashBytes(v.string_value()));
    case FeatureType::kTimestamp:
      return HashCombine(seed, MixHash(static_cast<uint64_t>(v.time_value())));
    case FeatureType::kEmbedding: {
      const auto& e = v.embedding_value();
      return HashCombine(seed,
                         Fnv1a64(e.data(), e.size() * sizeof(float)));
    }
  }
  return seed;
}

}  // namespace mlfs
