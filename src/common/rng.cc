#include "common/rng.h"

#include <algorithm>

namespace mlfs {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  MLFS_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MLFS_DCHECK(lo <= hi);
  // Unsigned arithmetic throughout: hi - lo overflows int64 for spans wider
  // than INT64_MAX, and wraparound is only defined for unsigned types.
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full range.
  return static_cast<int64_t>(static_cast<uint64_t>(lo) + Uniform(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  // Box-Muller; uses one value per call for simplicity and determinism.
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Exponential(double lambda) {
  MLFS_DCHECK(lambda > 0);
  double u = UniformDouble();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> out;
  if (k >= n) {
    out.resize(n);
    for (size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(i);
  for (size_t i = k; i < n; ++i) {
    size_t j = Uniform(i + 1);
    if (j < k) out[j] = i;
  }
  std::sort(out.begin(), out.end());
  return out;
}

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  MLFS_CHECK(n >= 1);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against rounding.
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::Pmf(size_t r) const {
  MLFS_DCHECK(r < cdf_.size());
  if (r == 0) return cdf_[0];
  return cdf_[r] - cdf_[r - 1];
}

}  // namespace mlfs
