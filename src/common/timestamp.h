#ifndef MLFS_COMMON_TIMESTAMP_H_
#define MLFS_COMMON_TIMESTAMP_H_

#include <cstdint>
#include <string>

namespace mlfs {

/// Logical time in microseconds since an arbitrary epoch.
///
/// MLFS is fully deterministic: all "time" flowing through the store (event
/// times, feature timestamps, orchestrator cadences) is logical time managed
/// by a `SimClock`, never the wall clock. Wall-clock is used only to
/// *measure* latency in benchmarks.
using Timestamp = int64_t;

inline constexpr Timestamp kMicrosPerMilli = 1000;
inline constexpr Timestamp kMicrosPerSecond = 1000 * kMicrosPerMilli;
inline constexpr Timestamp kMicrosPerMinute = 60 * kMicrosPerSecond;
inline constexpr Timestamp kMicrosPerHour = 60 * kMicrosPerMinute;
inline constexpr Timestamp kMicrosPerDay = 24 * kMicrosPerHour;

constexpr Timestamp Seconds(int64_t n) { return n * kMicrosPerSecond; }
constexpr Timestamp Minutes(int64_t n) { return n * kMicrosPerMinute; }
constexpr Timestamp Hours(int64_t n) { return n * kMicrosPerHour; }
constexpr Timestamp Days(int64_t n) { return n * kMicrosPerDay; }

/// Sentinel for "no timestamp" / "infinitely old".
inline constexpr Timestamp kMinTimestamp = INT64_MIN;
/// Sentinel for "infinitely recent" (end of time).
inline constexpr Timestamp kMaxTimestamp = INT64_MAX;

/// Renders `ts` as "d<days> hh:mm:ss.mmm" relative to the logical epoch.
std::string FormatTimestamp(Timestamp ts);

/// A monotonically advancing logical clock shared by a simulation.
///
/// The clock never goes backwards; `AdvanceTo` with an older time is a
/// no-op. Not thread-safe; simulations drive it from a single thread.
class SimClock {
 public:
  explicit SimClock(Timestamp start = 0) : now_(start) {}

  Timestamp now() const { return now_; }

  /// Moves time forward by `delta` microseconds (must be >= 0).
  void Advance(Timestamp delta) {
    if (delta > 0) now_ += delta;
  }

  /// Moves time forward to `t`; ignored if `t` is in the past.
  void AdvanceTo(Timestamp t) {
    if (t > now_) now_ = t;
  }

 private:
  Timestamp now_;
};

}  // namespace mlfs

#endif  // MLFS_COMMON_TIMESTAMP_H_
