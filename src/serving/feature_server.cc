#include "serving/feature_server.h"

#include <chrono>

namespace mlfs {
namespace {

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StatusOr<FeatureVector> FeatureServer::GetFeatures(
    const Value& entity_key, const std::vector<std::string>& features,
    Timestamp now) const {
  const double start = NowMicros();
  FeatureVector out;
  out.names = features;
  out.values.reserve(features.size());
  for (const std::string& feature : features) {
    StatusOr<Row> row = store_->Get(feature, entity_key, now);
    if (!row.ok()) {
      if (options_.missing_policy == MissingFeaturePolicy::kError) {
        return Status::NotFound("feature '" + feature +
                                "' unavailable: " + row.status().message());
      }
      out.values.push_back(Value::Null());
      ++out.missing;
      continue;
    }
    // Materialized views have layout {entity, event_time, value}.
    int value_idx = row->schema()->FieldIndex("value");
    int time_idx = row->schema()->FieldIndex("event_time");
    if (value_idx < 0 || time_idx < 0) {
      return Status::FailedPrecondition(
          "view '" + feature + "' is not a materialized feature view");
    }
    out.values.push_back(row->value(value_idx));
    out.oldest_event_time =
        std::min(out.oldest_event_time, row->value(time_idx).time_value());
  }
  {
    std::lock_guard lock(mu_);
    latency_us_.Record(NowMicros() - start);
    ++requests_;
  }
  return out;
}

StatusOr<std::vector<FeatureVector>> FeatureServer::GetFeaturesBatch(
    const std::vector<Value>& entity_keys,
    const std::vector<std::string>& features, Timestamp now) const {
  std::vector<FeatureVector> out;
  out.reserve(entity_keys.size());
  for (const Value& key : entity_keys) {
    MLFS_ASSIGN_OR_RETURN(FeatureVector fv, GetFeatures(key, features, now));
    out.push_back(std::move(fv));
  }
  return out;
}

Histogram FeatureServer::latency_histogram() const {
  std::lock_guard lock(mu_);
  return latency_us_;
}

uint64_t FeatureServer::requests() const {
  std::lock_guard lock(mu_);
  return requests_;
}

}  // namespace mlfs
