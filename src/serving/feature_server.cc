#include "serving/feature_server.h"

#include <chrono>
#include <thread>

#include "common/failpoint.h"

namespace mlfs {
namespace {

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Errors worth retrying: the store (or an injected fault standing in for a
/// flaky backend) failed to answer, as opposed to answering "no such value".
bool IsTransient(const Status& s) {
  switch (s.code()) {
    case StatusCode::kInternal:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCorruption:
      return true;
    default:
      return false;
  }
}

}  // namespace

StatusOr<FeatureVector> FeatureServer::GetFeatures(
    const Value& entity_key, const std::vector<std::string>& features,
    Timestamp now) const {
  MLFS_FAILPOINT("feature_server.get");
  const double start = NowMicros();
  const uint32_t max_attempts = std::max<uint32_t>(1, options_.max_attempts);
  uint64_t retries = 0;
  FeatureVector out;
  out.names = features;
  out.values.reserve(features.size());
  for (const std::string& feature : features) {
    StatusOr<Row> row = store_->Get(feature, entity_key, now);
    for (uint32_t attempt = 1;
         !row.ok() && IsTransient(row.status()) && attempt < max_attempts;
         ++attempt) {
      if (options_.initial_backoff_micros > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            options_.initial_backoff_micros << (attempt - 1)));
      }
      ++retries;
      row = store_->Get(feature, entity_key, now);
    }
    if (!row.ok()) {
      const bool transient = IsTransient(row.status());
      if (options_.missing_policy == MissingFeaturePolicy::kError) {
        retries_.fetch_add(retries, std::memory_order_relaxed);
        return Status::NotFound("feature '" + feature +
                                "' unavailable: " + row.status().message());
      }
      out.values.push_back(Value::Null());
      ++out.missing;
      if (transient) ++out.degraded;  // Retries exhausted, not a miss.
      continue;
    }
    // Materialized views have layout {entity, event_time, value}.
    int value_idx = row->schema()->FieldIndex("value");
    int time_idx = row->schema()->FieldIndex("event_time");
    if (value_idx < 0 || time_idx < 0) {
      retries_.fetch_add(retries, std::memory_order_relaxed);
      return Status::FailedPrecondition(
          "view '" + feature + "' is not a materialized feature view");
    }
    out.values.push_back(row->value(value_idx));
    out.oldest_event_time =
        std::min(out.oldest_event_time, row->value(time_idx).time_value());
  }
  retries_.fetch_add(retries, std::memory_order_relaxed);
  if (out.degraded > 0) {
    degraded_features_.fetch_add(out.degraded, std::memory_order_relaxed);
    degraded_responses_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard lock(mu_);
    latency_us_.Record(NowMicros() - start);
    ++requests_;
  }
  return out;
}

StatusOr<std::vector<FeatureVector>> FeatureServer::GetFeaturesBatch(
    const std::vector<Value>& entity_keys,
    const std::vector<std::string>& features, Timestamp now) const {
  std::vector<FeatureVector> out;
  out.reserve(entity_keys.size());
  for (const Value& key : entity_keys) {
    MLFS_ASSIGN_OR_RETURN(FeatureVector fv, GetFeatures(key, features, now));
    out.push_back(std::move(fv));
  }
  return out;
}

Histogram FeatureServer::latency_histogram() const {
  std::lock_guard lock(mu_);
  return latency_us_;
}

FeatureServerStats FeatureServer::stats() const {
  FeatureServerStats s;
  {
    std::lock_guard lock(mu_);
    s.requests = requests_;
  }
  s.retries = retries_.load(std::memory_order_relaxed);
  s.degraded_features = degraded_features_.load(std::memory_order_relaxed);
  s.degraded_responses = degraded_responses_.load(std::memory_order_relaxed);
  return s;
}

uint64_t FeatureServer::requests() const {
  std::lock_guard lock(mu_);
  return requests_;
}

}  // namespace mlfs
