#include "serving/feature_server.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "common/threadpool.h"
#include "expr/bytecode.h"
#include "expr/parser.h"
#include "registry/registry.h"

namespace mlfs {
namespace {

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Errors worth retrying: the store (or an injected fault standing in for a
/// flaky backend) failed to answer, as opposed to answering "no such value".
bool IsTransient(const Status& s) {
  switch (s.code()) {
    case StatusCode::kInternal:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCorruption:
      return true;
    default:
      return false;
  }
}

/// Stable per-thread stripe assignment: threads round-robin onto stripes at
/// first use, so steady-state recording from a fixed reader pool is
/// contention-free.
size_t ThreadStripeSeed() {
  static std::atomic<size_t> next{0};
  thread_local const size_t seed =
      next.fetch_add(1, std::memory_order_relaxed);
  return seed;
}

}  // namespace

FeatureServer::FeatureServer(const OnlineStore* store,
                             FeatureServerOptions options,
                             const EmbeddingStore* embeddings,
                             const LineageGraph* lineage,
                             const FeatureRegistry* registry)
    : store_(store),
      embeddings_(embeddings),
      lineage_(lineage),
      registry_(registry),
      options_(options),
      metrics_(kMetricsStripes) {
  if (options_.batch_parallelism > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.batch_parallelism);
  }
}

EmbeddingTablePtr FeatureServer::ResolveEmbeddingFeature(
    const std::string& feature) const {
  // Online views win: a materialized view named like an embedding keeps
  // its pre-hydration behavior.
  if (embeddings_ == nullptr || store_->HasView(feature)) return nullptr;
  auto table = embeddings_->Resolve(feature);
  return table.ok() ? *table : nullptr;
}

std::string FeatureServer::StaleNoteArtifact(const std::string& feature,
                                             const ArtifactId& artifact) const {
  if (lineage_ == nullptr) return "";
  std::optional<StalenessInfo> info = lineage_->StalenessOf(artifact);
  if (!info.has_value()) return "";
  return feature + ": " + info->ToString();
}

std::string FeatureServer::StaleNote(const std::string& feature,
                                     const EmbeddingTablePtr& table) const {
  return StaleNoteArtifact(
      feature, table != nullptr ? EmbeddingArtifact(table->metadata().name,
                                                    table->metadata().version)
                                : ViewArtifact(feature));
}

std::optional<FeatureServer::ComputedFeature>
FeatureServer::ResolveComputedFeature(const std::string& feature) const {
  // Materialized views and embeddings win, preserving their pre-registry
  // serving behavior; request-time evaluation only backs names that
  // nothing else serves.
  if (registry_ == nullptr || store_->HasView(feature)) return std::nullopt;
  if (ResolveEmbeddingFeature(feature) != nullptr) return std::nullopt;
  StatusOr<RegisteredFeature> reg = registry_->Get(feature);
  if (!reg.ok()) return std::nullopt;
  ComputedFeature out;
  out.reg = std::move(*reg);
  out.mirror_view = SourceMirrorViewName(out.reg.def.source_table);
  out.program = CompiledProgramFor(out.reg);
  return out;
}

std::shared_ptr<const Program> FeatureServer::CompiledProgramFor(
    const RegisteredFeature& reg) const {
  const std::string key = reg.VersionedName();
  {
    std::lock_guard lock(compile_mu_);
    auto it = compile_cache_.find(key);
    if (it != compile_cache_.end()) return it->second;
  }
  // The mirror view carries the source table's full schema; until the
  // first ingest creates it there is nothing to evaluate against (every
  // entity would miss anyway), so failure is not cached.
  StatusOr<SchemaPtr> schema =
      store_->ViewSchema(SourceMirrorViewName(reg.def.source_table));
  if (!schema.ok()) return nullptr;
  StatusOr<ExprPtr> expr = ParseExpr(reg.def.expression);
  if (!expr.ok()) return nullptr;
  StatusOr<std::shared_ptr<const Program>> program =
      Program::Lower(**expr, *schema);
  if (!program.ok()) return nullptr;
  std::lock_guard lock(compile_mu_);
  return compile_cache_.emplace(key, std::move(*program)).first->second;
}

FeatureServer::~FeatureServer() = default;

void FeatureServer::RecordLatency(double micros,
                                  uint64_t num_requests) const {
  MetricsStripe& stripe = metrics_[ThreadStripeSeed() % kMetricsStripes];
  std::lock_guard lock(stripe.mu);
  for (uint64_t i = 0; i < num_requests; ++i) stripe.latency_us.Record(micros);
  stripe.requests += num_requests;
}

StatusOr<FeatureVector> FeatureServer::GetFeatures(
    const Value& entity_key, const std::vector<std::string>& features,
    Timestamp now) const {
  MLFS_FAILPOINT("feature_server.get");
  const double start = NowMicros();
  const uint32_t max_attempts = std::max<uint32_t>(1, options_.max_attempts);
  uint64_t retries = 0;
  FeatureVector out;
  out.names = features;
  out.values.reserve(features.size());
  for (const std::string& feature : features) {
    if (EmbeddingTablePtr table = ResolveEmbeddingFeature(feature)) {
      if (std::string note = StaleNote(feature, table); !note.empty()) {
        out.stale.push_back(std::move(note));
      }
      const float* vec = nullptr;
      if (entity_key.type() == FeatureType::kString) {
        auto lookup = table->Get(entity_key.string_value());
        if (lookup.ok()) vec = *lookup;
      }
      if (vec == nullptr) {
        if (options_.missing_policy == MissingFeaturePolicy::kError) {
          retries_.fetch_add(retries, std::memory_order_relaxed);
          return Status::NotFound("feature '" + feature +
                                  "' unavailable: no embedding for entity " +
                                  entity_key.ToString());
        }
        out.values.push_back(Value::Null());
        ++out.missing;
        continue;
      }
      out.values.push_back(
          Value::Embedding(std::vector<float>(vec, vec + table->dim())));
      out.oldest_event_time =
          std::min(out.oldest_event_time, table->metadata().created_at);
      continue;
    }
    if (std::optional<ComputedFeature> comp = ResolveComputedFeature(feature)) {
      if (std::string note = StaleNoteArtifact(
              feature, FeatureArtifact(comp->reg.def.name, comp->reg.version));
          !note.empty()) {
        out.stale.push_back(std::move(note));
      }
      StatusOr<Row> row =
          comp->program != nullptr
              ? store_->Get(comp->mirror_view, entity_key, now)
              : StatusOr<Row>(Status::NotFound("no source rows ingested for '" +
                                               comp->reg.def.source_table +
                                               "'"));
      for (uint32_t attempt = 1;
           !row.ok() && IsTransient(row.status()) && attempt < max_attempts;
           ++attempt) {
        if (options_.initial_backoff_micros > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(
              options_.initial_backoff_micros << (attempt - 1)));
        }
        ++retries;
        row = store_->Get(comp->mirror_view, entity_key, now);
      }
      bool transient = false;
      StatusOr<Value> value = [&]() -> StatusOr<Value> {
        if (!row.ok()) {
          transient = IsTransient(row.status());
          return row.status();
        }
        ExprScratch scratch;
        return comp->program->EvalRow(*row, &scratch);
      }();
      if (!value.ok()) {
        if (options_.missing_policy == MissingFeaturePolicy::kError) {
          retries_.fetch_add(retries, std::memory_order_relaxed);
          return Status::NotFound("feature '" + feature +
                                  "' unavailable: " + value.status().message());
        }
        out.values.push_back(Value::Null());
        ++out.missing;
        if (transient) ++out.degraded;  // Retries exhausted, not a miss.
        continue;
      }
      // A NULL result of a live evaluation is the feature's value, not a
      // miss — exactly what the materializer would have logged.
      out.values.push_back(std::move(*value));
      const int time_idx =
          row->schema()->FieldIndex(comp->reg.source_time_column);
      if (time_idx >= 0) {
        out.oldest_event_time =
            std::min(out.oldest_event_time, row->value(time_idx).time_value());
      }
      continue;
    }
    if (std::string note = StaleNote(feature, nullptr); !note.empty()) {
      out.stale.push_back(std::move(note));
    }
    StatusOr<Row> row = store_->Get(feature, entity_key, now);
    for (uint32_t attempt = 1;
         !row.ok() && IsTransient(row.status()) && attempt < max_attempts;
         ++attempt) {
      if (options_.initial_backoff_micros > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            options_.initial_backoff_micros << (attempt - 1)));
      }
      ++retries;
      row = store_->Get(feature, entity_key, now);
    }
    if (!row.ok()) {
      const bool transient = IsTransient(row.status());
      if (options_.missing_policy == MissingFeaturePolicy::kError) {
        retries_.fetch_add(retries, std::memory_order_relaxed);
        return Status::NotFound("feature '" + feature +
                                "' unavailable: " + row.status().message());
      }
      out.values.push_back(Value::Null());
      ++out.missing;
      if (transient) ++out.degraded;  // Retries exhausted, not a miss.
      continue;
    }
    // Materialized views have layout {entity, event_time, value}.
    int value_idx = row->schema()->FieldIndex("value");
    int time_idx = row->schema()->FieldIndex("event_time");
    if (value_idx < 0 || time_idx < 0) {
      retries_.fetch_add(retries, std::memory_order_relaxed);
      return Status::FailedPrecondition(
          "view '" + feature + "' is not a materialized feature view");
    }
    out.values.push_back(row->value(value_idx));
    out.oldest_event_time =
        std::min(out.oldest_event_time, row->value(time_idx).time_value());
  }
  retries_.fetch_add(retries, std::memory_order_relaxed);
  if (out.degraded > 0) {
    degraded_features_.fetch_add(out.degraded, std::memory_order_relaxed);
    degraded_responses_.fetch_add(1, std::memory_order_relaxed);
  }
  RecordLatency(NowMicros() - start, 1);
  return out;
}

std::vector<StatusOr<FeatureVector>> FeatureServer::GetFeaturesBatch(
    const std::vector<Value>& entity_keys,
    const std::vector<std::string>& features, Timestamp now) const {
  const double start = NowMicros();
  const size_t n = entity_keys.size();
  const size_t num_views = features.size();
  std::vector<StatusOr<FeatureVector>> out(
      n, StatusOr<FeatureVector>(
             Status::Internal("GetFeaturesBatch: slot not filled")));
  if (n == 0) return out;
  const uint32_t max_attempts = std::max<uint32_t>(1, options_.max_attempts);

  // Stage 1 — fetch: one shard-grouped MultiGet per requested view, then
  // per-(entity, feature)-cell retry with backoff for transient errors.
  // Views are independent, so with batch_parallelism > 1 they fan out over
  // the pool; each task writes only its own column.
  std::vector<std::vector<StatusOr<Row>>> columns(num_views);
  // {value, event_time} field indices per view, from its first live row;
  // {-1, -1} when the view never produced a row in this batch.
  std::vector<std::pair<int, int>> layout(num_views, {-1, -1});
  // Views that hydrate straight from an embedding table: one
  // EmbeddingTable::MultiGet per view, no online-store traffic. A null
  // table means view j goes through the online path.
  struct EmbeddingColumn {
    EmbeddingTablePtr table;
    std::vector<const float*> rows;  // Null = missing key.
    /// Owned copies of the found rows when `table` is tiered: tier
    /// pointers only survive until the serving thread's next tiered read,
    /// and assembly (stage 2) runs after other views' fetches.
    std::vector<float> storage;
  };
  std::vector<EmbeddingColumn> emb_columns(num_views);
  // Per-view staleness annotation, shared by every entity in the batch.
  std::vector<std::string> stale_notes(num_views);

  // Serving-time computed features: registered definitions with no
  // materialized view evaluate here, over each entity's latest raw source
  // row. One shard-grouped mirror-view MultiGet per distinct source table
  // (shared across computed features of that table), then one vectorized
  // EvalBatch per feature over the rows found. Mirror fetches and
  // evaluation run before the parallel view stage.
  struct ComputedColumn {
    std::optional<ComputedFeature> comp;
    std::vector<StatusOr<Value>> cells;  // Per entity: value or status.
    std::vector<Timestamp> event_times;  // kMaxTimestamp where not found.
  };
  std::vector<ComputedColumn> computed(num_views);
  std::unordered_map<std::string, std::vector<StatusOr<Row>>> mirror_columns;
  if (registry_ != nullptr) {
    for (size_t j = 0; j < num_views; ++j) {
      computed[j].comp = ResolveComputedFeature(features[j]);
      if (!computed[j].comp.has_value()) continue;
      stale_notes[j] = StaleNoteArtifact(
          features[j], FeatureArtifact(computed[j].comp->reg.def.name,
                                       computed[j].comp->reg.version));
      if (computed[j].comp->program != nullptr) {
        mirror_columns.try_emplace(computed[j].comp->mirror_view);
      }
    }
    for (auto& [view, column] : mirror_columns) {
      column = store_->MultiGet(view, entity_keys, now);
      uint64_t retries = 0;
      for (size_t i = 0; i < n; ++i) {
        StatusOr<Row>& cell = column[i];
        for (uint32_t attempt = 1; !cell.ok() && IsTransient(cell.status()) &&
                                   attempt < max_attempts;
             ++attempt) {
          if (options_.initial_backoff_micros > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(
                options_.initial_backoff_micros << (attempt - 1)));
          }
          ++retries;
          cell = store_->Get(view, entity_keys[i], now);
        }
      }
      if (retries) retries_.fetch_add(retries, std::memory_order_relaxed);
    }
    for (size_t j = 0; j < num_views; ++j) {
      ComputedColumn& cc = computed[j];
      if (!cc.comp.has_value()) continue;
      const Program* program = cc.comp->program.get();
      cc.cells.assign(
          n, StatusOr<Value>(Status::NotFound(
                 "no source rows ingested for '" +
                 cc.comp->reg.def.source_table + "'")));
      cc.event_times.assign(n, kMaxTimestamp);
      if (program == nullptr) continue;  // Mirror view does not exist yet.
      const std::vector<StatusOr<Row>>& mirror =
          mirror_columns[cc.comp->mirror_view];
      std::vector<const Row*> rows;
      std::vector<size_t> row_index;
      rows.reserve(n);
      row_index.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (!mirror[i].ok()) {
          cc.cells[i] = mirror[i].status();
          continue;
        }
        rows.push_back(&*mirror[i]);
        row_index.push_back(i);
      }
      if (rows.empty()) continue;
      ExprScratch scratch;
      RowPtrBatchSource batch_src(program->schema(), rows);
      const ColumnVector* res = nullptr;
      if (Status batch = program->EvalBatch(batch_src, &scratch, &res);
          batch.ok()) {
        for (size_t k = 0; k < rows.size(); ++k) {
          cc.cells[row_index[k]] = res->GetValue(k);
        }
      } else {
        // One failing row poisons the whole batch result; re-run the
        // found rows one at a time so each entity carries its own status
        // (bit-identical — EvalBatch reports what EvalRow would).
        for (size_t k = 0; k < rows.size(); ++k) {
          cc.cells[row_index[k]] = program->EvalRow(*rows[k], &scratch);
        }
      }
      const int time_idx = program->schema()->FieldIndex(
          cc.comp->reg.source_time_column);
      if (time_idx >= 0) {
        for (size_t k = 0; k < rows.size(); ++k) {
          cc.event_times[row_index[k]] =
              rows[k]->value(time_idx).time_value();
        }
      }
    }
  }

  auto fetch_view = [&](size_t j) {
    if (computed[j].comp.has_value()) return;  // Evaluated above.
    if (EmbeddingTablePtr table = ResolveEmbeddingFeature(features[j])) {
      EmbeddingColumn& emb = emb_columns[j];
      emb.table = std::move(table);
      stale_notes[j] = StaleNote(features[j], emb.table);
      std::vector<std::string> string_keys(n);
      for (size_t i = 0; i < n; ++i) {
        if (entity_keys[i].type() == FeatureType::kString) {
          string_keys[i] = entity_keys[i].string_value();
        }
        // Non-string keys keep "", which no table key matches (embedding
        // keys are non-empty by construction) — a plain miss.
      }
      emb.rows = emb.table->MultiGet(string_keys);
      if (emb.table->tiered()) {
        const size_t dim = emb.table->dim();
        emb.storage.resize(n * dim);
        for (size_t i = 0; i < n; ++i) {
          if (emb.rows[i] == nullptr) continue;
          float* dst = emb.storage.data() + i * dim;
          std::copy(emb.rows[i], emb.rows[i] + dim, dst);
          emb.rows[i] = dst;
        }
      }
      return;
    }
    stale_notes[j] = StaleNote(features[j], nullptr);
    std::vector<StatusOr<Row>>& column = columns[j];
    column = store_->MultiGet(features[j], entity_keys, now);
    uint64_t retries = 0;
    for (size_t i = 0; i < n; ++i) {
      StatusOr<Row>& cell = column[i];
      for (uint32_t attempt = 1;
           !cell.ok() && IsTransient(cell.status()) && attempt < max_attempts;
           ++attempt) {
        if (options_.initial_backoff_micros > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(
              options_.initial_backoff_micros << (attempt - 1)));
        }
        ++retries;
        cell = store_->Get(features[j], entity_keys[i], now);
      }
      if (cell.ok() && layout[j].first < 0) {
        layout[j] = {cell->schema()->FieldIndex("value"),
                     cell->schema()->FieldIndex("event_time")};
      }
    }
    if (retries) retries_.fetch_add(retries, std::memory_order_relaxed);
  };
  if (pool_ != nullptr && num_views > 1) {
    ParallelFor(pool_.get(), 0, num_views,
                [&fetch_view](size_t j) { fetch_view(j); });
  } else {
    for (size_t j = 0; j < num_views; ++j) fetch_view(j);
  }

  // Stage 2 — assemble one FeatureVector per entity from the fetched
  // columns. Entities fail independently: kError fails only the entity
  // whose feature is unavailable.
  const bool any_failpoint = FailpointRegistry::Instance().AnyArmed();
  uint64_t degraded_features = 0, degraded_responses = 0;
  for (size_t i = 0; i < n; ++i) {
    if (any_failpoint) {
      // Per-request failpoint, one evaluation per entity, as in the
      // per-entity GetFeatures path.
      Status injected =
          FailpointRegistry::Instance().Evaluate("feature_server.get");
      if (!injected.ok()) {
        out[i] = std::move(injected);
        continue;
      }
    }
    FeatureVector fv;
    fv.names = features;
    fv.values.reserve(num_views);
    for (size_t j = 0; j < num_views; ++j) {
      if (!stale_notes[j].empty()) fv.stale.push_back(stale_notes[j]);
    }
    Status entity_error;
    for (size_t j = 0; j < num_views; ++j) {
      if (emb_columns[j].table != nullptr) {
        const EmbeddingColumn& emb = emb_columns[j];
        const float* vec = emb.rows[i];
        if (vec == nullptr) {
          if (options_.missing_policy == MissingFeaturePolicy::kError) {
            entity_error = Status::NotFound(
                "feature '" + features[j] +
                "' unavailable: no embedding for entity " +
                entity_keys[i].ToString());
            break;
          }
          fv.values.push_back(Value::Null());
          ++fv.missing;
          continue;
        }
        fv.values.push_back(Value::Embedding(
            std::vector<float>(vec, vec + emb.table->dim())));
        fv.oldest_event_time = std::min(fv.oldest_event_time,
                                        emb.table->metadata().created_at);
        continue;
      }
      if (computed[j].comp.has_value()) {
        const StatusOr<Value>& cell = computed[j].cells[i];
        if (!cell.ok()) {
          const bool transient = IsTransient(cell.status());
          if (options_.missing_policy == MissingFeaturePolicy::kError) {
            entity_error =
                Status::NotFound("feature '" + features[j] +
                                 "' unavailable: " + cell.status().message());
            break;
          }
          fv.values.push_back(Value::Null());
          ++fv.missing;
          if (transient) ++fv.degraded;
          continue;
        }
        // A NULL evaluation result is the feature's value, not a miss.
        fv.values.push_back(*cell);
        fv.oldest_event_time =
            std::min(fv.oldest_event_time, computed[j].event_times[i]);
        continue;
      }
      const StatusOr<Row>& cell = columns[j][i];
      if (!cell.ok()) {
        const bool transient = IsTransient(cell.status());
        if (options_.missing_policy == MissingFeaturePolicy::kError) {
          entity_error =
              Status::NotFound("feature '" + features[j] +
                               "' unavailable: " + cell.status().message());
          break;
        }
        fv.values.push_back(Value::Null());
        ++fv.missing;
        if (transient) ++fv.degraded;
        continue;
      }
      const auto [value_idx, time_idx] = layout[j];
      if (value_idx < 0 || time_idx < 0) {
        entity_error = Status::FailedPrecondition(
            "view '" + features[j] + "' is not a materialized feature view");
        break;
      }
      fv.values.push_back(cell->value(value_idx));
      fv.oldest_event_time =
          std::min(fv.oldest_event_time, cell->value(time_idx).time_value());
    }
    if (!entity_error.ok()) {
      out[i] = std::move(entity_error);
      continue;
    }
    if (fv.degraded > 0) {
      degraded_features += fv.degraded;
      ++degraded_responses;
    }
    out[i] = std::move(fv);
  }
  if (degraded_features > 0) {
    degraded_features_.fetch_add(degraded_features, std::memory_order_relaxed);
    degraded_responses_.fetch_add(degraded_responses,
                                  std::memory_order_relaxed);
  }
  // Each entity counts as one request at the batch's amortized latency.
  RecordLatency((NowMicros() - start) / static_cast<double>(n), n);
  return out;
}

Histogram FeatureServer::latency_histogram() const {
  Histogram merged;
  for (const MetricsStripe& stripe : metrics_) {
    std::lock_guard lock(stripe.mu);
    merged.Merge(stripe.latency_us);
  }
  return merged;
}

FeatureServerStats FeatureServer::stats() const {
  FeatureServerStats s;
  s.requests = requests();
  s.retries = retries_.load(std::memory_order_relaxed);
  s.degraded_features = degraded_features_.load(std::memory_order_relaxed);
  s.degraded_responses = degraded_responses_.load(std::memory_order_relaxed);
  if (embeddings_ != nullptr) s.embedding_tiers = embeddings_->TierStats();
  return s;
}

uint64_t FeatureServer::requests() const {
  uint64_t total = 0;
  for (const MetricsStripe& stripe : metrics_) {
    std::lock_guard lock(stripe.mu);
    total += stripe.requests;
  }
  return total;
}

}  // namespace mlfs
