#ifndef MLFS_SERVING_FEATURE_SERVER_H_
#define MLFS_SERVING_FEATURE_SERVER_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/row.h"
#include "common/status.h"
#include "storage/online_store.h"

namespace mlfs {

/// What Get does when a requested feature has no live online value.
enum class MissingFeaturePolicy : uint8_t {
  kNull,   // Fill with NULL (model handles imputation).
  kError,  // Fail the whole request.
};

struct FeatureServerOptions {
  MissingFeaturePolicy missing_policy = MissingFeaturePolicy::kNull;
};

/// An assembled feature vector for one entity.
struct FeatureVector {
  std::vector<std::string> names;
  std::vector<Value> values;
  /// Event time of the oldest contributing feature (staleness signal);
  /// kMaxTimestamp when every feature was missing.
  Timestamp oldest_event_time = kMaxTimestamp;
  uint64_t missing = 0;
};

/// Low-latency online feature serving: assembles per-entity feature
/// vectors from materialized online views ("features need to be
/// continuously provided to deployed models", paper §2.2.2). Each
/// requested feature name must be an online view produced by the
/// materializer (schema {entity, event_time, value}).
///
/// Thread-safe. Latency of every request is recorded (wall-clock
/// microseconds) in latency_histogram() — the one place MLFS uses real
/// time, because serving latency is a measurement, not simulation state.
class FeatureServer {
 public:
  explicit FeatureServer(const OnlineStore* store,
                         FeatureServerOptions options = {})
      : store_(store), options_(options) {}

  /// Fetches `features` for `entity_key` at logical time `now`.
  StatusOr<FeatureVector> GetFeatures(const Value& entity_key,
                                      const std::vector<std::string>& features,
                                      Timestamp now) const;

  /// Batched variant; each entity gets its own FeatureVector.
  StatusOr<std::vector<FeatureVector>> GetFeaturesBatch(
      const std::vector<Value>& entity_keys,
      const std::vector<std::string>& features, Timestamp now) const;

  /// Copy of the request-latency histogram (microseconds).
  Histogram latency_histogram() const;

  uint64_t requests() const;

 private:
  const OnlineStore* store_;  // Not owned.
  FeatureServerOptions options_;
  mutable std::mutex mu_;
  mutable Histogram latency_us_;
  mutable uint64_t requests_ = 0;
};

}  // namespace mlfs

#endif  // MLFS_SERVING_FEATURE_SERVER_H_
