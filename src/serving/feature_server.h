#ifndef MLFS_SERVING_FEATURE_SERVER_H_
#define MLFS_SERVING_FEATURE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/row.h"
#include "common/status.h"
#include "embedding/embedding_store.h"
#include "lineage/lineage_graph.h"
#include "registry/feature_def.h"
#include "storage/online_store.h"

namespace mlfs {

class FeatureRegistry;  // registry/registry.h
class Program;          // expr/bytecode.h
class ThreadPool;

/// What Get does when a requested feature has no live online value.
enum class MissingFeaturePolicy : uint8_t {
  kNull,   // Fill with NULL (model handles imputation).
  kError,  // Fail the whole request.
};

struct FeatureServerOptions {
  MissingFeaturePolicy missing_policy = MissingFeaturePolicy::kNull;
  /// Store reads per feature before giving up on a *transient* error
  /// (Internal / ResourceExhausted / Corruption): 1 means no retries.
  /// Non-transient errors (NotFound, InvalidArgument, ...) never retry.
  uint32_t max_attempts = 1;
  /// Real-time backoff before retry k: initial_backoff_micros << (k-1).
  /// 0 disables sleeping (retries stay back-to-back; keep 0 in unit tests).
  uint64_t initial_backoff_micros = 0;
  /// When > 1, GetFeaturesBatch fans its per-view MultiGets out over an
  /// internal thread pool of this many workers; 1 keeps assembly serial.
  uint32_t batch_parallelism = 1;
};

/// Traffic and resilience counters for one FeatureServer.
struct FeatureServerStats {
  uint64_t requests = 0;
  /// Store reads re-issued after a transient error.
  uint64_t retries = 0;
  /// Features NULL-filled because retries were exhausted (kNull policy).
  uint64_t degraded_features = 0;
  /// Responses containing at least one degraded feature.
  uint64_t degraded_responses = 0;
  /// Aggregate tier + readahead I/O counters for the attached embedding
  /// store (all zero when the server has no embedding store) — the
  /// operator-facing view of cold-path behavior behind serving.
  EmbeddingStoreTierStats embedding_tiers;
};

/// An assembled feature vector for one entity.
struct FeatureVector {
  std::vector<std::string> names;
  std::vector<Value> values;
  /// Event time of the oldest contributing feature (staleness signal);
  /// kMaxTimestamp when every feature was missing.
  Timestamp oldest_event_time = kMaxTimestamp;
  uint64_t missing = 0;
  /// Subset of `missing` that was NULL-filled after exhausting retries on
  /// a transient store error (graceful degradation), rather than a miss.
  uint64_t degraded = 0;
  /// Staleness annotations, one "<feature>: <why>" entry per requested
  /// feature whose serving artifact (online view or embedding table) is
  /// marked stale in the lineage graph. Empty = everything served fresh.
  std::vector<std::string> stale;
};

/// Low-latency online feature serving: assembles per-entity feature
/// vectors from materialized online views ("features need to be
/// continuously provided to deployed models", paper §2.2.2). Each
/// requested feature name must be an online view produced by the
/// materializer (schema {entity, event_time, value}).
///
/// Transient store errors (as injected by failpoints, or surfaced by a
/// future disk/remote backend) are retried up to options.max_attempts with
/// exponential backoff; when retries are exhausted the server degrades
/// gracefully per MissingFeaturePolicy instead of failing the request
/// (kNull fills NULL so the model can impute). stats() exposes
/// retry/degradation counters for alerting.
///
/// GetFeaturesBatch is batch-aware: it issues one shard-grouped
/// OnlineStore::MultiGet per requested view (views × one store call,
/// instead of entities × features point Gets), retries transient errors
/// per (entity, feature) cell, and — with batch_parallelism > 1 — fans
/// view fetches out over an internal thread pool. Results are per-entity:
/// one entity failing under kError does not fail its batch-mates.
///
/// When constructed with an EmbeddingStore, a requested feature that is
/// not an online view but names a registered embedding (bare name or
/// "name@vK") hydrates straight from the embedding table — one
/// EmbeddingTable::MultiGet per view per batch — so embedding features
/// ride the batched serving path without being copied row-by-row into the
/// online store first. Entity keys must be strings for embedding
/// hydration (embedding tables key by string); other key types miss.
///
/// When constructed with a FeatureRegistry, a requested feature that is
/// neither an online view nor an embedding but *is* registered evaluates
/// its definition at request time: the server fetches each entity's
/// latest raw source row from the table's mirror view (written by
/// FeatureStore::Ingest; see SourceMirrorViewName) with the same
/// shard-grouped MultiGet the view path uses, then runs the published
/// expression through the bytecode VM vector-at-a-time over the found
/// rows. Programs are compiled once per definition version and cached;
/// mirror fetches for computed features sharing a source table are
/// issued once per table per batch. NULL/error semantics match offline
/// materialization exactly (the same compiled program evaluates both
/// sides), so a served computed value is byte-identical to what the
/// materializer would have logged for that input row. A feature whose
/// latest version is marked stale in the lineage graph carries the same
/// staleness annotation the view path produces.
///
/// Thread-safe. Latency of every request is recorded (wall-clock
/// microseconds) in latency_histogram() — the one place MLFS uses real
/// time, because serving latency is a measurement, not simulation state.
/// Metrics are striped across per-thread-affine histogram shards merged
/// on read, so latency recording never serializes concurrent requests.
class FeatureServer {
 public:
  /// `embeddings` (optional, not owned) enables direct embedding-feature
  /// hydration for feature names that resolve in it. `lineage` (optional,
  /// not owned) enables per-response staleness annotations: a feature
  /// whose view/embedding artifact is marked stale in the graph is still
  /// served, but the response says so (FeatureVector::stale). `registry`
  /// (optional, not owned) enables serving-time evaluation of registered
  /// features that have no materialized online view.
  explicit FeatureServer(const OnlineStore* store,
                         FeatureServerOptions options = {},
                         const EmbeddingStore* embeddings = nullptr,
                         const LineageGraph* lineage = nullptr,
                         const FeatureRegistry* registry = nullptr);
  ~FeatureServer();

  FeatureServer(const FeatureServer&) = delete;
  FeatureServer& operator=(const FeatureServer&) = delete;

  /// Fetches `features` for `entity_key` at logical time `now`.
  StatusOr<FeatureVector> GetFeatures(const Value& entity_key,
                                      const std::vector<std::string>& features,
                                      Timestamp now) const;

  /// Batched variant; entry i is entity_keys[i]'s result. Entries fail
  /// independently (under kError a missing feature fails only that
  /// entity's entry; a non-feature view fails every entry with
  /// FailedPrecondition). Each entity counts as one request and records
  /// one latency sample (the batch's amortized per-entity latency).
  std::vector<StatusOr<FeatureVector>> GetFeaturesBatch(
      const std::vector<Value>& entity_keys,
      const std::vector<std::string>& features, Timestamp now) const;

  /// Merged copy of the striped request-latency histograms (microseconds).
  Histogram latency_histogram() const;

  FeatureServerStats stats() const;

  uint64_t requests() const;

 private:
  /// One stripe of the request metrics; requests pick a stripe by thread
  /// affinity so concurrent recordings hit disjoint locks. Padded to a
  /// cache line to avoid false sharing between stripes.
  struct alignas(64) MetricsStripe {
    mutable std::mutex mu;
    Histogram latency_us;
    uint64_t requests = 0;
  };
  static constexpr size_t kMetricsStripes = 8;

  void RecordLatency(double micros, uint64_t num_requests) const;

  /// Resolved embedding table for a requested feature name, or null when
  /// the name should go through the online-view path.
  EmbeddingTablePtr ResolveEmbeddingFeature(const std::string& feature) const;

  /// A feature served by evaluating its published definition at request
  /// time against the source table's mirror view.
  struct ComputedFeature {
    RegisteredFeature reg;
    std::string mirror_view;
    /// Compiled against the mirror view's schema; null until the mirror
    /// view exists (no ingest yet), in which case every entity misses.
    std::shared_ptr<const Program> program;
  };

  /// Resolves `feature` as serving-time computed: registered in
  /// `registry_`, not an online view, not an embedding. nullopt sends the
  /// name down the other paths.
  std::optional<ComputedFeature> ResolveComputedFeature(
      const std::string& feature) const;

  /// Cached (compiling on first use) program for `reg`, keyed "name@vN".
  std::shared_ptr<const Program> CompiledProgramFor(
      const RegisteredFeature& reg) const;

  /// "<feature>: <why>" when `artifact` is marked stale ("" otherwise).
  std::string StaleNoteArtifact(const std::string& feature,
                                const ArtifactId& artifact) const;

  /// As above for the view/embedding serving artifact behind `feature`.
  /// `table` is the resolved embedding table, or null for the online-view
  /// path.
  std::string StaleNote(const std::string& feature,
                        const EmbeddingTablePtr& table) const;

  const OnlineStore* store_;            // Not owned.
  const EmbeddingStore* embeddings_;    // Not owned; may be null.
  const LineageGraph* lineage_;         // Not owned; may be null.
  const FeatureRegistry* registry_;     // Not owned; may be null.
  FeatureServerOptions options_;
  /// Compiled programs for served computed features, keyed "name@vN".
  mutable std::mutex compile_mu_;
  mutable std::unordered_map<std::string, std::shared_ptr<const Program>>
      compile_cache_;
  /// Workers for parallel per-view batch assembly; null when
  /// options_.batch_parallelism <= 1.
  std::unique_ptr<ThreadPool> pool_;
  mutable std::vector<MetricsStripe> metrics_;
  mutable std::atomic<uint64_t> retries_{0};
  mutable std::atomic<uint64_t> degraded_features_{0};
  mutable std::atomic<uint64_t> degraded_responses_{0};
};

}  // namespace mlfs

#endif  // MLFS_SERVING_FEATURE_SERVER_H_
