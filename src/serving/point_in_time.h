#ifndef MLFS_SERVING_POINT_IN_TIME_H_
#define MLFS_SERVING_POINT_IN_TIME_H_

#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "storage/offline_store.h"

namespace mlfs {

class ThreadPool;

/// One feature source to join onto the spine.
struct JoinSource {
  /// Historical table to read from (not owned; must outlive the join).
  const OfflineTable* table = nullptr;
  /// Columns to project; empty means "all except the entity/time columns".
  std::vector<std::string> columns;
  /// Prefix applied to projected column names (avoids collisions), e.g.
  /// "user_stats__".
  std::string prefix;
  /// Maximum allowed feature age: a value only joins when its event time is
  /// within [spine_ts - max_age, spine_ts]. 0 disables the check.
  Timestamp max_age = 0;
  /// Optional explicit output names, parallel to `columns` (overrides
  /// prefix+column). Used to surface a feature log's "value" column under
  /// the feature's own name.
  std::vector<std::string> output_columns;
};

/// A joined training set: schema plus rows.
struct TrainingSet {
  SchemaPtr schema;
  std::vector<Row> rows;
  /// Joined cells that came back NULL because the source had no history at
  /// (or within max_age of) the spine timestamp.
  uint64_t missing_cells = 0;
};

/// Execution knobs for the batched join engine. Mirrors FeatureServer's
/// view fan-out: work splits across sources and, within a source, across
/// entity-range shards of the sorted request array.
struct JoinOptions {
  /// External worker pool (not owned). Takes precedence over max_threads.
  ThreadPool* pool = nullptr;
  /// When `pool` is null and max_threads > 1, the join runs on an internal
  /// pool of this many workers; 1 keeps everything on the calling thread.
  uint32_t max_threads = 1;
};

/// A spine prepared for joining: entity keys canonicalized once, the
/// (key, ts) sort permutation computed once. Training pipelines typically
/// join the *same* label spine against several feature sets (model
/// variants, ablations); building the index once and passing it to
/// repeated PointInTimeJoin/NaiveLatestJoin/BuildTrainingSet calls skips
/// the canonicalize+sort step on every call after the first. The spine
/// rows are held by copy (cheap copy-on-write reference bumps), so the
/// index stays valid independent of the caller's vector.
class SpineIndex {
 public:
  /// Marker in pos_of_row() for spine rows that issue no batch request
  /// (their entity key is not INT64/STRING; they miss every source).
  static constexpr uint32_t kNoRequest = UINT32_MAX;

  /// Validates the spine (non-empty, uniform schema, entity/time columns
  /// present, time column TIMESTAMP) and builds the index.
  static StatusOr<SpineIndex> Build(std::vector<Row> spine,
                                    const std::string& entity_column,
                                    const std::string& time_column);

  const std::vector<Row>& rows() const { return rows_; }
  const SchemaPtr& schema() const { return schema_; }
  int entity_idx() const { return entity_idx_; }
  int time_idx() const { return time_idx_; }
  /// Canonical entity key per spine row (empty for unjoinable keys).
  const std::vector<std::string>& keys() const { return keys_; }
  /// Spine timestamp per spine row.
  const std::vector<Timestamp>& times() const { return times_; }
  /// Spine row indices in (canonical key, ts) order — the order batch
  /// requests are issued in. Unjoinable rows are absent.
  const std::vector<uint32_t>& sorted_rows() const { return sorted_; }
  /// Inverse permutation: spine row -> its slot in sorted_rows(), or
  /// kNoRequest.
  const std::vector<uint32_t>& pos_of_row() const { return pos_of_row_; }

 private:
  SpineIndex() = default;

  std::vector<Row> rows_;
  SchemaPtr schema_;
  int entity_idx_ = -1;
  int time_idx_ = -1;
  std::vector<std::string> keys_;
  std::vector<Timestamp> times_;
  std::vector<uint32_t> sorted_;
  std::vector<uint32_t> pos_of_row_;
};

/// Point-in-time (as-of) join: for each spine row (entity, t, labels...),
/// attaches each source's latest values with event time <= t. This is the
/// feature-store primitive that makes training sets *leakage-free* — a
/// model never sees feature values from after the moment of prediction
/// (paper §2.2.2: "FSs support this workflow by partitioning features on
/// date and providing APIs to allow for time based joins").
///
/// `spine` rows must share a schema containing `spine_entity_column`
/// (INT64/STRING) and `spine_time_column` (TIMESTAMP). Output columns are
/// the spine columns followed by each source's projected columns (all
/// nullable, NULL when no history qualifies).
///
/// Executes as a batched sort-merge as-of join: spine entity keys are
/// canonicalized once, an index permutation of the spine is sorted by
/// (key, ts), and each source is answered with OfflineTable::AsOfBatch
/// calls — one shared-lock acquisition per shard instead of one per spine
/// row per source. `options` fans work out across sources and entity-range
/// shards. Output is identical to the retained row-at-a-time reference
/// (PointInTimeJoinReference), which a property test enforces.
StatusOr<TrainingSet> PointInTimeJoin(const std::vector<Row>& spine,
                                      const std::string& spine_entity_column,
                                      const std::string& spine_time_column,
                                      const std::vector<JoinSource>& sources,
                                      const JoinOptions& options = {});

/// As above, but reusing a prebuilt SpineIndex (see SpineIndex for when
/// that pays off). Output is identical to the by-rows overload on the same
/// spine.
StatusOr<TrainingSet> PointInTimeJoin(const SpineIndex& spine,
                                      const std::vector<JoinSource>& sources,
                                      const JoinOptions& options = {});

/// Deliberately *incorrect* baseline: joins each source's globally latest
/// value per entity, ignoring the spine timestamp. This is what ad-hoc
/// training pipelines without a feature store typically do; benchmarks use
/// it to count leaked cells (feature values from the future).
StatusOr<TrainingSet> NaiveLatestJoin(const std::vector<Row>& spine,
                                      const std::string& spine_entity_column,
                                      const std::string& spine_time_column,
                                      const std::vector<JoinSource>& sources,
                                      const JoinOptions& options = {});

StatusOr<TrainingSet> NaiveLatestJoin(const SpineIndex& spine,
                                      const std::vector<JoinSource>& sources,
                                      const JoinOptions& options = {});

/// Row-at-a-time reference implementations: one locked OfflineTable::AsOf
/// per spine row per source. Retained as the correctness oracle for the
/// merge-join property suite and as the baseline in bench_pit_join; not a
/// serving path.
StatusOr<TrainingSet> PointInTimeJoinReference(
    const std::vector<Row>& spine, const std::string& spine_entity_column,
    const std::string& spine_time_column,
    const std::vector<JoinSource>& sources);

StatusOr<TrainingSet> NaiveLatestJoinReference(
    const std::vector<Row>& spine, const std::string& spine_entity_column,
    const std::string& spine_time_column,
    const std::vector<JoinSource>& sources);

/// Counts cells in `candidate` whose value differs from the leakage-free
/// reference join (same shape required): a measure of silent training bias.
StatusOr<uint64_t> CountDivergentCells(const TrainingSet& reference,
                                       const TrainingSet& candidate);

}  // namespace mlfs

#endif  // MLFS_SERVING_POINT_IN_TIME_H_
