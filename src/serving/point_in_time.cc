#include "serving/point_in_time.h"

#include <algorithm>

#include "storage/entity_key.h"

namespace mlfs {
namespace {

struct ResolvedSource {
  const OfflineTable* table;
  std::vector<int> column_indices;  // Into the source schema.
  int time_idx;
  Timestamp max_age;
};

// Validates sources and computes the output schema.
StatusOr<std::pair<SchemaPtr, std::vector<ResolvedSource>>> PrepareJoin(
    const std::vector<Row>& spine, const std::string& spine_entity_column,
    const std::string& spine_time_column,
    const std::vector<JoinSource>& sources) {
  if (spine.empty()) {
    return Status::InvalidArgument("spine is empty");
  }
  const SchemaPtr& spine_schema = spine.front().schema();
  if (spine_schema == nullptr) {
    return Status::InvalidArgument("spine rows have no schema");
  }
  int spine_entity_idx = spine_schema->FieldIndex(spine_entity_column);
  int spine_time_idx = spine_schema->FieldIndex(spine_time_column);
  if (spine_entity_idx < 0 || spine_time_idx < 0) {
    return Status::InvalidArgument("spine is missing entity/time column");
  }
  if (spine_schema->field(spine_time_idx).type != FeatureType::kTimestamp) {
    return Status::InvalidArgument("spine time column is not a TIMESTAMP");
  }

  std::vector<FieldSpec> out_fields = spine_schema->fields();
  std::vector<ResolvedSource> resolved;
  resolved.reserve(sources.size());
  for (const JoinSource& source : sources) {
    if (source.table == nullptr) {
      return Status::InvalidArgument("join source has no table");
    }
    const OfflineTableOptions& options = source.table->options();
    const SchemaPtr& schema = options.schema;
    ResolvedSource rs;
    rs.table = source.table;
    rs.time_idx = schema->FieldIndex(options.time_column);
    rs.max_age = source.max_age;
    std::vector<std::string> columns = source.columns;
    if (columns.empty()) {
      for (const FieldSpec& field : schema->fields()) {
        if (field.name != options.entity_column &&
            field.name != options.time_column) {
          columns.push_back(field.name);
        }
      }
    }
    if (!source.output_columns.empty() &&
        source.output_columns.size() != columns.size()) {
      return Status::InvalidArgument(
          "output_columns must match projected column count");
    }
    for (size_t ci = 0; ci < columns.size(); ++ci) {
      const std::string& column = columns[ci];
      int idx = schema->FieldIndex(column);
      if (idx < 0) {
        return Status::InvalidArgument("source '" + options.name +
                                       "' has no column '" + column + "'");
      }
      rs.column_indices.push_back(idx);
      std::string out_name = source.output_columns.empty()
                                 ? source.prefix + column
                                 : source.output_columns[ci];
      // Joined columns are always nullable (history may be missing).
      out_fields.push_back({std::move(out_name), schema->field(idx).type,
                            true});
    }
    resolved.push_back(std::move(rs));
  }
  MLFS_ASSIGN_OR_RETURN(SchemaPtr out_schema,
                        Schema::Create(std::move(out_fields)));
  return std::make_pair(std::move(out_schema), std::move(resolved));
}

using AsOfFn = StatusOr<Row> (*)(const ResolvedSource&, const Value&,
                                 Timestamp);

StatusOr<TrainingSet> JoinImpl(const std::vector<Row>& spine,
                               const std::string& spine_entity_column,
                               const std::string& spine_time_column,
                               const std::vector<JoinSource>& sources,
                               bool point_in_time) {
  MLFS_ASSIGN_OR_RETURN(auto prepared,
                        PrepareJoin(spine, spine_entity_column,
                                    spine_time_column, sources));
  SchemaPtr out_schema = std::move(prepared.first);
  std::vector<ResolvedSource> resolved = std::move(prepared.second);
  const SchemaPtr& spine_schema = spine.front().schema();
  int spine_entity_idx = spine_schema->FieldIndex(spine_entity_column);
  int spine_time_idx = spine_schema->FieldIndex(spine_time_column);

  TrainingSet out;
  out.schema = out_schema;
  out.rows.reserve(spine.size());
  for (const Row& spine_row : spine) {
    if (spine_row.schema() == nullptr ||
        !(*spine_row.schema() == *spine_schema)) {
      return Status::InvalidArgument("spine rows have mixed schemas");
    }
    const Value& entity = spine_row.value(spine_entity_idx);
    Timestamp t = spine_row.value(spine_time_idx).time_value();

    std::vector<Value> values = spine_row.values();
    for (const ResolvedSource& rs : resolved) {
      StatusOr<Row> source_row =
          rs.table->AsOf(entity, point_in_time ? t : kMaxTimestamp);
      bool usable = source_row.ok();
      if (usable && point_in_time && rs.max_age > 0) {
        Timestamp event_time =
            source_row->value(rs.time_idx).time_value();
        usable = event_time >= t - rs.max_age;
      }
      for (int idx : rs.column_indices) {
        if (usable) {
          values.push_back(source_row->value(idx));
        } else {
          values.push_back(Value::Null());
          ++out.missing_cells;
        }
      }
    }
    MLFS_ASSIGN_OR_RETURN(Row row,
                          Row::Create(out_schema, std::move(values)));
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace

StatusOr<TrainingSet> PointInTimeJoin(const std::vector<Row>& spine,
                                      const std::string& spine_entity_column,
                                      const std::string& spine_time_column,
                                      const std::vector<JoinSource>& sources) {
  return JoinImpl(spine, spine_entity_column, spine_time_column, sources,
                  /*point_in_time=*/true);
}

StatusOr<TrainingSet> NaiveLatestJoin(const std::vector<Row>& spine,
                                      const std::string& spine_entity_column,
                                      const std::string& spine_time_column,
                                      const std::vector<JoinSource>& sources) {
  return JoinImpl(spine, spine_entity_column, spine_time_column, sources,
                  /*point_in_time=*/false);
}

StatusOr<uint64_t> CountDivergentCells(const TrainingSet& reference,
                                       const TrainingSet& candidate) {
  if (reference.rows.size() != candidate.rows.size()) {
    return Status::InvalidArgument("training sets have different row counts");
  }
  if (reference.schema == nullptr || candidate.schema == nullptr ||
      !(*reference.schema == *candidate.schema)) {
    return Status::InvalidArgument("training sets have different schemas");
  }
  uint64_t divergent = 0;
  for (size_t r = 0; r < reference.rows.size(); ++r) {
    const Row& a = reference.rows[r];
    const Row& b = candidate.rows[r];
    for (size_t c = 0; c < a.num_values(); ++c) {
      if (!(a.value(c) == b.value(c))) ++divergent;
    }
  }
  return divergent;
}

}  // namespace mlfs
