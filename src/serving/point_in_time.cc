#include "serving/point_in_time.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>

#include "common/threadpool.h"
#include "storage/entity_key.h"

namespace mlfs {
namespace {

struct ResolvedSource {
  const OfflineTable* table;
  std::vector<int> column_indices;  // Into the source schema.
  int time_idx;                     // Into the source schema.
  Timestamp max_age;
  // Projected read plan for the merge engine: the unique source columns
  // actually gathered (output columns plus, under max_age, the event-time
  // column), the schema those projected rows conform to, and the remaps
  // from output column / time column into the projected row.
  std::vector<int> proj;
  SchemaPtr proj_schema;
  std::vector<int> out_pos;  // Parallel to column_indices.
  int time_pos = -1;
};

// Validates sources and computes the output schema. `spine_schema` must
// already be validated (SpineIndex::Build does).
StatusOr<std::pair<SchemaPtr, std::vector<ResolvedSource>>> PrepareJoin(
    const SchemaPtr& spine_schema, const std::vector<JoinSource>& sources) {
  std::vector<FieldSpec> out_fields = spine_schema->fields();
  std::vector<ResolvedSource> resolved;
  resolved.reserve(sources.size());
  for (const JoinSource& source : sources) {
    if (source.table == nullptr) {
      return Status::InvalidArgument("join source has no table");
    }
    const OfflineTableOptions& options = source.table->options();
    const SchemaPtr& schema = options.schema;
    ResolvedSource rs;
    rs.table = source.table;
    rs.time_idx = schema->FieldIndex(options.time_column);
    rs.max_age = source.max_age;
    std::vector<std::string> columns = source.columns;
    if (columns.empty()) {
      for (const FieldSpec& field : schema->fields()) {
        if (field.name != options.entity_column &&
            field.name != options.time_column) {
          columns.push_back(field.name);
        }
      }
    }
    if (!source.output_columns.empty() &&
        source.output_columns.size() != columns.size()) {
      return Status::InvalidArgument(
          "output_columns must match projected column count");
    }
    const auto proj_position = [&rs](int idx) {
      for (size_t p = 0; p < rs.proj.size(); ++p) {
        if (rs.proj[p] == idx) return static_cast<int>(p);
      }
      rs.proj.push_back(idx);
      return static_cast<int>(rs.proj.size() - 1);
    };
    for (size_t ci = 0; ci < columns.size(); ++ci) {
      const std::string& column = columns[ci];
      int idx = schema->FieldIndex(column);
      if (idx < 0) {
        return Status::InvalidArgument("source '" + options.name +
                                       "' has no column '" + column + "'");
      }
      rs.column_indices.push_back(idx);
      rs.out_pos.push_back(proj_position(idx));
      std::string out_name = source.output_columns.empty()
                                 ? source.prefix + column
                                 : source.output_columns[ci];
      // Joined columns are always nullable (history may be missing).
      out_fields.push_back({std::move(out_name), schema->field(idx).type,
                            true});
    }
    // The max_age check reads the matched row's event time, so it rides
    // along in the projection; an empty projection still gathers it so the
    // batch read has a concrete column list.
    if (rs.max_age > 0 || rs.proj.empty()) {
      rs.time_pos = proj_position(rs.time_idx);
    }
    std::vector<FieldSpec> proj_fields;
    proj_fields.reserve(rs.proj.size());
    for (int idx : rs.proj) proj_fields.push_back(schema->field(idx));
    MLFS_ASSIGN_OR_RETURN(rs.proj_schema,
                          Schema::Create(std::move(proj_fields)));
    resolved.push_back(std::move(rs));
  }
  MLFS_ASSIGN_OR_RETURN(SchemaPtr out_schema,
                        Schema::Create(std::move(out_fields)));
  return std::make_pair(std::move(out_schema), std::move(resolved));
}

// Row-at-a-time oracle: one locked AsOf per spine row per source. Kept as
// the reference the merge-join engine must reproduce byte-for-byte.
StatusOr<TrainingSet> ReferenceJoinImpl(const std::vector<Row>& spine,
                                        const std::string& spine_entity_column,
                                        const std::string& spine_time_column,
                                        const std::vector<JoinSource>& sources,
                                        bool point_in_time) {
  if (spine.empty()) {
    return Status::InvalidArgument("spine is empty");
  }
  if (spine.front().schema() == nullptr) {
    return Status::InvalidArgument("spine rows have no schema");
  }
  {
    int eidx = spine.front().schema()->FieldIndex(spine_entity_column);
    int tidx = spine.front().schema()->FieldIndex(spine_time_column);
    if (eidx < 0 || tidx < 0) {
      return Status::InvalidArgument("spine is missing entity/time column");
    }
    if (spine.front().schema()->field(tidx).type != FeatureType::kTimestamp) {
      return Status::InvalidArgument("spine time column is not a TIMESTAMP");
    }
  }
  MLFS_ASSIGN_OR_RETURN(auto prepared,
                        PrepareJoin(spine.front().schema(), sources));
  SchemaPtr out_schema = std::move(prepared.first);
  std::vector<ResolvedSource> resolved = std::move(prepared.second);
  const SchemaPtr& spine_schema = spine.front().schema();
  int spine_entity_idx = spine_schema->FieldIndex(spine_entity_column);
  int spine_time_idx = spine_schema->FieldIndex(spine_time_column);

  TrainingSet out;
  out.schema = out_schema;
  out.rows.reserve(spine.size());
  for (const Row& spine_row : spine) {
    if (spine_row.schema() == nullptr ||
        !(*spine_row.schema() == *spine_schema)) {
      return Status::InvalidArgument("spine rows have mixed schemas");
    }
    const Value& entity = spine_row.value(spine_entity_idx);
    Timestamp t = spine_row.value(spine_time_idx).time_value();

    std::vector<Value> values = spine_row.values();
    for (const ResolvedSource& rs : resolved) {
      StatusOr<Row> source_row =
          rs.table->AsOf(entity, point_in_time ? t : kMaxTimestamp);
      bool usable = source_row.ok();
      if (usable && point_in_time && rs.max_age > 0) {
        Timestamp event_time =
            source_row->value(rs.time_idx).time_value();
        usable = event_time >= t - rs.max_age;
      }
      for (int idx : rs.column_indices) {
        if (usable) {
          values.push_back(source_row->value(idx));
        } else {
          values.push_back(Value::Null());
          ++out.missing_cells;
        }
      }
    }
    MLFS_ASSIGN_OR_RETURN(Row row,
                          Row::Create(out_schema, std::move(values)));
    out.rows.push_back(std::move(row));
  }
  return out;
}

// First (up to) 8 key bytes packed big-endian, so a single integer compare
// resolves most key orderings before falling back to byte-wise compare.
// prefix(a) < prefix(b) implies a < b lexicographically; equality falls
// through to the full comparison.
uint64_t KeyPrefix(const std::string& key) {
  unsigned char buf[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::memcpy(buf, key.data(), std::min<size_t>(key.size(), 8));
  uint64_t p = 0;
  for (int i = 0; i < 8; ++i) p = (p << 8) | buf[i];
  return p;
}

// Batched sort-merge as-of join (see point_in_time.h). Produces output
// identical to ReferenceJoinImpl; the pit_merge and columnar property
// suites pin it.
StatusOr<TrainingSet> MergeJoinImpl(const SpineIndex& spine_index,
                                    const std::vector<JoinSource>& sources,
                                    bool point_in_time,
                                    const JoinOptions& options) {
  MLFS_ASSIGN_OR_RETURN(auto prepared,
                        PrepareJoin(spine_index.schema(), sources));
  SchemaPtr out_schema = std::move(prepared.first);
  std::vector<ResolvedSource> resolved = std::move(prepared.second);
  const std::vector<Row>& spine = spine_index.rows();
  const std::vector<std::string>& keys = spine_index.keys();
  const std::vector<Timestamp>& times = spine_index.times();
  const std::vector<uint32_t>& sorted = spine_index.sorted_rows();
  const std::vector<uint32_t>& pos_of_row = spine_index.pos_of_row();
  constexpr uint32_t kNoRequest = SpineIndex::kNoRequest;
  const size_t n = spine.size();
  const size_t m = sorted.size();

  // 1. Lay out the batch requests in the index's (key, ts) order. The
  //    naive join asks for each entity's globally latest row, so every
  //    request degenerates to ts = +inf (still sorted).
  std::vector<AsOfRequest> requests(m);
  for (size_t p = 0; p < m; ++p) {
    requests[p] = {keys[sorted[p]],
                   point_in_time ? times[sorted[p]] : kMaxTimestamp};
  }

  // 2. Fan out: sources × entity-range shards of the sorted request array
  //    (shards cut at key boundaries so no entity's run is split).
  std::unique_ptr<ThreadPool> local_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr && options.max_threads > 1) {
    local_pool = std::make_unique<ThreadPool>(options.max_threads);
    pool = local_pool.get();
  }
  std::vector<std::pair<size_t, size_t>> shards;
  {
    const size_t want = pool != nullptr ? pool->num_threads() * 2 : 1;
    const size_t target = m == 0 ? 0 : (m + want - 1) / want;
    size_t start = 0;
    while (start < m) {
      size_t stop = std::min(m, start + target);
      while (stop < m && requests[stop].key == requests[stop - 1].key) ++stop;
      shards.emplace_back(start, stop);
      start = stop;
    }
  }
  std::vector<std::vector<Row>> source_rows(resolved.size());
  for (auto& rows : source_rows) rows.resize(m);
  const size_t num_tasks = resolved.size() * shards.size();
  std::vector<Status> task_status(num_tasks);
  // Each task fills a private miss bitmap for its shard (bitmap words at
  // shard boundaries would be shared between tasks otherwise); the shard
  // bitmaps are stitched into one per-source bitmap after the barrier.
  std::vector<std::vector<uint64_t>> task_miss(num_tasks);
  ParallelFor(pool, 0, num_tasks, [&](size_t task) {
    const size_t s = task / shards.size();
    const auto [start, stop] = shards[task % shards.size()];
    AsOfReadOptions read_options;
    read_options.columns = resolved[s].proj;
    read_options.projected_schema = resolved[s].proj_schema;
    read_options.miss_bitmap = &task_miss[task];
    task_status[task] = resolved[s].table->AsOfBatch(
        std::span<const AsOfRequest>(requests.data() + start, stop - start),
        std::span<Row>(source_rows[s].data() + start, stop - start),
        read_options);
  });
  for (Status& s : task_status) {
    MLFS_RETURN_IF_ERROR(std::move(s));
  }
  std::vector<std::vector<uint64_t>> source_miss(
      resolved.size(), std::vector<uint64_t>((m + 63) / 64, 0));
  for (size_t task = 0; task < num_tasks; ++task) {
    const size_t s = task / shards.size();
    const auto [start, stop] = shards[task % shards.size()];
    for (size_t i = start; i < stop; ++i) {
      if (MissBitmapTest(task_miss[task], i - start)) {
        source_miss[s][i >> 6] |= uint64_t{1} << (i & 63);
      }
    }
  }

  // 3. Assemble output rows in spine order: reserve the full output width
  //    once per row instead of copy-and-growing from the spine values.
  TrainingSet out;
  out.schema = out_schema;
  out.rows.assign(n, Row());
  const size_t out_width = out_schema->num_fields();
  std::atomic<uint64_t> missing{0};
  const size_t num_sources = resolved.size();
  const auto assemble = [&](size_t r) {
    // The source rows for spine row r sit at a position that is random
    // with respect to r (the batch answered them in sorted key order), so
    // reading them chases three dependent allocations per row — the Row
    // object, its shared buffer header, and the buffer's element storage.
    // A three-stage prefetch pipeline overlaps the misses: objects three
    // stages ahead, headers two ahead, element data one ahead.
    constexpr size_t kFetch = 8;
    if (r + 3 * kFetch < n) {
      const uint32_t p3 = pos_of_row[r + 3 * kFetch];
      if (p3 != kNoRequest) {
        for (size_t s = 0; s < num_sources; ++s) {
          __builtin_prefetch(&source_rows[s][p3]);
        }
      }
    }
    if (r + 2 * kFetch < n) {
      const uint32_t p2 = pos_of_row[r + 2 * kFetch];
      if (p2 != kNoRequest) {
        for (size_t s = 0; s < num_sources; ++s) {
          __builtin_prefetch(source_rows[s][p2].payload_address());
        }
      }
    }
    if (r + kFetch < n) {
      const uint32_t p1 = pos_of_row[r + kFetch];
      if (p1 != kNoRequest) {
        for (size_t s = 0; s < num_sources; ++s) {
          const Row& ahead = source_rows[s][p1];
          if (ahead.schema() != nullptr && !resolved[s].out_pos.empty()) {
            __builtin_prefetch(ahead.values().data() +
                               resolved[s].out_pos.front());
          }
        }
      }
    }
    std::vector<Value> values;
    values.reserve(out_width);
    const std::vector<Value>& spine_values = spine[r].values();
    values.insert(values.end(), spine_values.begin(), spine_values.end());
    uint64_t row_missing = 0;
    const uint32_t pos = pos_of_row[r];
    for (size_t s = 0; s < resolved.size(); ++s) {
      const ResolvedSource& rs = resolved[s];
      // A miss never materialized a result row — the batch read reported
      // it through the bitmap instead, and the null-fill happens here.
      bool usable =
          pos != kNoRequest && !MissBitmapTest(source_miss[s], pos);
      const Row* src = usable ? &source_rows[s][pos] : nullptr;
      if (usable && point_in_time && rs.max_age > 0) {
        Timestamp event_time = src->value(rs.time_pos).time_value();
        usable = event_time >= times[r] - rs.max_age;
      }
      if (usable) {
        for (int p : rs.out_pos) values.push_back(src->value(p));
      } else {
        values.insert(values.end(), rs.out_pos.size(), Value::Null());
        row_missing += rs.out_pos.size();
      }
    }
    out.rows[r] = Row::CreateUnsafe(out_schema, std::move(values));
    if (row_missing != 0) {
      missing.fetch_add(row_missing, std::memory_order_relaxed);
    }
  };
  if (pool == nullptr) {
    // Serial fast path: calling the lambda directly (instead of through
    // ParallelFor's std::function) lets the compiler inline the row body
    // into the loop and hoist the per-source invariants.
    for (size_t r = 0; r < n; ++r) assemble(r);
  } else {
    ParallelFor(pool, 0, n, assemble);
  }
  out.missing_cells = missing.load(std::memory_order_relaxed);
  return out;
}

}  // namespace

StatusOr<SpineIndex> SpineIndex::Build(std::vector<Row> spine,
                                       const std::string& entity_column,
                                       const std::string& time_column) {
  if (spine.empty()) {
    return Status::InvalidArgument("spine is empty");
  }
  SpineIndex index;
  index.schema_ = spine.front().schema();
  if (index.schema_ == nullptr) {
    return Status::InvalidArgument("spine rows have no schema");
  }
  index.entity_idx_ = index.schema_->FieldIndex(entity_column);
  index.time_idx_ = index.schema_->FieldIndex(time_column);
  if (index.entity_idx_ < 0 || index.time_idx_ < 0) {
    return Status::InvalidArgument("spine is missing entity/time column");
  }
  if (index.schema_->field(index.time_idx_).type != FeatureType::kTimestamp) {
    return Status::InvalidArgument("spine time column is not a TIMESTAMP");
  }
  index.rows_ = std::move(spine);
  const size_t n = index.rows_.size();
  index.keys_.resize(n);
  index.times_.assign(n, 0);
  index.pos_of_row_.assign(n, kNoRequest);

  // Canonicalize every entity key exactly once. A key that is not
  // INT64/STRING is not an error (the row-at-a-time reference treats the
  // per-row AsOf failure as a miss): the row simply misses every source.
  // Value-packed sort entries: the key prefix and timestamp travel with
  // the index so most comparisons stay inside the 24-byte struct instead
  // of chasing side arrays per compare.
  struct SortEntry {
    uint64_t prefix;
    Timestamp ts;
    uint32_t row;
  };
  std::vector<SortEntry> ents;
  ents.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Row& spine_row = index.rows_[i];
    if (spine_row.schema() == nullptr ||
        !(*spine_row.schema() == *index.schema_)) {
      return Status::InvalidArgument("spine rows have mixed schemas");
    }
    index.times_[i] = spine_row.value(index.time_idx_).time_value();
    StatusOr<std::string> key =
        EntityKeyToString(spine_row.value(index.entity_idx_));
    if (!key.ok()) continue;
    index.keys_[i] = std::move(*key);
    ents.push_back({KeyPrefix(index.keys_[i]), index.times_[i],
                    static_cast<uint32_t>(i)});
  }

  // Sort by (key, ts). The key order itself is irrelevant — the batch
  // contract only needs equal keys contiguous with ascending timestamps —
  // so the integer prefix carries almost every comparison; only prefix
  // ties fall back to the full byte-wise key compare.
  std::sort(ents.begin(), ents.end(),
            [&index](const SortEntry& a, const SortEntry& b) {
              if (a.prefix != b.prefix) return a.prefix < b.prefix;
              const int c = index.keys_[a.row].compare(index.keys_[b.row]);
              if (c != 0) return c < 0;
              return a.ts < b.ts;
            });
  index.sorted_.resize(ents.size());
  for (size_t p = 0; p < ents.size(); ++p) {
    index.sorted_[p] = ents[p].row;
    index.pos_of_row_[ents[p].row] = static_cast<uint32_t>(p);
  }
  return index;
}

StatusOr<TrainingSet> PointInTimeJoin(const std::vector<Row>& spine,
                                      const std::string& spine_entity_column,
                                      const std::string& spine_time_column,
                                      const std::vector<JoinSource>& sources,
                                      const JoinOptions& options) {
  MLFS_ASSIGN_OR_RETURN(
      SpineIndex index,
      SpineIndex::Build(spine, spine_entity_column, spine_time_column));
  return MergeJoinImpl(index, sources, /*point_in_time=*/true, options);
}

StatusOr<TrainingSet> PointInTimeJoin(const SpineIndex& spine,
                                      const std::vector<JoinSource>& sources,
                                      const JoinOptions& options) {
  return MergeJoinImpl(spine, sources, /*point_in_time=*/true, options);
}

StatusOr<TrainingSet> NaiveLatestJoin(const std::vector<Row>& spine,
                                      const std::string& spine_entity_column,
                                      const std::string& spine_time_column,
                                      const std::vector<JoinSource>& sources,
                                      const JoinOptions& options) {
  MLFS_ASSIGN_OR_RETURN(
      SpineIndex index,
      SpineIndex::Build(spine, spine_entity_column, spine_time_column));
  return MergeJoinImpl(index, sources, /*point_in_time=*/false, options);
}

StatusOr<TrainingSet> NaiveLatestJoin(const SpineIndex& spine,
                                      const std::vector<JoinSource>& sources,
                                      const JoinOptions& options) {
  return MergeJoinImpl(spine, sources, /*point_in_time=*/false, options);
}

StatusOr<TrainingSet> PointInTimeJoinReference(
    const std::vector<Row>& spine, const std::string& spine_entity_column,
    const std::string& spine_time_column,
    const std::vector<JoinSource>& sources) {
  return ReferenceJoinImpl(spine, spine_entity_column, spine_time_column,
                           sources, /*point_in_time=*/true);
}

StatusOr<TrainingSet> NaiveLatestJoinReference(
    const std::vector<Row>& spine, const std::string& spine_entity_column,
    const std::string& spine_time_column,
    const std::vector<JoinSource>& sources) {
  return ReferenceJoinImpl(spine, spine_entity_column, spine_time_column,
                           sources, /*point_in_time=*/false);
}

StatusOr<uint64_t> CountDivergentCells(const TrainingSet& reference,
                                       const TrainingSet& candidate) {
  if (reference.rows.size() != candidate.rows.size()) {
    return Status::InvalidArgument("training sets have different row counts");
  }
  if (reference.schema == nullptr || candidate.schema == nullptr ||
      !(*reference.schema == *candidate.schema)) {
    return Status::InvalidArgument("training sets have different schemas");
  }
  uint64_t divergent = 0;
  for (size_t r = 0; r < reference.rows.size(); ++r) {
    const Row& a = reference.rows[r];
    const Row& b = candidate.rows[r];
    for (size_t c = 0; c < a.num_values(); ++c) {
      if (!(a.value(c) == b.value(c))) ++divergent;
    }
  }
  return divergent;
}

}  // namespace mlfs
