#include "io/readahead.h"

#include <utility>

#include "common/failpoint.h"

namespace mlfs {
namespace {

// Unconsumed results kept before the oldest ages out as wasted. Small on
// purpose: a prefetch the gather cursor is more than a few runs away
// from consuming was mispredicted.
constexpr size_t kMaxReady = 64;

}  // namespace

ReadaheadScheduler::ReadaheadScheduler(ReadaheadOptions options)
    : options_(options) {
  if (!options_.enabled) return;
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    owned_pool_ = std::make_unique<ThreadPool>(
        options_.threads == 0 ? 1 : options_.threads);
    pool_ = owned_pool_.get();
  }
}

ReadaheadScheduler::~ReadaheadScheduler() {
  Drain();
  // A borrowed pool may still run nothing of ours after Drain; an owned
  // pool joins its workers here.
  owned_pool_.reset();
}

void ReadaheadScheduler::Prefetch(uint64_t key, std::function<Payload()> fn) {
  if (pool_ == nullptr) return;
  if (FailpointRegistry::Instance().AnyArmed()) {
    Status s = FailpointRegistry::Instance().Evaluate("io.readahead");
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++faults_;
      return;  // Degrade to no readahead; the demand path is untouched.
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_flight_.count(key) != 0 || ready_.count(key) != 0) {
      ++deduped_;
      return;
    }
    if (in_flight_.size() >= options_.max_in_flight) {
      ++dropped_;
      return;
    }
    in_flight_.insert(key);
    ++issued_;
  }
  pool_->Submit([this, key, fn = std::move(fn)] {
    Complete(key, fn());
  });
}

void ReadaheadScheduler::Complete(uint64_t key, Payload payload) {
  std::lock_guard<std::mutex> lock(mu_);
  in_flight_.erase(key);
  ++completed_;
  const uint64_t gen = ++ready_gen_;
  ready_[key] = Ready{std::move(payload), gen};
  ready_order_.emplace_back(key, gen);
  while (ready_order_.size() > kMaxReady) {
    const auto [old_key, old_gen] = ready_order_.front();
    ready_order_.pop_front();
    auto it = ready_.find(old_key);
    if (it != ready_.end() && it->second.gen == old_gen) {
      ready_.erase(it);
      ++wasted_;
    }
  }
  cv_.notify_all();
}

ReadaheadScheduler::Payload ReadaheadScheduler::Consume(uint64_t key) {
  if (pool_ == nullptr) return nullptr;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return in_flight_.count(key) == 0; });
  auto it = ready_.find(key);
  if (it == ready_.end()) {
    ++misses_;
    return nullptr;
  }
  Payload payload = std::move(it->second.payload);
  ready_.erase(it);
  ++hits_;
  return payload;
}

void ReadaheadScheduler::Drain() {
  if (pool_ == nullptr) return;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return in_flight_.empty(); });
}

ReadaheadStats ReadaheadScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ReadaheadStats s;
  s.issued = issued_;
  s.completed = completed_;
  s.hits = hits_;
  s.misses = misses_;
  s.wasted = wasted_;
  s.dropped = dropped_;
  s.deduped = deduped_;
  s.faults = faults_;
  s.in_flight = in_flight_.size();
  return s;
}

}  // namespace mlfs
