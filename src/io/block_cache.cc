#include "io/block_cache.h"

#include <algorithm>
#include <limits>

namespace mlfs {

BlockCache::BlockCache(size_t num_blocks, size_t capacity) {
  slots_.resize(num_blocks);
  capacity_ = std::min(capacity, num_blocks);
}

std::vector<BlockCache::Payload>& BlockCache::ThreadPins() {
  thread_local std::vector<Payload> pins;
  return pins;
}

uint64_t BlockCache::BeginBatch() {
  std::lock_guard<std::mutex> lock(mu_);
  return ++tick_;
}

BlockCache::Payload BlockCache::Touch(size_t block, uint64_t stamp) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[block];
  slot.stamp = stamp;
  return slot.payload;
}

BlockCache::Payload BlockCache::Peek(size_t block) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_[block].payload;
}

bool BlockCache::Insert(size_t block, Payload payload, size_t bytes,
                        uint64_t stamp, bool count_promotion) {
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[block];
  slot.stamp = stamp;
  if (slot.payload != nullptr || capacity_ == 0) return false;
  slot.payload = std::move(payload);
  slot.bytes = bytes;
  ++resident_;
  resident_bytes_ += bytes;
  if (count_promotion) ++promotions_;
  EvictOverCapacityLocked();
  return true;
}

void BlockCache::CountAccess(uint64_t hits, uint64_t misses) {
  std::lock_guard<std::mutex> lock(mu_);
  hits_ += hits;
  misses_ += misses;
}

void BlockCache::EvictOverCapacityLocked() {
  // Linear min-stamp scan: the slot universe is small (rows / block_rows)
  // and eviction only runs on inserts past the budget.
  while (resident_ > capacity_) {
    size_t victim = slots_.size();
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    for (size_t b = 0; b < slots_.size(); ++b) {
      if (slots_[b].payload != nullptr && slots_[b].stamp < oldest) {
        oldest = slots_[b].stamp;
        victim = b;
      }
    }
    if (victim == slots_.size()) break;
    Slot& slot = slots_[victim];
    slot.payload.reset();
    resident_bytes_ -= slot.bytes;
    slot.bytes = 0;
    --resident_;
    ++evictions_;
  }
}

void BlockCache::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::min(capacity, slots_.size());
  EvictOverCapacityLocked();
}

size_t BlockCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

size_t BlockCache::resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_;
}

std::vector<std::pair<uint32_t, BlockCache::Payload>>
BlockCache::ResidentSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<uint32_t, Payload>> out;
  out.reserve(resident_);
  for (size_t b = 0; b < slots_.size(); ++b) {
    if (slots_[b].payload != nullptr) {
      out.emplace_back(static_cast<uint32_t>(b), slots_[b].payload);
    }
  }
  return out;
}

BlockCacheStats BlockCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BlockCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.promotions = promotions_;
  s.evictions = evictions_;
  s.resident_blocks = resident_;
  s.capacity_blocks = capacity_;
  s.num_blocks = slots_.size();
  s.resident_bytes = resident_bytes_;
  return s;
}

}  // namespace mlfs
