#include "io/block_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/failpoint.h"
#include "common/hash.h"
#include "storage/persistence.h"

namespace mlfs {
namespace {

inline uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}

inline void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}

size_t PageSize() {
  static const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

}  // namespace

std::string BlockFile::Seal(uint32_t magic, uint32_t version,
                            std::string_view body) {
  std::string blob;
  blob.reserve(kPreludeBytes + body.size() + kTrailerBytes);
  AppendU32(&blob, magic);
  AppendU32(&blob, version);
  AppendU64(&blob, body.size());
  blob.append(body);
  AppendU64(&blob, Fnv1a64(body.data(), body.size()));
  return blob;
}

Status BlockFile::Validate(uint32_t magic, uint32_t version,
                           std::string_view what) const {
  const std::string w(what);
  if (data_.size() < kPreludeBytes + kTrailerBytes) {
    return Status::Corruption(w + ": blob shorter than prelude");
  }
  if (LoadU32(data_.data()) != magic) {
    return Status::Corruption(w + ": bad magic");
  }
  const uint32_t got_version = LoadU32(data_.data() + 4);
  if (got_version != version) {
    return Status::Corruption(w + ": unsupported version " +
                              std::to_string(got_version));
  }
  const uint64_t body_len = LoadU64(data_.data() + 8);
  const uint64_t have = data_.size() - kPreludeBytes - kTrailerBytes;
  if (body_len != have) {
    return Status::Corruption(w + ": body length mismatch (header says " +
                              std::to_string(body_len) + ", blob holds " +
                              std::to_string(have) + ")");
  }
  const std::string_view body = data_.substr(kPreludeBytes, body_len);
  if (Fnv1a64(body.data(), body.size()) !=
      LoadU64(data_.data() + kPreludeBytes + body_len)) {
    return Status::Corruption(w + ": body checksum mismatch");
  }
  return Status::OK();
}

StatusOr<BlockFilePtr> BlockFile::FromBytes(uint32_t magic, uint32_t version,
                                            std::string bytes,
                                            std::string_view what) {
  std::shared_ptr<BlockFile> file(new BlockFile());
  file->bytes_ = std::move(bytes);
  file->data_ = file->bytes_;
  MLFS_RETURN_IF_ERROR(file->Validate(magic, version, what));
  return BlockFilePtr(std::move(file));
}

StatusOr<BlockFilePtr> BlockFile::Map(uint32_t magic, uint32_t version,
                                      std::string path,
                                      bool remove_file_on_destroy,
                                      std::string_view what) {
  MLFS_FAILPOINT("io.load");
  const std::string w(what);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open " + w + " '" + path + "'");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return Status::Corruption("cannot stat " + w + " '" + path + "'");
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    return Status::Internal("mmap failed for " + w + " '" + path + "'");
  }
  std::shared_ptr<BlockFile> file(new BlockFile());
  file->map_ = map;
  file->map_len_ = static_cast<size_t>(st.st_size);
  file->path_ = std::move(path);
  file->remove_file_on_destroy_ = remove_file_on_destroy;
  file->data_ =
      std::string_view(static_cast<const char*>(map), file->map_len_);
  MLFS_RETURN_IF_ERROR(file->Validate(magic, version, what));
  return BlockFilePtr(std::move(file));
}

StatusOr<BlockFilePtr> BlockFile::Spill(uint32_t magic, uint32_t version,
                                        std::string_view blob,
                                        std::string path,
                                        bool remove_file_on_destroy,
                                        std::string_view what) {
  MLFS_RETURN_IF_ERROR(WriteFileAtomic(path, blob));
  auto mapped = Map(magic, version, path, remove_file_on_destroy, what);
  if (!mapped.ok()) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
  return mapped;
}

BlockFile::~BlockFile() {
  if (map_ != nullptr) {
    ::munmap(map_, map_len_);
    if (remove_file_on_destroy_) {
      std::error_code ec;
      std::filesystem::remove(path_, ec);
    }
  }
}

void BlockFile::AdviseWillNeed(size_t offset, size_t len) const {
  if (map_ == nullptr || offset >= map_len_) return;
  len = std::min(len, map_len_ - offset);
  if (len == 0) return;
  const size_t page = PageSize();
  const size_t first = offset / page * page;
  const size_t span = offset + len - first;
  ::madvise(static_cast<char*>(map_) + first, span, MADV_WILLNEED);
}

void BlockFile::TouchPages(size_t offset, size_t len) const {
  if (map_ == nullptr || offset >= map_len_) return;
  len = std::min(len, map_len_ - offset);
  const size_t page = PageSize();
  const volatile char* base = static_cast<const volatile char*>(map_);
  char sink = 0;
  for (size_t p = offset; p < offset + len; p += page) sink ^= base[p];
  (void)sink;
}

}  // namespace mlfs
