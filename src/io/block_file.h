#ifndef MLFS_IO_BLOCK_FILE_H_
#define MLFS_IO_BLOCK_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace mlfs {

class BlockFile;
using BlockFilePtr = std::shared_ptr<const BlockFile>;

/// A checksummed immutable blob in the shared storage envelope
///
///   [u32 magic][u32 version][u64 body_len][body][u64 fnv1a64(body)]
///
/// backed either by a resident buffer (FromBytes) or a read-only private
/// file mapping (Map / Spill). This is the one place the offline columnar
/// store ("MLSG" segments) and the embedding cold tier ("MLET" files)
/// keep their envelope code: both formats carry the same prelude/trailer
/// and differ only in the body payload, which the caller parses from
/// body().
///
/// Every envelope invariant — minimum length, magic, version, body length
/// arithmetic, body checksum — is validated before a BlockFile is handed
/// out, so a truncated or bit-flipped blob surfaces as Status::Corruption
/// and never as UB in a body parser. Body-internal structure remains the
/// caller's job.
///
/// Spill discipline: Spill() writes the blob with WriteFileAtomic
/// (temp + rename) and re-opens it through Map, so a crash mid-spill
/// leaves no half-written file behind and the resident copy can be
/// dropped only once the mapping validated. Files opened with
/// `remove_file_on_destroy` are scratch: deleted when the last reference
/// drops.
///
/// Failpoint: "io.load" fires at the top of Map (and therefore inside
/// Spill's re-open) — the injected status propagates and the callers'
/// budget loops degrade to keeping data resident.
class BlockFile {
 public:
  /// magic + version + body_len.
  static constexpr size_t kPreludeBytes = 16;
  /// fnv1a64(body).
  static constexpr size_t kTrailerBytes = 8;

  /// Wraps `body` in the envelope. The result round-trips through
  /// FromBytes/Map with the same magic/version.
  static std::string Seal(uint32_t magic, uint32_t version,
                          std::string_view body);

  /// Validates a blob held in RAM (the resident tier). `what` names the
  /// format in error messages ("segment", "tier file", ...).
  static StatusOr<BlockFilePtr> FromBytes(uint32_t magic, uint32_t version,
                                          std::string bytes,
                                          std::string_view what);

  /// Memory-maps and validates a file (the spilled tier).
  static StatusOr<BlockFilePtr> Map(uint32_t magic, uint32_t version,
                                    std::string path,
                                    bool remove_file_on_destroy,
                                    std::string_view what);

  /// WriteFileAtomic(path, blob) followed by Map. On any failure after
  /// the write the file is removed, so a failed spill leaves no orphan.
  static StatusOr<BlockFilePtr> Spill(uint32_t magic, uint32_t version,
                                      std::string_view blob, std::string path,
                                      bool remove_file_on_destroy,
                                      std::string_view what);

  ~BlockFile();
  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  /// The full envelope (what a spill writes and a snapshot embeds).
  std::string_view data() const { return data_; }
  /// The payload between prelude and trailer.
  std::string_view body() const {
    return data_.substr(kPreludeBytes,
                        data_.size() - kPreludeBytes - kTrailerBytes);
  }
  bool mapped() const { return map_ != nullptr; }
  const std::string& path() const { return path_; }
  size_t size() const { return data_.size(); }

  /// Hints the kernel to start paging in [offset, offset + len) of the
  /// whole envelope (madvise WILLNEED). No-op for resident blobs.
  void AdviseWillNeed(size_t offset, size_t len) const;

  /// Faults in one byte per page of [offset, offset + len) — the
  /// background-materialization half of readahead, run off the serving
  /// thread so the gather loop takes no major faults. No-op for resident
  /// blobs.
  void TouchPages(size_t offset, size_t len) const;

 private:
  BlockFile() = default;

  /// Envelope validation over data_ (set by the factories).
  Status Validate(uint32_t magic, uint32_t version,
                  std::string_view what) const;

  // Backing storage: exactly one of bytes_ (resident) or map_ (file
  // mapping) is active; data_ views whichever it is.
  std::string bytes_;
  void* map_ = nullptr;
  size_t map_len_ = 0;
  std::string path_;
  bool remove_file_on_destroy_ = false;
  std::string_view data_;
};

}  // namespace mlfs

#endif  // MLFS_IO_BLOCK_FILE_H_
