#ifndef MLFS_IO_READAHEAD_H_
#define MLFS_IO_READAHEAD_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/threadpool.h"

namespace mlfs {

/// Readahead configuration, embedded in OfflineTableOptions and
/// EmbeddingTierOptions. Default-disabled: readahead is a pure overlap
/// optimization and every serving path must produce bit-identical
/// results with it off.
struct ReadaheadOptions {
  bool enabled = false;
  /// Prefetches beyond this many in flight are dropped (counted), never
  /// queued: a prefetch that would wait behind a full queue arrives
  /// after the demand read it was meant to hide.
  size_t max_in_flight = 8;
  /// Worker threads for the owned pool when `pool` is null.
  size_t threads = 1;
  /// Optional borrowed pool (must outlive the scheduler); when null and
  /// readahead is enabled the scheduler owns a pool of `threads`.
  ThreadPool* pool = nullptr;
};

/// Monotonic readahead counters.
struct ReadaheadStats {
  uint64_t issued = 0;     // Prefetch jobs handed to the pool.
  uint64_t completed = 0;  // Jobs that finished materializing.
  uint64_t hits = 0;       // Demand reads that consumed a prefetch.
  uint64_t misses = 0;     // Demand reads that found nothing prefetched.
  uint64_t wasted = 0;     // Prefetched blocks dropped unconsumed.
  uint64_t dropped = 0;    // Prefetches skipped: in-flight limit.
  uint64_t deduped = 0;    // Prefetches skipped: already in flight/ready.
  uint64_t faults = 0;     // Injected io.readahead failures.
  size_t in_flight = 0;    // Jobs currently running.
};

/// Asynchronous prefetch of predicted-next blocks onto a thread pool —
/// the overlap engine behind cold-tier AsOfBatch and MultiGet (MLKV-style
/// out-of-core serving: hide disk latency behind compute instead of
/// paying it on the serving thread).
///
/// A prefetch is a caller-supplied thunk (typically madvise(WILLNEED) +
/// page touches on a BlockFile, or dequantizing a cold block) keyed by a
/// caller-chosen id. The scheduler dedups keys already in flight or
/// already materialized, drops requests past max_in_flight, and parks
/// each thunk's result until the demand path Consumes it:
///
///   scheduler.Prefetch(key, [=]{ return Materialize(); });
///   ... compute on the current block ...
///   Payload p = scheduler.Consume(key);   // Hit: blocks briefly if the
///                                         // job is mid-run, else null.
///
/// Consume(key) on a never-prefetched (or dropped) key returns null
/// immediately and counts a miss — the caller falls back to the demand
/// load, so readahead can only ever add throughput, never correctness.
/// Results that are never consumed age out of a small ready-queue FIFO
/// and count as wasted prefetches.
///
/// Failpoint: "io.readahead" fires in Prefetch; an injected failure
/// skips the prefetch (counted in `faults`) and the demand path is
/// untouched — readahead degrades to off.
///
/// Thread-safe. Destruction drains in-flight jobs.
class ReadaheadScheduler {
 public:
  using Payload = std::shared_ptr<const void>;

  explicit ReadaheadScheduler(ReadaheadOptions options);
  ~ReadaheadScheduler();

  ReadaheadScheduler(const ReadaheadScheduler&) = delete;
  ReadaheadScheduler& operator=(const ReadaheadScheduler&) = delete;

  bool enabled() const { return options_.enabled; }

  /// Schedules fn on the pool unless disabled, key is already in
  /// flight/ready, or max_in_flight is reached. fn may return null (a
  /// pure page-warming prefetch); the payload, if any, is parked for
  /// Consume.
  void Prefetch(uint64_t key, std::function<Payload()> fn);

  /// Demand-side claim of a prefetch: returns the parked payload (or
  /// null for page-warming jobs), waiting briefly if the job is still
  /// running; counts a hit. Returns null and counts a miss when `key`
  /// was never prefetched, was dropped, or already aged out.
  Payload Consume(uint64_t key);

  /// Blocks until no prefetch is in flight (tests and benchmarks).
  void Drain();

  ReadaheadStats stats() const;

 private:
  void Complete(uint64_t key, Payload payload);

  ReadaheadOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;  // Null when disabled.

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_set<uint64_t> in_flight_;
  // Materialized-but-unconsumed results, aged out FIFO past kMaxReady.
  // Generations keep a stale FIFO entry (key consumed, then prefetched
  // again) from aging out the fresh result.
  struct Ready {
    Payload payload;
    uint64_t gen = 0;
  };
  std::unordered_map<uint64_t, Ready> ready_;
  std::deque<std::pair<uint64_t, uint64_t>> ready_order_;  // (key, gen)
  uint64_t ready_gen_ = 0;
  uint64_t issued_ = 0, completed_ = 0, hits_ = 0, misses_ = 0, wasted_ = 0,
           dropped_ = 0, deduped_ = 0, faults_ = 0;
};

}  // namespace mlfs

#endif  // MLFS_IO_READAHEAD_H_
