#ifndef MLFS_IO_BLOCK_CACHE_H_
#define MLFS_IO_BLOCK_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace mlfs {

/// Monotonic cache counters plus a point-in-time occupancy snapshot.
struct BlockCacheStats {
  uint64_t hits = 0;        // Accesses served from a resident block.
  uint64_t misses = 0;      // Accesses that found their block cold.
  uint64_t promotions = 0;  // Cold blocks materialized into the cache.
  uint64_t evictions = 0;   // Resident blocks dropped back to cold.
  size_t resident_blocks = 0;
  size_t capacity_blocks = 0;
  size_t num_blocks = 0;
  size_t resident_bytes = 0;
};

/// Budgeted residency over a fixed universe of `num_blocks` block slots —
/// the shared cache policy behind the embedding cold tier's hot arena
/// (and any other block-granular out-of-core structure). The cache owns
/// policy only: payloads are opaque shared_ptrs the caller materializes
/// (dequantized float rows, parsed blocks, ...).
///
/// Replacement is batch-granular LRU: the caller draws one clock stamp
/// per read batch (BeginBatch) and stamps every block that batch touches
/// with it, so a thousand-row MultiGet counts one access per block and
/// cannot monopolize the clock. Scan resistance is a calling convention
/// on the same primitive: a scan stamps resident blocks (keeping the
/// point-lookup working set warm) but never Inserts its cold blocks, so
/// a full sweep cannot flush the cache.
///
/// Eviction is a linear min-stamp scan (block universes are small —
/// rows / block_rows slots) run whenever an Insert or SetCapacity leaves
/// the cache over budget.
///
/// Pointer lifetime: payloads handed out stay valid as long as someone
/// holds the shared_ptr. Readers that hand out interior pointers park the
/// payload in ThreadPins() — a per-thread pin set shared by every cache,
/// cleared at the start of the thread's next read — so eviction by
/// another thread can never free storage a reader still dereferences.
///
/// Thread-safe; every operation takes the one internal mutex.
class BlockCache {
 public:
  using Payload = std::shared_ptr<const void>;

  /// A cache over `num_blocks` slots holding at most `capacity` of them
  /// resident (capacity is clamped to num_blocks).
  BlockCache(size_t num_blocks, size_t capacity);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// The pin set of the calling thread, shared across all caches: clear
  /// it at the start of a read, push every payload the read serves from.
  static std::vector<Payload>& ThreadPins();

  /// Advances the LRU clock one tick and returns the new stamp — call
  /// once per read batch and pass the stamp to Touch/Insert.
  uint64_t BeginBatch();

  /// Refreshes `block`'s stamp and returns its payload (null = cold).
  /// Does not count hits/misses: access accounting is per caller-defined
  /// unit (the embedding tier counts rows, not blocks) — use CountAccess.
  Payload Touch(size_t block, uint64_t stamp);

  /// Returns `block`'s payload without stamping (peek for copy paths
  /// that must not perturb the LRU order).
  Payload Peek(size_t block) const;

  /// Materializes `block` if absent (and capacity allows), charging
  /// `bytes` toward resident_bytes, and evicts over-budget blocks.
  /// Always refreshes the stamp. Returns true when this call inserted
  /// the payload (a promotion); false when the block was already
  /// resident or capacity is zero. `count_promotion` is false when
  /// seeding a freshly built cache, which is placement, not promotion.
  bool Insert(size_t block, Payload payload, size_t bytes, uint64_t stamp,
              bool count_promotion = true);

  /// Adds `hits` and `misses` to the counters (caller-defined units).
  void CountAccess(uint64_t hits, uint64_t misses);

  /// Adjusts the residency budget: shrinking evicts excess blocks
  /// immediately (min-stamp first); growing lets future Inserts fill
  /// the new room.
  void SetCapacity(size_t capacity);

  size_t capacity() const;
  size_t resident() const;
  size_t num_blocks() const { return slots_.size(); }

  /// Current resident blocks as (block id, payload) pairs in ascending
  /// block order — the mutable half of a snapshot.
  std::vector<std::pair<uint32_t, Payload>> ResidentSnapshot() const;

  BlockCacheStats stats() const;

 private:
  struct Slot {
    Payload payload;     // Null = cold.
    size_t bytes = 0;    // Resident charge (0 while cold).
    uint64_t stamp = 0;  // Batch-granular LRU clock tick of last access.
  };

  /// Caller holds mu_. Evicts lowest-stamp resident blocks until the
  /// resident count is back under capacity.
  void EvictOverCapacityLocked();

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  size_t capacity_ = 0;
  size_t resident_ = 0;
  size_t resident_bytes_ = 0;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0, misses_ = 0, promotions_ = 0, evictions_ = 0;
};

}  // namespace mlfs

#endif  // MLFS_IO_BLOCK_CACHE_H_
