#ifndef MLFS_MONITORING_ALERTING_H_
#define MLFS_MONITORING_ALERTING_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/timestamp.h"

namespace mlfs {

enum class AlertSeverity : uint8_t {
  kInfo = 0,
  kWarning = 1,
  kCritical = 2,
};

std::string_view AlertSeverityToString(AlertSeverity severity);

/// One monitoring finding — the "gremlins in the system" the feature store
/// surfaces to engineers (paper §2.2.3).
struct Alert {
  Timestamp at = 0;
  std::string monitor;   // e.g. "drift:user_trip_rate".
  AlertSeverity severity = AlertSeverity::kInfo;
  std::string message;

  std::string ToString() const;
};

/// Thread-safe in-memory alert sink shared by all monitors of a store.
class AlertBus {
 public:
  void Emit(Alert alert);

  /// All alerts, oldest first.
  std::vector<Alert> All() const;

  /// Alerts from monitors whose name starts with `prefix`.
  std::vector<Alert> WithPrefix(const std::string& prefix) const;

  size_t CountAtLeast(AlertSeverity severity) const;
  size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<Alert> alerts_;
};

}  // namespace mlfs

#endif  // MLFS_MONITORING_ALERTING_H_
