#include "monitoring/slice_finder.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "quality/drift.h"

namespace mlfs {
namespace {

// One attribute cell: column index + discrete value label + member set.
struct Cell {
  std::string label;  // "col == value" rendering.
  std::vector<size_t> members;
};

// Discretizes every column of the metadata into labeled cells.
StatusOr<std::vector<std::vector<Cell>>> BuildCells(
    const std::vector<Row>& metadata, size_t numeric_buckets) {
  const SchemaPtr& schema = metadata.front().schema();
  if (schema == nullptr) {
    return Status::InvalidArgument("metadata rows have no schema");
  }
  std::vector<std::vector<Cell>> out;
  for (size_t col = 0; col < schema->num_fields(); ++col) {
    const FieldSpec& field = schema->field(col);
    std::map<std::string, std::vector<size_t>> groups;
    if (field.type == FeatureType::kDouble ||
        field.type == FeatureType::kInt64) {
      // Quantile-bucketize numerics.
      std::vector<double> values;
      values.reserve(metadata.size());
      for (const Row& row : metadata) {
        auto d = row.value(col).AsDouble();
        if (d.ok()) values.push_back(*d);
      }
      if (values.size() < 2) continue;
      MLFS_ASSIGN_OR_RETURN(std::vector<double> edges,
                            QuantileBinEdges(values, numeric_buckets));
      for (size_t i = 0; i < metadata.size(); ++i) {
        auto d = metadata[i].value(col).AsDouble();
        if (!d.ok()) continue;
        auto it = std::upper_bound(edges.begin(), edges.end(), *d);
        size_t bucket =
            it == edges.begin()
                ? 0
                : std::min(numeric_buckets - 1,
                           static_cast<size_t>(it - edges.begin()) - 1);
        groups[field.name + " in q" + std::to_string(bucket)].push_back(i);
      }
    } else if (field.type == FeatureType::kString ||
               field.type == FeatureType::kBool) {
      for (size_t i = 0; i < metadata.size(); ++i) {
        const Value& v = metadata[i].value(col);
        if (v.is_null()) continue;
        std::string label =
            field.name + " == " +
            (field.type == FeatureType::kString ? "'" + v.string_value() + "'"
                                                : v.ToString());
        groups[label].push_back(i);
      }
    } else {
      continue;  // Timestamps/embeddings are not slicing attributes.
    }
    std::vector<Cell> cells;
    cells.reserve(groups.size());
    for (auto& [label, members] : groups) {
      cells.push_back({label, std::move(members)});
    }
    out.push_back(std::move(cells));
  }
  return out;
}

DiscoveredSlice ScoreSlice(const std::string& label,
                           std::vector<size_t> members,
                           const std::vector<int>& truth,
                           const std::vector<int>& predictions,
                           double population_accuracy) {
  DiscoveredSlice slice;
  slice.predicate = label;
  slice.size = members.size();
  size_t correct = 0;
  for (size_t i : members) correct += truth[i] == predictions[i];
  slice.accuracy = slice.size ? static_cast<double>(correct) /
                                    static_cast<double>(slice.size)
                              : 0.0;
  slice.accuracy_gap = population_accuracy - slice.accuracy;
  // Binomial stderr of the slice accuracy under the population rate.
  double p = population_accuracy;
  double se = std::sqrt(std::max(1e-12, p * (1 - p) /
                                            static_cast<double>(
                                                std::max<size_t>(1,
                                                                 slice.size))));
  slice.z_score = slice.accuracy_gap / se;
  slice.members = std::move(members);
  return slice;
}

std::vector<size_t> Intersect(const std::vector<size_t>& a,
                              const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

StatusOr<std::vector<DiscoveredSlice>> FindUnderperformingSlices(
    const std::vector<Row>& metadata, const std::vector<int>& truth,
    const std::vector<int>& predictions, SliceFinderOptions options) {
  if (metadata.size() != truth.size() ||
      truth.size() != predictions.size() || metadata.empty()) {
    return Status::InvalidArgument("metadata/truth/predictions misaligned");
  }
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    correct += truth[i] == predictions[i];
  }
  const double population_accuracy =
      static_cast<double>(correct) / static_cast<double>(truth.size());

  MLFS_ASSIGN_OR_RETURN(std::vector<std::vector<Cell>> columns,
                        BuildCells(metadata, options.numeric_buckets));

  auto qualifies = [&](const DiscoveredSlice& slice) {
    return slice.size >= options.min_support &&
           slice.accuracy_gap >= options.min_gap &&
           slice.z_score >= options.min_z;
  };

  std::vector<DiscoveredSlice> found;
  for (const auto& cells : columns) {
    for (const Cell& cell : cells) {
      DiscoveredSlice slice =
          ScoreSlice(cell.label, cell.members, truth, predictions,
                     population_accuracy);
      if (qualifies(slice)) found.push_back(std::move(slice));
    }
  }
  if (options.pairs) {
    for (size_t a = 0; a < columns.size(); ++a) {
      for (size_t b = a + 1; b < columns.size(); ++b) {
        for (const Cell& ca : columns[a]) {
          if (ca.members.size() < options.min_support) continue;
          for (const Cell& cb : columns[b]) {
            if (cb.members.size() < options.min_support) continue;
            std::vector<size_t> members = Intersect(ca.members, cb.members);
            if (members.size() < options.min_support) continue;
            DiscoveredSlice slice =
                ScoreSlice(ca.label + " and " + cb.label, std::move(members),
                           truth, predictions, population_accuracy);
            if (!qualifies(slice)) continue;
            // Dedup: a conjunction must beat any reported single-attribute
            // parent by a real margin (min_gap), else the parent explains
            // it and the pair is noise refinement.
            bool dominated = false;
            for (const DiscoveredSlice& single : found) {
              if ((single.predicate == ca.label ||
                   single.predicate == cb.label) &&
                  slice.accuracy_gap <
                      single.accuracy_gap + options.min_gap) {
                dominated = true;
                break;
              }
            }
            if (!dominated) found.push_back(std::move(slice));
          }
        }
      }
    }
  }
  std::sort(found.begin(), found.end(),
            [](const DiscoveredSlice& a, const DiscoveredSlice& b) {
              return a.accuracy_gap > b.accuracy_gap;
            });
  if (found.size() > options.max_results) {
    found.resize(options.max_results);
  }
  return found;
}

}  // namespace mlfs
