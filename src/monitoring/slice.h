#ifndef MLFS_MONITORING_SLICE_H_
#define MLFS_MONITORING_SLICE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"
#include "expr/evaluator.h"

namespace mlfs {

/// A named subpopulation defined by a boolean predicate over example
/// metadata — the user-defined sub-population functions of Robustness Gym
/// (Goel et al. [10], paper §3.1.3). Example: {"rare_entities",
/// "mention_count < 5 and lang == 'en'"}.
struct SliceSpec {
  std::string name;
  std::string predicate;
};

/// A compiled slice predicate bound to the metadata schema.
class Slice {
 public:
  static StatusOr<Slice> Create(const SliceSpec& spec, SchemaPtr schema);

  /// True when `metadata` belongs to the slice (NULL predicate = false).
  StatusOr<bool> Matches(const Row& metadata) const;

  /// Batch equivalent of Matches over each row: sets `out` to one byte per
  /// row, nonzero iff that row belongs to the slice (NULL = not in the
  /// slice). The predicate evaluates vector-at-a-time in 1024-row chunks.
  Status MatchesBatch(std::span<const Row> metadata,
                      std::vector<uint8_t>* out) const;

  const std::string& name() const { return spec_.name; }
  const SliceSpec& spec() const { return spec_; }

 private:
  Slice(SliceSpec spec, CompiledExpr predicate)
      : spec_(std::move(spec)), predicate_(std::move(predicate)) {}

  SliceSpec spec_;
  CompiledExpr predicate_;
};

/// Per-slice evaluation of a model: size, accuracy, and the gap to the
/// population accuracy.
struct SliceMetrics {
  std::string slice;
  size_t size = 0;
  double accuracy = 0.0;
  double population_accuracy = 0.0;
  double accuracy_gap = 0.0;  // population - slice (positive = worse).
  std::string ToString() const;
};

/// Evaluates `slices` over aligned (metadata row, truth, prediction)
/// triples. Slices with no matching examples report size 0 / accuracy 0.
StatusOr<std::vector<SliceMetrics>> EvaluateSlices(
    const std::vector<Slice>& slices, const std::vector<Row>& metadata,
    const std::vector<int>& truth, const std::vector<int>& predictions);

}  // namespace mlfs

#endif  // MLFS_MONITORING_SLICE_H_
