#include "monitoring/alerting.h"

#include "common/string_util.h"

namespace mlfs {

std::string_view AlertSeverityToString(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kInfo:
      return "INFO";
    case AlertSeverity::kWarning:
      return "WARNING";
    case AlertSeverity::kCritical:
      return "CRITICAL";
  }
  return "?";
}

std::string Alert::ToString() const {
  return "[" + std::string(AlertSeverityToString(severity)) + " @ " +
         FormatTimestamp(at) + "] " + monitor + ": " + message;
}

void AlertBus::Emit(Alert alert) {
  std::lock_guard lock(mu_);
  alerts_.push_back(std::move(alert));
}

std::vector<Alert> AlertBus::All() const {
  std::lock_guard lock(mu_);
  return alerts_;
}

std::vector<Alert> AlertBus::WithPrefix(const std::string& prefix) const {
  std::lock_guard lock(mu_);
  std::vector<Alert> out;
  for (const Alert& alert : alerts_) {
    if (StartsWith(alert.monitor, prefix)) out.push_back(alert);
  }
  return out;
}

size_t AlertBus::CountAtLeast(AlertSeverity severity) const {
  std::lock_guard lock(mu_);
  size_t n = 0;
  for (const Alert& alert : alerts_) {
    n += alert.severity >= severity;
  }
  return n;
}

size_t AlertBus::size() const {
  std::lock_guard lock(mu_);
  return alerts_.size();
}

void AlertBus::Clear() {
  std::lock_guard lock(mu_);
  alerts_.clear();
}

}  // namespace mlfs
