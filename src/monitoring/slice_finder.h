#ifndef MLFS_MONITORING_SLICE_FINDER_H_
#define MLFS_MONITORING_SLICE_FINDER_H_

#include <string>
#include <vector>

#include "common/row.h"
#include "common/status.h"

namespace mlfs {

/// A discovered underperforming subpopulation.
struct DiscoveredSlice {
  /// Human-readable predicate, e.g. "country == 'de' and bucket == 3".
  std::string predicate;
  size_t size = 0;
  double accuracy = 0.0;
  double accuracy_gap = 0.0;  // Population accuracy minus slice accuracy.
  double z_score = 0.0;       // Significance of the gap (binomial approx).
  /// Indices of the member examples.
  std::vector<size_t> members;
};

struct SliceFinderOptions {
  /// Slices smaller than this are noise, not subpopulations.
  size_t min_support = 30;
  /// Minimum accuracy gap worth reporting.
  double min_gap = 0.05;
  /// Minimum z-score (gap / stderr) for statistical plausibility.
  double min_z = 2.0;
  /// Also search conjunctions of two attributes.
  bool pairs = true;
  /// Cap on returned slices (best gap first).
  size_t max_results = 10;
  /// Numeric columns are discretized into this many quantile buckets.
  size_t numeric_buckets = 4;
};

/// Automatic lattice search for underperforming slices over categorical
/// (and bucketized numeric) metadata attributes: the "find meaningful
/// subpopulations of errors" step of the paper's monitoring story
/// (§3.1.3). Examines every attribute=value cell (and optionally pairs),
/// scores the accuracy gap, filters by support and significance, and
/// returns the worst offenders with overlapping slices deduplicated
/// (a pair is dropped when a reported single attribute already covers it
/// with a gap at least as large).
StatusOr<std::vector<DiscoveredSlice>> FindUnderperformingSlices(
    const std::vector<Row>& metadata, const std::vector<int>& truth,
    const std::vector<int>& predictions, SliceFinderOptions options = {});

}  // namespace mlfs

#endif  // MLFS_MONITORING_SLICE_FINDER_H_
