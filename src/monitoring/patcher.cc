#include "monitoring/patcher.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "embedding/distance.h"
#include "ml/metrics.h"

namespace mlfs {

StatusOr<std::vector<double>> OversampleWeights(
    const DownstreamTask& task,
    const std::unordered_set<std::string>& slice_keys, double factor) {
  if (factor < 1.0) {
    return Status::InvalidArgument("oversample factor must be >= 1");
  }
  if (task.keys.size() != task.labels.size()) {
    return Status::InvalidArgument("task keys/labels misaligned");
  }
  std::vector<double> weights(task.keys.size(), 1.0);
  for (size_t i = 0; i < task.keys.size(); ++i) {
    if (slice_keys.count(task.keys[i])) weights[i] = factor;
  }
  return weights;
}

StatusOr<EmbeddingTablePtr> PatchEmbedding(
    const EmbeddingTable& table, const DownstreamTask& task,
    const std::unordered_set<std::string>& slice_keys,
    EmbeddingPatchOptions options) {
  if (options.alpha < 0 || options.alpha > 1 || options.repel < 0) {
    return Status::InvalidArgument("bad patch options");
  }
  if (task.keys.size() != task.labels.size()) {
    return Status::InvalidArgument("task keys/labels misaligned");
  }
  // Patching rewrites the whole matrix; tiered tables are patched at their
  // served values (metadata, and thus the patched_into parent, carry over).
  if (table.tiered()) {
    MLFS_ASSIGN_OR_RETURN(EmbeddingTablePtr resident, table.Materialize());
    return PatchEmbedding(*resident, task, slice_keys, options);
  }
  const size_t d = table.dim();

  // Class centroids from *non-slice* examples: the healthy region of the
  // space each class already occupies.
  std::map<int, std::vector<double>> sums;
  std::map<int, size_t> counts;
  // Label of each slice key (a key may appear multiple times; labels must
  // agree — entity-level tasks satisfy this).
  std::map<std::string, int> slice_label;
  for (size_t i = 0; i < task.keys.size(); ++i) {
    const std::string& key = task.keys[i];
    int row = table.IndexOf(key);
    if (row < 0) continue;
    if (slice_keys.count(key)) {
      slice_label[key] = task.labels[i];
      continue;
    }
    auto& sum = sums[task.labels[i]];
    sum.resize(d, 0.0);
    const float* v = table.row(static_cast<size_t>(row));
    for (size_t j = 0; j < d; ++j) sum[j] += v[j];
    ++counts[task.labels[i]];
  }
  if (sums.empty()) {
    return Status::InvalidArgument(
        "no non-slice examples to anchor class centroids");
  }
  std::map<int, std::vector<float>> centroids;
  for (auto& [label, sum] : sums) {
    std::vector<float> centroid(d);
    for (size_t j = 0; j < d; ++j) {
      centroid[j] =
          static_cast<float>(sum[j] / static_cast<double>(counts[label]));
    }
    centroids[label] = std::move(centroid);
  }

  std::vector<float> patched = table.raw();
  size_t patched_count = 0;
  for (const auto& [key, label] : slice_label) {
    auto cit = centroids.find(label);
    if (cit == centroids.end()) continue;  // No healthy anchor for class.
    int row = table.IndexOf(key);
    float* v = patched.data() + static_cast<size_t>(row) * d;
    const std::vector<float>& target = cit->second;
    // Nearest wrong-class centroid (for the repel term).
    const std::vector<float>* wrong = nullptr;
    float wrong_dist = 0;
    for (const auto& [other_label, centroid] : centroids) {
      if (other_label == label) continue;
      float dist = L2Squared(v, centroid.data(), d);
      if (wrong == nullptr || dist < wrong_dist) {
        wrong = &centroid;
        wrong_dist = dist;
      }
    }
    for (size_t j = 0; j < d; ++j) {
      float step = static_cast<float>(options.alpha) * (target[j] - v[j]);
      float repel = 0.0f;
      if (wrong != nullptr) {
        repel = static_cast<float>(options.repel) * (v[j] - (*wrong)[j]);
      }
      v[j] += step + repel;
    }
    ++patched_count;
  }
  if (patched_count == 0) {
    return Status::InvalidArgument("no slice key found in the table");
  }

  EmbeddingTableMetadata metadata = table.metadata();
  metadata.parent = table.metadata().VersionedName();
  metadata.version = 0;
  metadata.patched = true;  // Registering records a patched_into edge.
  metadata.notes = "patched " + std::to_string(patched_count) +
                   " slice keys (alpha=" + std::to_string(options.alpha) +
                   ", repel=" + std::to_string(options.repel) + ")";
  return table.WithVectors(std::move(metadata), std::move(patched), d);
}

StatusOr<PatchEvaluation> EvaluatePatch(
    const EmbeddingTable& before, const EmbeddingTable& after,
    const DownstreamTask& task,
    const std::unordered_set<std::string>& slice_keys,
    const TrainConfig& config) {
  MLFS_ASSIGN_OR_RETURN(Dataset data_before, MaterializeTask(task, before));
  MLFS_ASSIGN_OR_RETURN(Dataset data_after, MaterializeTask(task, after));
  if (data_before.size() != data_after.size()) {
    return Status::InvalidArgument(
        "before/after tables cover different task keys");
  }
  SoftmaxClassifier model_before, model_after;
  MLFS_RETURN_IF_ERROR(model_before.Fit(data_before, config).status());
  MLFS_RETURN_IF_ERROR(model_after.Fit(data_after, config).status());
  MLFS_ASSIGN_OR_RETURN(std::vector<int> pred_before,
                        model_before.PredictBatch(data_before));
  MLFS_ASSIGN_OR_RETURN(std::vector<int> pred_after,
                        model_after.PredictBatch(data_after));

  // MaterializeTask preserves task order for keys present in the table;
  // recover slice membership per materialized example.
  std::vector<bool> in_slice;
  in_slice.reserve(data_before.size());
  for (size_t i = 0; i < task.keys.size(); ++i) {
    if (before.IndexOf(task.keys[i]) < 0) continue;
    in_slice.push_back(slice_keys.count(task.keys[i]) > 0);
  }
  if (in_slice.size() != data_before.size()) {
    return Status::Internal("slice alignment failed");
  }

  auto accuracy_of = [&](const std::vector<int>& preds, bool slice_part,
                         const Dataset& data) {
    size_t n = 0, correct = 0;
    for (size_t i = 0; i < preds.size(); ++i) {
      if (in_slice[i] != slice_part) continue;
      ++n;
      correct += preds[i] == data.labels[i];
    }
    return n ? static_cast<double>(correct) / static_cast<double>(n) : 0.0;
  };

  PatchEvaluation eval;
  eval.slice_accuracy_before = accuracy_of(pred_before, true, data_before);
  eval.slice_accuracy_after = accuracy_of(pred_after, true, data_after);
  eval.rest_accuracy_before = accuracy_of(pred_before, false, data_before);
  eval.rest_accuracy_after = accuracy_of(pred_after, false, data_after);
  return eval;
}

}  // namespace mlfs
