#include "monitoring/slice.h"

#include <cstdio>

namespace mlfs {

StatusOr<Slice> Slice::Create(const SliceSpec& spec, SchemaPtr schema) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("slice needs a name");
  }
  MLFS_ASSIGN_OR_RETURN(CompiledExpr predicate,
                        CompiledExpr::Compile(spec.predicate, schema));
  if (predicate.output_type() != FeatureType::kBool &&
      predicate.output_type() != FeatureType::kNull) {
    return Status::InvalidArgument("slice '" + spec.name +
                                   "' predicate is not boolean");
  }
  return Slice(spec, std::move(predicate));
}

StatusOr<bool> Slice::Matches(const Row& metadata) const {
  MLFS_ASSIGN_OR_RETURN(Value v, predicate_.Eval(metadata));
  if (v.is_null()) return false;
  return v.bool_value();
}

Status Slice::MatchesBatch(std::span<const Row> metadata,
                           std::vector<uint8_t>* out) const {
  constexpr size_t kChunkRows = 1024;
  out->assign(metadata.size(), 0);
  ExprScratch scratch;
  const ColumnVector* res = nullptr;
  for (size_t off = 0; off < metadata.size(); off += kChunkRows) {
    const size_t len = std::min(kChunkRows, metadata.size() - off);
    RowBatchSource src(predicate_.schema(), metadata.subspan(off, len));
    MLFS_RETURN_IF_ERROR(predicate_.EvalBatch(src, &scratch, &res));
    for (size_t i = 0; i < len; ++i) {
      (*out)[off + i] = res->TriBool(i) == 1 ? 1 : 0;
    }
  }
  return Status::OK();
}

std::string SliceMetrics::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%s: n=%zu acc=%.4f (population %.4f, gap %+.4f)",
                slice.c_str(), size, accuracy, population_accuracy,
                accuracy_gap);
  return buf;
}

StatusOr<std::vector<SliceMetrics>> EvaluateSlices(
    const std::vector<Slice>& slices, const std::vector<Row>& metadata,
    const std::vector<int>& truth, const std::vector<int>& predictions) {
  if (metadata.size() != truth.size() ||
      truth.size() != predictions.size()) {
    return Status::InvalidArgument("metadata/truth/predictions misaligned");
  }
  if (metadata.empty()) {
    return Status::InvalidArgument("no examples to slice");
  }
  size_t population_correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    population_correct += truth[i] == predictions[i];
  }
  const double population_accuracy =
      static_cast<double>(population_correct) /
      static_cast<double>(truth.size());

  std::vector<SliceMetrics> out;
  out.reserve(slices.size());
  std::vector<uint8_t> in_slice;
  for (const Slice& slice : slices) {
    SliceMetrics metrics;
    metrics.slice = slice.name();
    metrics.population_accuracy = population_accuracy;
    size_t correct = 0;
    MLFS_RETURN_IF_ERROR(slice.MatchesBatch(metadata, &in_slice));
    for (size_t i = 0; i < metadata.size(); ++i) {
      if (!in_slice[i]) continue;
      ++metrics.size;
      correct += truth[i] == predictions[i];
    }
    metrics.accuracy =
        metrics.size ? static_cast<double>(correct) /
                           static_cast<double>(metrics.size)
                     : 0.0;
    metrics.accuracy_gap =
        metrics.size ? population_accuracy - metrics.accuracy : 0.0;
    out.push_back(std::move(metrics));
  }
  return out;
}

}  // namespace mlfs
