#ifndef MLFS_MONITORING_PATCHER_H_
#define MLFS_MONITORING_PATCHER_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "embedding/embedding_table.h"
#include "embedding/quality.h"
#include "ml/linear_model.h"

namespace mlfs {

/// Model patching through the data/embedding layer (paper §3.1.3 and [22]):
/// once an underperforming slice is found, the error is corrected in the
/// *embedding*, so every downstream consumer is patched consistently —
/// versus per-model fixes (oversampling), which repair one model at a time.

/// Strategy A — data augmentation at the model level: per-example weights
/// that oversample the slice by `factor` (>= 1). Fixes only the model
/// retrained with these weights.
StatusOr<std::vector<double>> OversampleWeights(
    const DownstreamTask& task,
    const std::unordered_set<std::string>& slice_keys, double factor);

struct EmbeddingPatchOptions {
  /// Step size toward the class centroid, in [0, 1]. 0 = no-op, 1 = snap
  /// to the centroid.
  double alpha = 0.5;
  /// Also nudge slightly away from the nearest *wrong*-class centroid.
  double repel = 0.1;
};

/// Strategy B — patch the embedding itself: move each slice key's vector
/// toward the centroid of its task class (computed from non-slice
/// examples, i.e. the part of the space the consumers already handle
/// well), optionally repelling from the nearest other-class centroid.
/// Returns a new (unregistered) table with parent lineage set; keys outside
/// the slice are untouched, so unaffected consumers see minimal churn.
StatusOr<EmbeddingTablePtr> PatchEmbedding(
    const EmbeddingTable& table, const DownstreamTask& task,
    const std::unordered_set<std::string>& slice_keys,
    EmbeddingPatchOptions options = {});

/// Effect of a patch on one downstream consumer: accuracy on the slice and
/// off the slice, before vs after.
struct PatchEvaluation {
  double slice_accuracy_before = 0.0;
  double slice_accuracy_after = 0.0;
  double rest_accuracy_before = 0.0;
  double rest_accuracy_after = 0.0;
};

/// Trains one downstream model per table (same config/seed) and evaluates
/// on the full task, split into slice vs rest.
StatusOr<PatchEvaluation> EvaluatePatch(
    const EmbeddingTable& before, const EmbeddingTable& after,
    const DownstreamTask& task,
    const std::unordered_set<std::string>& slice_keys,
    const TrainConfig& config = {});

}  // namespace mlfs

#endif  // MLFS_MONITORING_PATCHER_H_
