#include "lineage/lineage_graph.h"

#include <algorithm>
#include <deque>

#include "common/serde.h"

namespace mlfs {

std::string_view ArtifactKindToString(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kSourceTable:
      return "table";
    case ArtifactKind::kSourceColumn:
      return "column";
    case ArtifactKind::kFeature:
      return "feature";
    case ArtifactKind::kEmbedding:
      return "embedding";
    case ArtifactKind::kModel:
      return "model";
    case ArtifactKind::kView:
      return "view";
  }
  return "unknown";
}

std::string_view EdgeKindToString(EdgeKind kind) {
  switch (kind) {
    case EdgeKind::kDerivedFrom:
      return "derived_from";
    case EdgeKind::kTrainedOn:
      return "trained_on";
    case EdgeKind::kPins:
      return "pins";
    case EdgeKind::kPatchedInto:
      return "patched_into";
    case EdgeKind::kMaterializes:
      return "materializes";
  }
  return "unknown";
}

std::string_view StalenessReasonToString(StalenessReason reason) {
  switch (reason) {
    case StalenessReason::kSuperseded:
      return "superseded";
    case StalenessReason::kDeprecated:
      return "deprecated";
    case StalenessReason::kDrift:
      return "drift";
  }
  return "unknown";
}

std::string ArtifactId::ToString() const {
  std::string out(ArtifactKindToString(kind));
  out += ':';
  out += FormatVersionedRef(name, version);
  return out;
}

std::string StalenessInfo::ToString() const {
  std::string out = source.ToString();
  out += ' ';
  out += StalenessReasonToString(reason);
  if (!detail.empty()) {
    out += " (";
    out += detail;
    out += ')';
  }
  return out;
}

size_t LineageGraph::InternLocked(const ArtifactId& id) {
  auto it = index_.find(id);
  if (it != index_.end()) return it->second;
  uint32_t node = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{id, {}, {}});
  index_.emplace(id, node);
  return node;
}

Status LineageGraph::AddArtifact(const ArtifactId& id) {
  if (id.name.empty()) {
    return Status::InvalidArgument("artifact needs a name");
  }
  std::unique_lock lock(mu_);
  InternLocked(id);
  return Status::OK();
}

bool LineageGraph::ReachesLocked(uint32_t start, uint32_t goal) const {
  if (start == goal) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<uint32_t> frontier{start};
  seen[start] = true;
  while (!frontier.empty()) {
    uint32_t node = frontier.front();
    frontier.pop_front();
    for (const auto& [next, kind] : nodes_[node].out) {
      if (next == goal) return true;
      if (!seen[next]) {
        seen[next] = true;
        frontier.push_back(next);
      }
    }
  }
  return false;
}

Status LineageGraph::AddEdge(const ArtifactId& from, EdgeKind kind,
                             const ArtifactId& to) {
  if (from.name.empty() || to.name.empty()) {
    return Status::InvalidArgument("edge endpoints need names");
  }
  if (from == to) {
    return Status::FailedPrecondition("self-edge on " + from.ToString());
  }
  std::unique_lock lock(mu_);
  uint32_t f = static_cast<uint32_t>(InternLocked(from));
  uint32_t t = static_cast<uint32_t>(InternLocked(to));
  for (const auto& [next, existing_kind] : nodes_[f].out) {
    if (next == t && existing_kind == kind) return Status::OK();  // Dup.
  }
  // `from` depends on `to`; if `from` were reachable *from* `to` along
  // dependency edges, `to` would (transitively) depend on `from` and this
  // edge would close a cycle.
  if (ReachesLocked(t, f)) {
    return Status::FailedPrecondition(
        "edge " + from.ToString() + " -" + std::string(EdgeKindToString(kind)) +
        "-> " + to.ToString() + " would create a cycle");
  }
  nodes_[f].out.emplace_back(t, kind);
  nodes_[t].in.emplace_back(f, kind);
  ++num_edges_;
  return Status::OK();
}

bool LineageGraph::HasArtifact(const ArtifactId& id) const {
  std::shared_lock lock(mu_);
  return index_.count(id) > 0;
}

size_t LineageGraph::num_artifacts() const {
  std::shared_lock lock(mu_);
  return nodes_.size();
}

size_t LineageGraph::num_edges() const {
  std::shared_lock lock(mu_);
  return num_edges_;
}

std::vector<LineageEdge> LineageGraph::OutEdges(const ArtifactId& id) const {
  std::shared_lock lock(mu_);
  std::vector<LineageEdge> out;
  auto it = index_.find(id);
  if (it == index_.end()) return out;
  const Node& node = nodes_[it->second];
  out.reserve(node.out.size());
  for (const auto& [next, kind] : node.out) {
    out.push_back(LineageEdge{node.id, kind, nodes_[next].id});
  }
  return out;
}

std::vector<LineageEdge> LineageGraph::InEdges(const ArtifactId& id) const {
  std::shared_lock lock(mu_);
  std::vector<LineageEdge> out;
  auto it = index_.find(id);
  if (it == index_.end()) return out;
  const Node& node = nodes_[it->second];
  out.reserve(node.in.size());
  for (const auto& [prev, kind] : node.in) {
    out.push_back(LineageEdge{nodes_[prev].id, kind, node.id});
  }
  return out;
}

std::vector<ArtifactId> LineageGraph::VersionsOf(
    ArtifactKind kind, const std::string& name) const {
  std::shared_lock lock(mu_);
  std::vector<ArtifactId> out;
  // ArtifactId ordering is (kind, name, version): all versions are a
  // contiguous map range.
  for (auto it = index_.lower_bound({kind, name, 0});
       it != index_.end() && it->first.kind == kind && it->first.name == name;
       ++it) {
    out.push_back(it->first);
  }
  return out;
}

std::vector<uint32_t> LineageGraph::ClosureLocked(uint32_t start,
                                                  bool downstream,
                                                  bool skip_same_name) const {
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<uint32_t> frontier{start};
  seen[start] = true;
  std::vector<uint32_t> out;
  const ArtifactId& origin = nodes_[start].id;
  while (!frontier.empty()) {
    uint32_t node = frontier.front();
    frontier.pop_front();
    const auto& edges = downstream ? nodes_[node].in : nodes_[node].out;
    for (const auto& [next, kind] : edges) {
      if (seen[next]) continue;
      seen[next] = true;
      const ArtifactId& next_id = nodes_[next].id;
      if (skip_same_name && next_id.kind == origin.kind &&
          next_id.name == origin.name) {
        continue;  // Another version of the origin: not a consumer.
      }
      out.push_back(next);
      frontier.push_back(next);
    }
  }
  return out;
}

std::vector<ArtifactId> LineageGraph::IdsOfLocked(
    const std::vector<uint32_t>& nodes) const {
  std::vector<ArtifactId> out;
  out.reserve(nodes.size());
  for (uint32_t node : nodes) out.push_back(nodes_[node].id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ArtifactId> LineageGraph::UpstreamClosure(
    const ArtifactId& id) const {
  std::shared_lock lock(mu_);
  auto it = index_.find(id);
  if (it == index_.end()) return {};
  return IdsOfLocked(ClosureLocked(it->second, /*downstream=*/false,
                                   /*skip_same_name=*/false));
}

std::vector<ArtifactId> LineageGraph::DownstreamClosure(
    const ArtifactId& id) const {
  std::shared_lock lock(mu_);
  auto it = index_.find(id);
  if (it == index_.end()) return {};
  return IdsOfLocked(ClosureLocked(it->second, /*downstream=*/true,
                                   /*skip_same_name=*/false));
}

std::vector<ArtifactId> LineageGraph::ImpactSet(const ArtifactId& id) const {
  std::shared_lock lock(mu_);
  auto it = index_.find(id);
  if (it == index_.end()) return {};
  return IdsOfLocked(ClosureLocked(it->second, /*downstream=*/true,
                                   /*skip_same_name=*/true));
}

StatusOr<StalenessEvent> LineageGraph::MarkStale(const ArtifactId& source,
                                                 StalenessReason reason,
                                                 Timestamp at,
                                                 std::string detail) {
  StalenessEvent event;
  {
    std::unique_lock lock(mu_);
    auto it = index_.find(source);
    if (it == index_.end()) {
      return Status::NotFound("artifact " + source.ToString() +
                              " is not in the lineage graph");
    }
    event.source = source;
    event.reason = reason;
    event.at = at;
    event.detail = std::move(detail);
    std::vector<uint32_t> impacted = ClosureLocked(
        it->second, /*downstream=*/true, /*skip_same_name=*/true);
    event.impacted = IdsOfLocked(impacted);
    StalenessInfo info{reason, at, source, event.detail};
    stale_[it->second] = info;
    for (uint32_t node : impacted) stale_[node] = info;
    events_.push_back(event);
  }
  NotifyListeners(event);
  return event;
}

void LineageGraph::ClearStale(const ArtifactId& id) {
  std::unique_lock lock(mu_);
  auto it = index_.find(id);
  if (it != index_.end()) stale_.erase(it->second);
}

std::optional<StalenessInfo> LineageGraph::StalenessOf(
    const ArtifactId& id) const {
  std::shared_lock lock(mu_);
  auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  auto stale_it = stale_.find(it->second);
  if (stale_it == stale_.end()) return std::nullopt;
  return stale_it->second;
}

std::vector<StalenessEvent> LineageGraph::Events() const {
  std::shared_lock lock(mu_);
  return events_;
}

size_t LineageGraph::num_events() const {
  std::shared_lock lock(mu_);
  return events_.size();
}

void LineageGraph::Subscribe(StalenessListener listener) {
  std::lock_guard lock(listeners_mu_);
  listeners_.push_back(std::move(listener));
}

void LineageGraph::NotifyListeners(const StalenessEvent& event) const {
  // Copy under the listener lock, invoke outside every lock so a listener
  // may query the graph (or emit alerts) without deadlocking.
  std::vector<StalenessListener> listeners;
  {
    std::lock_guard lock(listeners_mu_);
    listeners = listeners_;
  }
  for (const StalenessListener& listener : listeners) listener(event);
}

Status LineageGraph::RecordMaterialization(const ArtifactId& view,
                                           const ArtifactId& target) {
  MLFS_RETURN_IF_ERROR(AddEdge(view, EdgeKind::kMaterializes, target));
  std::unique_lock lock(mu_);
  uint32_t v = index_.at(view);
  uint32_t t = index_.at(target);
  // A materialization run refreshes the view: it now reflects `target`, so
  // it is exactly as stale as `target` is.
  auto target_stale = stale_.find(t);
  if (target_stale == stale_.end()) {
    stale_.erase(v);
  } else {
    stale_[v] = target_stale->second;
  }
  return Status::OK();
}

namespace {

constexpr uint32_t kLineageSnapshotMagic = 0x4d4c4c47;  // "MLLG"

void PutArtifact(Encoder* enc, const ArtifactId& id) {
  enc->PutU8(static_cast<uint8_t>(id.kind));
  enc->PutString(id.name);
  enc->PutVarint64(static_cast<uint64_t>(id.version));
}

StatusOr<ArtifactId> GetArtifact(Decoder* dec) {
  ArtifactId id;
  MLFS_ASSIGN_OR_RETURN(uint8_t kind, dec->GetU8());
  if (kind > static_cast<uint8_t>(ArtifactKind::kView)) {
    return Status::Corruption("bad artifact kind tag");
  }
  id.kind = static_cast<ArtifactKind>(kind);
  MLFS_ASSIGN_OR_RETURN(id.name, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(uint64_t version, dec->GetVarint64());
  id.version = static_cast<int>(version);
  return id;
}

void PutStalenessInfo(Encoder* enc, const StalenessInfo& info) {
  enc->PutU8(static_cast<uint8_t>(info.reason));
  enc->PutFixed64(static_cast<uint64_t>(info.at));
  PutArtifact(enc, info.source);
  enc->PutString(info.detail);
}

StatusOr<StalenessInfo> GetStalenessInfo(Decoder* dec) {
  StalenessInfo info;
  MLFS_ASSIGN_OR_RETURN(uint8_t reason, dec->GetU8());
  if (reason > static_cast<uint8_t>(StalenessReason::kDrift)) {
    return Status::Corruption("bad staleness reason tag");
  }
  info.reason = static_cast<StalenessReason>(reason);
  MLFS_ASSIGN_OR_RETURN(uint64_t at, dec->GetFixed64());
  info.at = static_cast<Timestamp>(at);
  MLFS_ASSIGN_OR_RETURN(info.source, GetArtifact(dec));
  MLFS_ASSIGN_OR_RETURN(info.detail, dec->GetString());
  return info;
}

}  // namespace

std::string LineageGraph::Snapshot() const {
  std::shared_lock lock(mu_);
  Encoder enc;
  enc.PutFixed32(kLineageSnapshotMagic);
  enc.PutVarint64(nodes_.size());
  for (const Node& node : nodes_) PutArtifact(&enc, node.id);
  enc.PutVarint64(num_edges_);
  for (uint32_t from = 0; from < nodes_.size(); ++from) {
    for (const auto& [to, kind] : nodes_[from].out) {
      enc.PutVarint64(from);
      enc.PutU8(static_cast<uint8_t>(kind));
      enc.PutVarint64(to);
    }
  }
  enc.PutVarint64(stale_.size());
  for (const auto& [node, info] : stale_) {
    enc.PutVarint64(node);
    PutStalenessInfo(&enc, info);
  }
  enc.PutVarint64(events_.size());
  for (const StalenessEvent& event : events_) {
    PutArtifact(&enc, event.source);
    enc.PutU8(static_cast<uint8_t>(event.reason));
    enc.PutFixed64(static_cast<uint64_t>(event.at));
    enc.PutString(event.detail);
    enc.PutVarint64(event.impacted.size());
    for (const ArtifactId& id : event.impacted) PutArtifact(&enc, id);
  }
  return enc.Release();
}

Status LineageGraph::Restore(std::string_view snapshot) {
  std::unique_lock lock(mu_);
  if (!nodes_.empty() || !events_.empty()) {
    return Status::FailedPrecondition("Restore requires an empty graph");
  }
  Decoder dec(snapshot);
  MLFS_ASSIGN_OR_RETURN(uint32_t magic, dec.GetFixed32());
  if (magic != kLineageSnapshotMagic) {
    return Status::Corruption("bad lineage snapshot magic");
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t num_nodes, dec.GetVarint64());
  for (uint64_t i = 0; i < num_nodes; ++i) {
    MLFS_ASSIGN_OR_RETURN(ArtifactId id, GetArtifact(&dec));
    if (index_.count(id)) return Status::Corruption("duplicate artifact");
    InternLocked(id);
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t num_edges, dec.GetVarint64());
  for (uint64_t i = 0; i < num_edges; ++i) {
    MLFS_ASSIGN_OR_RETURN(uint64_t from, dec.GetVarint64());
    MLFS_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
    MLFS_ASSIGN_OR_RETURN(uint64_t to, dec.GetVarint64());
    if (from >= nodes_.size() || to >= nodes_.size() || from == to ||
        kind > static_cast<uint8_t>(EdgeKind::kMaterializes)) {
      return Status::Corruption("bad lineage edge");
    }
    nodes_[from].out.emplace_back(static_cast<uint32_t>(to),
                                  static_cast<EdgeKind>(kind));
    nodes_[to].in.emplace_back(static_cast<uint32_t>(from),
                               static_cast<EdgeKind>(kind));
    ++num_edges_;
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t num_stale, dec.GetVarint64());
  for (uint64_t i = 0; i < num_stale; ++i) {
    MLFS_ASSIGN_OR_RETURN(uint64_t node, dec.GetVarint64());
    if (node >= nodes_.size()) return Status::Corruption("bad stale node");
    MLFS_ASSIGN_OR_RETURN(StalenessInfo info, GetStalenessInfo(&dec));
    stale_[static_cast<uint32_t>(node)] = std::move(info);
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t num_events, dec.GetVarint64());
  for (uint64_t i = 0; i < num_events; ++i) {
    StalenessEvent event;
    MLFS_ASSIGN_OR_RETURN(event.source, GetArtifact(&dec));
    MLFS_ASSIGN_OR_RETURN(uint8_t reason, dec.GetU8());
    if (reason > static_cast<uint8_t>(StalenessReason::kDrift)) {
      return Status::Corruption("bad staleness reason tag");
    }
    event.reason = static_cast<StalenessReason>(reason);
    MLFS_ASSIGN_OR_RETURN(uint64_t at, dec.GetFixed64());
    event.at = static_cast<Timestamp>(at);
    MLFS_ASSIGN_OR_RETURN(event.detail, dec.GetString());
    MLFS_ASSIGN_OR_RETURN(uint64_t num_impacted, dec.GetVarint64());
    for (uint64_t j = 0; j < num_impacted; ++j) {
      MLFS_ASSIGN_OR_RETURN(ArtifactId id, GetArtifact(&dec));
      event.impacted.push_back(std::move(id));
    }
    events_.push_back(std::move(event));
  }
  return Status::OK();
}

}  // namespace mlfs
