#ifndef MLFS_LINEAGE_LINEAGE_GRAPH_H_
#define MLFS_LINEAGE_LINEAGE_GRAPH_H_

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/ref.h"
#include "common/status.h"
#include "common/timestamp.h"

namespace mlfs {

/// Cross-layer artifact lineage (paper §2.2.2, §3.1.3, §4): one typed,
/// versioned DAG covering every artifact the feature store manages — source
/// tables and columns, feature definitions, embedding tables, models, and
/// materialized online views — so transitive questions ("what is impacted
/// if user_emb@v3 is deprecated?") have one answer instead of four
/// per-silo approximations. FeatureRegistry, EmbeddingStore, ModelRegistry,
/// and the Materializer all record into (and query from) this graph.

enum class ArtifactKind : uint8_t {
  kSourceTable = 0,
  kSourceColumn = 1,  // name is "table.column".
  kFeature = 2,
  kEmbedding = 3,
  kModel = 4,
  kView = 5,  // A materialized online view (unversioned; name = view name).
};

std::string_view ArtifactKindToString(ArtifactKind kind);

/// Identity of one node in the graph. version 0 = unversioned (tables,
/// columns, views) or an unpinned reference.
struct ArtifactId {
  ArtifactKind kind = ArtifactKind::kSourceTable;
  std::string name;
  int version = 0;

  /// "embedding:user_emb@v3", "table:activity", "view:user_trip_rate".
  std::string ToString() const;

  friend bool operator==(const ArtifactId& a, const ArtifactId& b) {
    return a.kind == b.kind && a.version == b.version && a.name == b.name;
  }
  friend bool operator!=(const ArtifactId& a, const ArtifactId& b) {
    return !(a == b);
  }
  friend bool operator<(const ArtifactId& a, const ArtifactId& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.name != b.name) return a.name < b.name;
    return a.version < b.version;
  }
};

inline ArtifactId TableArtifact(std::string name) {
  return {ArtifactKind::kSourceTable, std::move(name), 0};
}
inline ArtifactId ColumnArtifact(const std::string& table,
                                 const std::string& column) {
  return {ArtifactKind::kSourceColumn, table + "." + column, 0};
}
inline ArtifactId FeatureArtifact(std::string name, int version) {
  return {ArtifactKind::kFeature, std::move(name), version};
}
inline ArtifactId EmbeddingArtifact(std::string name, int version) {
  return {ArtifactKind::kEmbedding, std::move(name), version};
}
inline ArtifactId ModelArtifact(std::string name, int version) {
  return {ArtifactKind::kModel, std::move(name), version};
}
inline ArtifactId ViewArtifact(std::string name) {
  return {ArtifactKind::kView, std::move(name), 0};
}

/// Edges always point from the *downstream* artifact to the *upstream*
/// dependency it was built from:
///   kDerivedFrom   feature -> source column, embedding vK -> parent,
///                  column -> its table.
///   kTrainedOn     embedding -> the corpus/table it was trained on.
///   kPins          model -> the exact feature/embedding version it uses.
///   kPatchedInto   patched embedding -> the version the patch was applied
///                  to (the upstream was "patched into" the downstream).
///   kMaterializes  online view -> the feature/embedding version whose
///                  values it currently serves.
enum class EdgeKind : uint8_t {
  kDerivedFrom = 0,
  kTrainedOn = 1,
  kPins = 2,
  kPatchedInto = 3,
  kMaterializes = 4,
};

std::string_view EdgeKindToString(EdgeKind kind);

struct LineageEdge {
  ArtifactId from;  // Downstream (depends on `to`).
  EdgeKind kind = EdgeKind::kDerivedFrom;
  ArtifactId to;  // Upstream dependency.
};

/// Why an artifact went stale.
enum class StalenessReason : uint8_t {
  kSuperseded = 0,  // A newer version of an upstream artifact exists.
  kDeprecated = 1,  // An upstream artifact was explicitly deprecated.
  kDrift = 2,       // A drift monitor fired on an upstream artifact.
};

std::string_view StalenessReasonToString(StalenessReason reason);

/// Per-artifact staleness annotation: which upstream change tainted it.
struct StalenessInfo {
  StalenessReason reason = StalenessReason::kSuperseded;
  Timestamp at = 0;
  ArtifactId source;  // The artifact the event originated at.
  std::string detail;

  /// "embedding:user_emb@v1 superseded (<detail>)".
  std::string ToString() const;
};

/// One propagation event: an upstream change fanned out to its transitive
/// downstream consumers. Emitted by MarkStale, recorded in Events(), and
/// pushed to every Subscribe()d listener (e.g. the AlertBus bridge).
struct StalenessEvent {
  ArtifactId source;
  StalenessReason reason = StalenessReason::kSuperseded;
  Timestamp at = 0;
  std::string detail;
  /// Transitive downstream consumers (sorted; excludes `source` itself and
  /// other versions of the same artifact — a retrain derived from the stale
  /// version is its replacement, not a consumer).
  std::vector<ArtifactId> impacted;
};

/// Thread-safe versioned artifact DAG with transitive closure queries,
/// cycle rejection, staleness propagation, and snapshot/restore serde.
class LineageGraph {
 public:
  using StalenessListener = std::function<void(const StalenessEvent&)>;

  LineageGraph() = default;
  LineageGraph(const LineageGraph&) = delete;
  LineageGraph& operator=(const LineageGraph&) = delete;

  /// Registers a node; idempotent.
  Status AddArtifact(const ArtifactId& id);

  /// Adds `from` --kind--> `to` (auto-registering both nodes). Identical
  /// duplicate edges are no-ops. Self-edges and edges that would close a
  /// cycle are rejected with FailedPrecondition.
  Status AddEdge(const ArtifactId& from, EdgeKind kind, const ArtifactId& to);

  bool HasArtifact(const ArtifactId& id) const;
  size_t num_artifacts() const;
  size_t num_edges() const;

  /// Dependency edges out of `id` (upstream); empty for unknown nodes.
  std::vector<LineageEdge> OutEdges(const ArtifactId& id) const;
  /// Dependent edges into `id` (downstream); empty for unknown nodes.
  std::vector<LineageEdge> InEdges(const ArtifactId& id) const;
  /// All registered versions of (kind, name), ascending.
  std::vector<ArtifactId> VersionsOf(ArtifactKind kind,
                                     const std::string& name) const;

  /// Everything `id` transitively depends on (excludes `id`; sorted).
  std::vector<ArtifactId> UpstreamClosure(const ArtifactId& id) const;
  /// Everything transitively depending on `id` (excludes `id`; sorted).
  std::vector<ArtifactId> DownstreamClosure(const ArtifactId& id) const;
  /// DownstreamClosure that refuses to traverse *through or into* other
  /// versions of `id`'s own (kind, name): the consumers impacted by a
  /// change to `id`. A successor version derived from `id` (and anything
  /// reachable only via that successor) is a replacement, not a consumer.
  std::vector<ArtifactId> ImpactSet(const ArtifactId& id) const;

  /// Marks `source` and its ImpactSet stale, records the event, and
  /// notifies listeners (outside the graph lock). NotFound if `source` was
  /// never registered. Later events overwrite earlier annotations.
  StatusOr<StalenessEvent> MarkStale(const ArtifactId& source,
                                     StalenessReason reason, Timestamp at,
                                     std::string detail);

  /// Removes the staleness annotation of `id` (only this node).
  void ClearStale(const ArtifactId& id);

  /// The staleness annotation of `id`, if any.
  std::optional<StalenessInfo> StalenessOf(const ArtifactId& id) const;

  /// All MarkStale events, oldest first.
  std::vector<StalenessEvent> Events() const;
  size_t num_events() const;

  /// Registers a listener invoked (outside the graph lock) on every
  /// MarkStale. Subscribe before concurrent use; listeners are never
  /// removed.
  void Subscribe(StalenessListener listener);

  /// Records a (re-)materialization run: adds `view` --materializes-->
  /// `target` and recomputes the view's staleness from the target — a fresh
  /// run of a healthy target clears a previously stale view, while a stale
  /// target taints the view it fills. No event is emitted.
  Status RecordMaterialization(const ArtifactId& view,
                               const ArtifactId& target);

  /// Serializes nodes, edges, staleness annotations, and the event log.
  std::string Snapshot() const;

  /// Restores a Snapshot() into this (empty) graph.
  Status Restore(std::string_view snapshot);

 private:
  struct Node {
    ArtifactId id;
    std::vector<std::pair<uint32_t, EdgeKind>> out;  // Upstream deps.
    std::vector<std::pair<uint32_t, EdgeKind>> in;   // Downstream users.
  };

  size_t InternLocked(const ArtifactId& id);
  /// True when `goal` is reachable from `start` along out-edges.
  bool ReachesLocked(uint32_t start, uint32_t goal) const;
  /// BFS closure from `start`; follows in-edges when `downstream`, out
  /// otherwise. `skip_same_name` refuses to visit other versions of
  /// `start`'s (kind, name). Excludes `start`.
  std::vector<uint32_t> ClosureLocked(uint32_t start, bool downstream,
                                      bool skip_same_name) const;
  std::vector<ArtifactId> IdsOfLocked(const std::vector<uint32_t>& nodes) const;
  void NotifyListeners(const StalenessEvent& event) const;

  mutable std::shared_mutex mu_;
  std::map<ArtifactId, uint32_t> index_;
  std::vector<Node> nodes_;
  size_t num_edges_ = 0;
  std::map<uint32_t, StalenessInfo> stale_;
  std::vector<StalenessEvent> events_;

  mutable std::mutex listeners_mu_;
  std::vector<StalenessListener> listeners_;
};

}  // namespace mlfs

#endif  // MLFS_LINEAGE_LINEAGE_GRAPH_H_
