#ifndef MLFS_MODELSTORE_MODEL_REGISTRY_H_
#define MLFS_MODELSTORE_MODEL_REGISTRY_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/timestamp.h"
#include "embedding/embedding_store.h"

namespace mlfs {

/// A stored model artifact with everything reproducibility needs:
/// hyperparameters, metrics, and — critically — *pinned versions* of every
/// feature and embedding it was trained on (paper §2.2.2 "Model Storage",
/// after ModelDB [28] / ModelKB [8]).
struct ModelRecord {
  std::string name;
  int version = 0;  // Assigned by the registry.
  std::string task;
  /// Pinned inputs: "feature_name@vK" and "embedding_name@vK".
  std::vector<std::string> feature_refs;
  std::vector<std::string> embedding_refs;
  std::map<std::string, std::string> hyperparameters;
  std::map<std::string, double> metrics;  // e.g. {"accuracy", 0.93}.
  Timestamp trained_at = 0;
  /// FNV hash of the serialized weights (artifact integrity).
  uint64_t weights_checksum = 0;
  /// Optional inline artifact (small models only).
  std::vector<double> weights;

  std::string VersionedName() const {
    return name + "@v" + std::to_string(version);
  }
};

/// One consumer whose pinned embedding lags the store.
struct VersionSkew {
  std::string model;          // "name@vK".
  std::string embedding;      // Embedding name.
  int pinned_version = 0;
  int latest_version = 0;

  int lag() const { return latest_version - pinned_version; }
};

/// Versioned model catalog with embedding-skew detection: the mechanism
/// behind the paper's §4 warning that "if an embedding gets updated but a
/// model that uses it does not, the dot product ... can lose meaning".
class ModelRegistry {
 public:
  /// Registers a model; assigns and returns the version. Computes
  /// weights_checksum from `record.weights` when unset.
  StatusOr<int> Register(ModelRecord record, Timestamp now);

  StatusOr<ModelRecord> Get(const std::string& name) const;
  StatusOr<ModelRecord> GetVersion(const std::string& name,
                                   int version) const;
  std::vector<ModelRecord> ListLatest() const;

  /// Latest models whose pinned embedding versions are older than the
  /// store's latest — the consumers that must be retrained (or the rollout
  /// held) after an embedding update.
  StatusOr<std::vector<VersionSkew>> CheckEmbeddingSkew(
      const EmbeddingStore& embeddings) const;

  /// Models (latest versions) consuming any version of `embedding_name` —
  /// the blast radius of an embedding change.
  std::vector<std::string> ConsumersOfEmbedding(
      const std::string& embedding_name) const;

  size_t num_models() const;

  /// Serializes every version of every model record.
  std::string Snapshot() const;

  /// Restores a Snapshot() into this (empty) registry.
  Status Restore(std::string_view snapshot);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<ModelRecord>> models_;
};

/// Parses "name@vK" into (name, K); version 0 when no suffix.
std::pair<std::string, int> SplitVersionedRef(const std::string& reference);

}  // namespace mlfs

#endif  // MLFS_MODELSTORE_MODEL_REGISTRY_H_
