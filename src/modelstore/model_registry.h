#ifndef MLFS_MODELSTORE_MODEL_REGISTRY_H_
#define MLFS_MODELSTORE_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/ref.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "embedding/embedding_store.h"
#include "lineage/lineage_graph.h"

namespace mlfs {

/// A stored model artifact with everything reproducibility needs:
/// hyperparameters, metrics, and — critically — *pinned versions* of every
/// feature and embedding it was trained on (paper §2.2.2 "Model Storage",
/// after ModelDB [28] / ModelKB [8]).
struct ModelRecord {
  std::string name;
  int version = 0;  // Assigned by the registry.
  std::string task;
  /// Pinned inputs: "feature_name@vK" and "embedding_name@vK".
  std::vector<std::string> feature_refs;
  std::vector<std::string> embedding_refs;
  std::map<std::string, std::string> hyperparameters;
  std::map<std::string, double> metrics;  // e.g. {"accuracy", 0.93}.
  Timestamp trained_at = 0;
  /// FNV hash of the serialized weights (artifact integrity).
  uint64_t weights_checksum = 0;
  /// Optional inline artifact (small models only).
  std::vector<double> weights;

  std::string VersionedName() const {
    return FormatVersionedRef(name, version);
  }
};

/// One consumer whose pinned embedding lags the store.
struct VersionSkew {
  std::string model;          // "name@vK".
  std::string embedding;      // Embedding name.
  int pinned_version = 0;
  int latest_version = 0;

  int lag() const { return latest_version - pinned_version; }
};

/// A model reference the skew check could not resolve: either unpinned
/// (no "@vK" suffix) or pinned to a version the store does not have. These
/// are findings, not errors — one bad ref must not hide real skew.
struct DanglingRef {
  std::string model;  // "name@vK".
  std::string ref;    // The embedding reference as written.
  std::string detail;
};

/// Result of CheckEmbeddingSkew: real version skews plus the refs that
/// could not be checked.
struct VersionSkewReport {
  std::vector<VersionSkew> skews;
  std::vector<DanglingRef> dangling;
};

/// Versioned model catalog with embedding-skew detection: the mechanism
/// behind the paper's §4 warning that "if an embedding gets updated but a
/// model that uses it does not, the dot product ... can lose meaning".
///
/// Every registration records the model into a LineageGraph with one
/// deduplicated `pins` edge per pinned feature/embedding reference; skew
/// and consumer queries are closure queries over those edges.
class ModelRegistry {
 public:
  /// `lineage` (not owned) is the shared cross-layer graph; when null the
  /// registry owns a private graph (standalone use in tests/tools).
  explicit ModelRegistry(LineageGraph* lineage = nullptr);

  /// Registers a model; assigns and returns the version. Computes
  /// weights_checksum from `record.weights` when unset.
  StatusOr<int> Register(ModelRecord record, Timestamp now);

  StatusOr<ModelRecord> Get(const std::string& name) const;
  StatusOr<ModelRecord> GetVersion(const std::string& name,
                                   int version) const;
  std::vector<ModelRecord> ListLatest() const;

  /// Latest models whose pinned embedding versions are older than the
  /// store's latest — the consumers that must be retrained (or the rollout
  /// held) after an embedding update. Skews are found by walking the
  /// lineage graph's impact sets of superseded embedding versions; refs
  /// that cannot be resolved are reported as `dangling` findings rather
  /// than aborting the whole check.
  StatusOr<VersionSkewReport> CheckEmbeddingSkew(
      const EmbeddingStore& embeddings) const;

  /// Models (latest versions) consuming any version of `embedding_name` —
  /// the blast radius of an embedding change, read off the graph's
  /// reverse `pins` edges.
  std::vector<std::string> ConsumersOfEmbedding(
      const std::string& embedding_name) const;

  size_t num_models() const;

  /// The lineage graph this registry records into (shared or owned).
  LineageGraph& lineage_graph() { return *lineage_; }
  const LineageGraph& lineage_graph() const { return *lineage_; }

  /// Serializes every version of every model record.
  std::string Snapshot() const;

  /// Restores a Snapshot() into this (empty) registry.
  Status Restore(std::string_view snapshot);

 private:
  /// Records `record` (already version-stamped) into the lineage graph.
  void RecordLineage(const ModelRecord& record);

  mutable std::mutex mu_;
  std::map<std::string, std::vector<ModelRecord>> models_;
  std::unique_ptr<LineageGraph> owned_lineage_;
  LineageGraph* lineage_;  // Shared (not owned) or owned_lineage_.get().
};

}  // namespace mlfs

#endif  // MLFS_MODELSTORE_MODEL_REGISTRY_H_
