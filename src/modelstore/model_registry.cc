#include "modelstore/model_registry.h"

#include <algorithm>
#include <set>

#include "common/hash.h"
#include "common/serde.h"

namespace mlfs {

ModelRegistry::ModelRegistry(LineageGraph* lineage) {
  if (lineage == nullptr) {
    owned_lineage_ = std::make_unique<LineageGraph>();
    lineage_ = owned_lineage_.get();
  } else {
    lineage_ = lineage;
  }
}

StatusOr<int> ModelRegistry::Register(ModelRecord record, Timestamp now) {
  if (record.name.empty()) {
    return Status::InvalidArgument("model needs a name");
  }
  if (record.trained_at == 0) record.trained_at = now;
  if (record.weights_checksum == 0 && !record.weights.empty()) {
    record.weights_checksum =
        Fnv1a64(record.weights.data(),
                record.weights.size() * sizeof(double));
  }
  int version = 0;
  ModelRecord stamped;
  {
    std::lock_guard lock(mu_);
    auto& versions = models_[record.name];
    record.version = versions.empty() ? 1 : versions.back().version + 1;
    version = record.version;
    versions.push_back(std::move(record));
    stamped = versions.back();
  }
  RecordLineage(stamped);
  return version;
}

void ModelRegistry::RecordLineage(const ModelRecord& record) {
  const ArtifactId self = ModelArtifact(record.name, record.version);
  (void)lineage_->AddArtifact(self);
  // One deduplicated pins edge per pinned reference; unpinned refs have no
  // version to pin and surface later as dangling findings.
  for (const std::string& ref : record.embedding_refs) {
    const VersionedRef parsed = ParseVersionedRef(ref);
    if (!parsed.pinned()) continue;
    (void)lineage_->AddEdge(self, EdgeKind::kPins,
                            EmbeddingArtifact(parsed.name, parsed.version));
  }
  for (const std::string& ref : record.feature_refs) {
    const VersionedRef parsed = ParseVersionedRef(ref);
    if (!parsed.pinned()) continue;
    (void)lineage_->AddEdge(self, EdgeKind::kPins,
                            FeatureArtifact(parsed.name, parsed.version));
  }
}

StatusOr<ModelRecord> ModelRegistry::Get(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' not registered");
  }
  return it->second.back();
}

StatusOr<ModelRecord> ModelRegistry::GetVersion(const std::string& name,
                                                int version) const {
  std::lock_guard lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' not registered");
  }
  for (const ModelRecord& record : it->second) {
    if (record.version == version) return record;
  }
  return Status::NotFound("model '" + name + "' has no version " +
                          std::to_string(version));
}

std::vector<ModelRecord> ModelRegistry::ListLatest() const {
  std::lock_guard lock(mu_);
  std::vector<ModelRecord> out;
  out.reserve(models_.size());
  for (const auto& [name, versions] : models_) {
    out.push_back(versions.back());
  }
  return out;
}

StatusOr<VersionSkewReport> ModelRegistry::CheckEmbeddingSkew(
    const EmbeddingStore& embeddings) const {
  VersionSkewReport report;

  // Unresolvable refs become findings, never aborts: one model's typo must
  // not hide real skew elsewhere. Repeated refs are deduplicated.
  std::map<std::string, int> latest_models;
  for (const ModelRecord& record : ListLatest()) {
    latest_models[record.name] = record.version;
    std::set<std::string> seen;
    for (const std::string& ref : record.embedding_refs) {
      if (!seen.insert(ref).second) continue;
      const VersionedRef parsed = ParseVersionedRef(ref);
      if (!parsed.pinned()) {
        report.dangling.push_back(
            {record.VersionedName(), ref, "unpinned embedding reference"});
        continue;
      }
      if (!embeddings.GetVersion(parsed.name, parsed.version).ok()) {
        report.dangling.push_back({record.VersionedName(), ref,
                                   "pinned version not in embedding store"});
      }
    }
  }

  // Skew is a lineage question: for every superseded embedding version the
  // graph knows of, its impact set names the consumers left behind. The
  // direct `pins` edge pins down which stale version each model holds.
  for (const std::string& name : embeddings.Names()) {
    auto latest = embeddings.GetLatest(name);
    if (!latest.ok()) continue;
    const int latest_version = latest.value()->metadata().version;
    for (const ArtifactId& stale :
         lineage_->VersionsOf(ArtifactKind::kEmbedding, name)) {
      if (stale.version <= 0 || stale.version >= latest_version) continue;
      for (const ArtifactId& impacted : lineage_->ImpactSet(stale)) {
        if (impacted.kind != ArtifactKind::kModel) continue;
        auto it = latest_models.find(impacted.name);
        if (it == latest_models.end() || it->second != impacted.version) {
          continue;  // Superseded models are not actionable consumers.
        }
        bool pins_directly = false;
        for (const LineageEdge& edge : lineage_->OutEdges(impacted)) {
          if (edge.kind == EdgeKind::kPins && edge.to == stale) {
            pins_directly = true;
            break;
          }
        }
        if (!pins_directly) continue;
        report.skews.push_back(
            VersionSkew{FormatVersionedRef(impacted.name, impacted.version),
                        name, stale.version, latest_version});
      }
    }
  }
  return report;
}

std::vector<std::string> ModelRegistry::ConsumersOfEmbedding(
    const std::string& embedding_name) const {
  // Reverse pins edges over every known version of the embedding.
  std::map<std::string, int> latest_models;
  for (const ModelRecord& record : ListLatest()) {
    latest_models[record.name] = record.version;
  }
  std::vector<std::string> out;
  for (const ArtifactId& version :
       lineage_->VersionsOf(ArtifactKind::kEmbedding, embedding_name)) {
    for (const LineageEdge& edge : lineage_->InEdges(version)) {
      if (edge.kind != EdgeKind::kPins) continue;
      if (edge.from.kind != ArtifactKind::kModel) continue;
      auto it = latest_models.find(edge.from.name);
      if (it == latest_models.end() || it->second != edge.from.version) {
        continue;
      }
      out.push_back(FormatVersionedRef(edge.from.name, edge.from.version));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t ModelRegistry::num_models() const {
  std::lock_guard lock(mu_);
  return models_.size();
}

namespace {
constexpr uint32_t kModelSnapshotMagic = 0x4d4c4d44;  // "MLMD"
}  // namespace

std::string ModelRegistry::Snapshot() const {
  std::lock_guard lock(mu_);
  Encoder enc;
  enc.PutFixed32(kModelSnapshotMagic);
  uint64_t total = 0;
  for (const auto& [name, versions] : models_) total += versions.size();
  enc.PutVarint64(total);
  for (const auto& [name, versions] : models_) {
    for (const ModelRecord& record : versions) {
      enc.PutString(record.name);
      enc.PutVarint64(static_cast<uint64_t>(record.version));
      enc.PutString(record.task);
      enc.PutVarint64(record.feature_refs.size());
      for (const auto& ref : record.feature_refs) enc.PutString(ref);
      enc.PutVarint64(record.embedding_refs.size());
      for (const auto& ref : record.embedding_refs) enc.PutString(ref);
      enc.PutVarint64(record.hyperparameters.size());
      for (const auto& [key, value] : record.hyperparameters) {
        enc.PutString(key);
        enc.PutString(value);
      }
      enc.PutVarint64(record.metrics.size());
      for (const auto& [key, value] : record.metrics) {
        enc.PutString(key);
        enc.PutDouble(value);
      }
      enc.PutFixed64(static_cast<uint64_t>(record.trained_at));
      enc.PutFixed64(record.weights_checksum);
      enc.PutVarint64(record.weights.size());
      for (double w : record.weights) enc.PutDouble(w);
    }
  }
  return enc.Release();
}

Status ModelRegistry::Restore(std::string_view snapshot) {
  std::unique_lock lock(mu_);
  if (!models_.empty()) {
    return Status::FailedPrecondition("Restore requires an empty registry");
  }
  Decoder dec(snapshot);
  MLFS_ASSIGN_OR_RETURN(uint32_t magic, dec.GetFixed32());
  if (magic != kModelSnapshotMagic) {
    return Status::Corruption("bad model snapshot magic");
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t total, dec.GetVarint64());
  for (uint64_t i = 0; i < total; ++i) {
    ModelRecord record;
    MLFS_ASSIGN_OR_RETURN(record.name, dec.GetString());
    MLFS_ASSIGN_OR_RETURN(uint64_t version, dec.GetVarint64());
    record.version = static_cast<int>(version);
    MLFS_ASSIGN_OR_RETURN(record.task, dec.GetString());
    MLFS_ASSIGN_OR_RETURN(uint64_t num_features, dec.GetVarint64());
    for (uint64_t f = 0; f < num_features; ++f) {
      MLFS_ASSIGN_OR_RETURN(std::string ref, dec.GetString());
      record.feature_refs.push_back(std::move(ref));
    }
    MLFS_ASSIGN_OR_RETURN(uint64_t num_embeddings, dec.GetVarint64());
    for (uint64_t e = 0; e < num_embeddings; ++e) {
      MLFS_ASSIGN_OR_RETURN(std::string ref, dec.GetString());
      record.embedding_refs.push_back(std::move(ref));
    }
    MLFS_ASSIGN_OR_RETURN(uint64_t num_hyper, dec.GetVarint64());
    for (uint64_t h = 0; h < num_hyper; ++h) {
      MLFS_ASSIGN_OR_RETURN(std::string key, dec.GetString());
      MLFS_ASSIGN_OR_RETURN(std::string value, dec.GetString());
      record.hyperparameters.emplace(std::move(key), std::move(value));
    }
    MLFS_ASSIGN_OR_RETURN(uint64_t num_metrics, dec.GetVarint64());
    for (uint64_t m = 0; m < num_metrics; ++m) {
      MLFS_ASSIGN_OR_RETURN(std::string key, dec.GetString());
      MLFS_ASSIGN_OR_RETURN(double value, dec.GetDouble());
      record.metrics.emplace(std::move(key), value);
    }
    MLFS_ASSIGN_OR_RETURN(uint64_t trained_at, dec.GetFixed64());
    record.trained_at = static_cast<Timestamp>(trained_at);
    MLFS_ASSIGN_OR_RETURN(record.weights_checksum, dec.GetFixed64());
    MLFS_ASSIGN_OR_RETURN(uint64_t num_weights, dec.GetVarint64());
    record.weights.resize(num_weights);
    for (auto& w : record.weights) {
      MLFS_ASSIGN_OR_RETURN(w, dec.GetDouble());
    }
    models_[record.name].push_back(std::move(record));
  }
  // Re-record graph structure (idempotent when the graph itself was also
  // restored); no staleness events are re-emitted.
  std::vector<ModelRecord> restored;
  for (const auto& [name, versions] : models_) {
    restored.insert(restored.end(), versions.begin(), versions.end());
  }
  lock.unlock();
  for (const ModelRecord& record : restored) RecordLineage(record);
  return Status::OK();
}

}  // namespace mlfs
