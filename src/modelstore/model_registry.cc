#include "modelstore/model_registry.h"

#include <cstdlib>

#include "common/hash.h"
#include "common/serde.h"

namespace mlfs {

std::pair<std::string, int> SplitVersionedRef(const std::string& reference) {
  size_t at = reference.rfind("@v");
  if (at == std::string::npos) return {reference, 0};
  std::string name = reference.substr(0, at);
  const char* digits = reference.c_str() + at + 2;
  char* end = nullptr;
  long version = std::strtol(digits, &end, 10);
  if (end == digits || *end != '\0' || version <= 0) {
    return {reference, 0};
  }
  return {name, static_cast<int>(version)};
}

StatusOr<int> ModelRegistry::Register(ModelRecord record, Timestamp now) {
  if (record.name.empty()) {
    return Status::InvalidArgument("model needs a name");
  }
  if (record.trained_at == 0) record.trained_at = now;
  if (record.weights_checksum == 0 && !record.weights.empty()) {
    record.weights_checksum =
        Fnv1a64(record.weights.data(),
                record.weights.size() * sizeof(double));
  }
  std::lock_guard lock(mu_);
  auto& versions = models_[record.name];
  record.version = versions.empty() ? 1 : versions.back().version + 1;
  versions.push_back(std::move(record));
  return versions.back().version;
}

StatusOr<ModelRecord> ModelRegistry::Get(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' not registered");
  }
  return it->second.back();
}

StatusOr<ModelRecord> ModelRegistry::GetVersion(const std::string& name,
                                                int version) const {
  std::lock_guard lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) {
    return Status::NotFound("model '" + name + "' not registered");
  }
  for (const ModelRecord& record : it->second) {
    if (record.version == version) return record;
  }
  return Status::NotFound("model '" + name + "' has no version " +
                          std::to_string(version));
}

std::vector<ModelRecord> ModelRegistry::ListLatest() const {
  std::lock_guard lock(mu_);
  std::vector<ModelRecord> out;
  out.reserve(models_.size());
  for (const auto& [name, versions] : models_) {
    out.push_back(versions.back());
  }
  return out;
}

StatusOr<std::vector<VersionSkew>> ModelRegistry::CheckEmbeddingSkew(
    const EmbeddingStore& embeddings) const {
  std::vector<VersionSkew> out;
  for (const ModelRecord& record : ListLatest()) {
    for (const std::string& ref : record.embedding_refs) {
      auto [name, pinned] = SplitVersionedRef(ref);
      if (pinned == 0) {
        return Status::InvalidArgument(
            "model '" + record.VersionedName() +
            "' has unpinned embedding ref '" + ref + "'");
      }
      MLFS_ASSIGN_OR_RETURN(EmbeddingTablePtr latest,
                            embeddings.GetLatest(name));
      int latest_version = latest->metadata().version;
      if (latest_version > pinned) {
        out.push_back(VersionSkew{record.VersionedName(), name, pinned,
                                  latest_version});
      }
    }
  }
  return out;
}

std::vector<std::string> ModelRegistry::ConsumersOfEmbedding(
    const std::string& embedding_name) const {
  std::vector<std::string> out;
  for (const ModelRecord& record : ListLatest()) {
    for (const std::string& ref : record.embedding_refs) {
      if (SplitVersionedRef(ref).first == embedding_name) {
        out.push_back(record.VersionedName());
        break;
      }
    }
  }
  return out;
}

size_t ModelRegistry::num_models() const {
  std::lock_guard lock(mu_);
  return models_.size();
}

namespace {
constexpr uint32_t kModelSnapshotMagic = 0x4d4c4d44;  // "MLMD"
}  // namespace

std::string ModelRegistry::Snapshot() const {
  std::lock_guard lock(mu_);
  Encoder enc;
  enc.PutFixed32(kModelSnapshotMagic);
  uint64_t total = 0;
  for (const auto& [name, versions] : models_) total += versions.size();
  enc.PutVarint64(total);
  for (const auto& [name, versions] : models_) {
    for (const ModelRecord& record : versions) {
      enc.PutString(record.name);
      enc.PutVarint64(static_cast<uint64_t>(record.version));
      enc.PutString(record.task);
      enc.PutVarint64(record.feature_refs.size());
      for (const auto& ref : record.feature_refs) enc.PutString(ref);
      enc.PutVarint64(record.embedding_refs.size());
      for (const auto& ref : record.embedding_refs) enc.PutString(ref);
      enc.PutVarint64(record.hyperparameters.size());
      for (const auto& [key, value] : record.hyperparameters) {
        enc.PutString(key);
        enc.PutString(value);
      }
      enc.PutVarint64(record.metrics.size());
      for (const auto& [key, value] : record.metrics) {
        enc.PutString(key);
        enc.PutDouble(value);
      }
      enc.PutFixed64(static_cast<uint64_t>(record.trained_at));
      enc.PutFixed64(record.weights_checksum);
      enc.PutVarint64(record.weights.size());
      for (double w : record.weights) enc.PutDouble(w);
    }
  }
  return enc.Release();
}

Status ModelRegistry::Restore(std::string_view snapshot) {
  std::lock_guard lock(mu_);
  if (!models_.empty()) {
    return Status::FailedPrecondition("Restore requires an empty registry");
  }
  Decoder dec(snapshot);
  MLFS_ASSIGN_OR_RETURN(uint32_t magic, dec.GetFixed32());
  if (magic != kModelSnapshotMagic) {
    return Status::Corruption("bad model snapshot magic");
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t total, dec.GetVarint64());
  for (uint64_t i = 0; i < total; ++i) {
    ModelRecord record;
    MLFS_ASSIGN_OR_RETURN(record.name, dec.GetString());
    MLFS_ASSIGN_OR_RETURN(uint64_t version, dec.GetVarint64());
    record.version = static_cast<int>(version);
    MLFS_ASSIGN_OR_RETURN(record.task, dec.GetString());
    MLFS_ASSIGN_OR_RETURN(uint64_t num_features, dec.GetVarint64());
    for (uint64_t f = 0; f < num_features; ++f) {
      MLFS_ASSIGN_OR_RETURN(std::string ref, dec.GetString());
      record.feature_refs.push_back(std::move(ref));
    }
    MLFS_ASSIGN_OR_RETURN(uint64_t num_embeddings, dec.GetVarint64());
    for (uint64_t e = 0; e < num_embeddings; ++e) {
      MLFS_ASSIGN_OR_RETURN(std::string ref, dec.GetString());
      record.embedding_refs.push_back(std::move(ref));
    }
    MLFS_ASSIGN_OR_RETURN(uint64_t num_hyper, dec.GetVarint64());
    for (uint64_t h = 0; h < num_hyper; ++h) {
      MLFS_ASSIGN_OR_RETURN(std::string key, dec.GetString());
      MLFS_ASSIGN_OR_RETURN(std::string value, dec.GetString());
      record.hyperparameters.emplace(std::move(key), std::move(value));
    }
    MLFS_ASSIGN_OR_RETURN(uint64_t num_metrics, dec.GetVarint64());
    for (uint64_t m = 0; m < num_metrics; ++m) {
      MLFS_ASSIGN_OR_RETURN(std::string key, dec.GetString());
      MLFS_ASSIGN_OR_RETURN(double value, dec.GetDouble());
      record.metrics.emplace(std::move(key), value);
    }
    MLFS_ASSIGN_OR_RETURN(uint64_t trained_at, dec.GetFixed64());
    record.trained_at = static_cast<Timestamp>(trained_at);
    MLFS_ASSIGN_OR_RETURN(record.weights_checksum, dec.GetFixed64());
    MLFS_ASSIGN_OR_RETURN(uint64_t num_weights, dec.GetVarint64());
    record.weights.resize(num_weights);
    for (auto& w : record.weights) {
      MLFS_ASSIGN_OR_RETURN(w, dec.GetDouble());
    }
    models_[record.name].push_back(std::move(record));
  }
  return Status::OK();
}

}  // namespace mlfs
