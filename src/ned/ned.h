#ifndef MLFS_NED_NED_H_
#define MLFS_NED_NED_H_

#include <vector>

#include "common/status.h"
#include "datagen/kb.h"
#include "embedding/embedding_table.h"

namespace mlfs {

/// Reference downstream application: embedding-based named entity
/// disambiguation (NED) — the task of mapping an ambiguous mention string
/// to the right knowledge-base entity. This is the system the paper's
/// authors built (Bootleg, Orr et al. [22]) and the concrete consumer the
/// embedding-ecosystem machinery exists to serve: candidates come from an
/// alias table, and the winner is the candidate whose entity embedding is
/// most similar to the mention's context.

/// Alias -> candidate sets. Every entity carries exactly one alias; an
/// alias may be shared by several entities (that sharing is what makes
/// disambiguation non-trivial).
struct AliasTable {
  /// Per alias: the candidate entity ids.
  std::vector<std::vector<uint32_t>> alias_candidates;
  /// Per entity: its alias id.
  std::vector<uint32_t> entity_alias;

  size_t num_aliases() const { return alias_candidates.size(); }
  /// Mean candidates per alias.
  double mean_ambiguity() const {
    return alias_candidates.empty()
               ? 0.0
               : static_cast<double>(entity_alias.size()) /
                     static_cast<double>(alias_candidates.size());
  }
};

/// Partitions the KB's entities into alias groups of mean size
/// `mean_ambiguity` (>= 1). With `confusable` true, groups are drawn from
/// same-type entities where possible — the harder, realistic setting where
/// type information alone cannot disambiguate.
StatusOr<AliasTable> BuildAliasTable(const SyntheticKb& kb,
                                     double mean_ambiguity, uint64_t seed,
                                     bool confusable = true);

/// One mention to resolve: the gold entity plus the entities that co-occur
/// in its sentence (the context available to the disambiguator).
struct MentionQuery {
  uint32_t alias = 0;
  uint32_t truth = 0;
  std::vector<uint32_t> context;
};

/// Samples `n` mention queries: the gold entity by popularity, the context
/// by relation walks from it (mirroring the corpus generator, so the
/// embedding has actually seen this kind of co-occurrence).
StatusOr<std::vector<MentionQuery>> GenerateMentionQueries(
    const SyntheticKb& kb, const AliasTable& aliases, size_t n,
    int context_size, uint64_t seed);

struct NedReport {
  size_t queries = 0;
  double accuracy = 0.0;          // Top-1 over candidates.
  double mrr = 0.0;               // Mean reciprocal rank of the gold.
  double random_baseline = 0.0;   // E[1/|candidates|].
};

struct NedOptions {
  /// Correct cosine hubness: subtract each candidate's mean similarity to
  /// random probe entities, so globally-central ("hub") candidates stop
  /// swallowing every ambiguous mention. Matters most when alias-mates
  /// share a type.
  bool hubness_correction = true;
  size_t hubness_probes = 50;
  uint64_t seed = 97;
};

/// Resolves each query by scoring every candidate against the mean context
/// vector (cosine, optionally hubness-corrected) and reports accuracy/MRR.
/// Entities are looked up in `table` by kb.entity_key(id); queries whose
/// gold or context vectors are missing are skipped.
StatusOr<NedReport> EvaluateDisambiguation(
    const EmbeddingTable& table, const SyntheticKb& kb,
    const AliasTable& aliases, const std::vector<MentionQuery>& queries,
    NedOptions options = {});

/// Accuracy restricted to queries whose gold entity is in `entity_subset`
/// (e.g. a popularity decile).
StatusOr<NedReport> EvaluateDisambiguationOn(
    const EmbeddingTable& table, const SyntheticKb& kb,
    const AliasTable& aliases, const std::vector<MentionQuery>& queries,
    const std::vector<size_t>& entity_subset, NedOptions options = {});

}  // namespace mlfs

#endif  // MLFS_NED_NED_H_
