#include "ned/ned.h"

#include <algorithm>
#include <unordered_set>

#include "embedding/distance.h"

namespace mlfs {

StatusOr<AliasTable> BuildAliasTable(const SyntheticKb& kb,
                                     double mean_ambiguity, uint64_t seed,
                                     bool confusable) {
  if (mean_ambiguity < 1.0) {
    return Status::InvalidArgument("mean_ambiguity must be >= 1");
  }
  Rng rng(seed);
  const size_t n = kb.num_entities();
  AliasTable table;
  table.entity_alias.assign(n, 0);

  // Pools to draw groups from: per type when confusable, global otherwise.
  std::vector<std::vector<uint32_t>> pools;
  if (confusable) {
    pools.resize(kb.config.num_types);
    for (size_t e = 0; e < n; ++e) {
      pools[kb.entity_type[e]].push_back(static_cast<uint32_t>(e));
    }
  } else {
    pools.resize(1);
    for (size_t e = 0; e < n; ++e) {
      pools[0].push_back(static_cast<uint32_t>(e));
    }
  }
  for (auto& pool : pools) rng.Shuffle(&pool);

  for (auto& pool : pools) {
    size_t i = 0;
    while (i < pool.size()) {
      // Geometric-ish group size with the requested mean (min 1).
      size_t group = 1;
      while (group < 8 &&
             rng.Bernoulli(1.0 - 1.0 / mean_ambiguity)) {
        ++group;
      }
      group = std::min(group, pool.size() - i);
      uint32_t alias = static_cast<uint32_t>(table.alias_candidates.size());
      table.alias_candidates.emplace_back();
      for (size_t g = 0; g < group; ++g, ++i) {
        table.alias_candidates[alias].push_back(pool[i]);
        table.entity_alias[pool[i]] = alias;
      }
    }
  }
  return table;
}

StatusOr<std::vector<MentionQuery>> GenerateMentionQueries(
    const SyntheticKb& kb, const AliasTable& aliases, size_t n,
    int context_size, uint64_t seed) {
  if (n == 0 || context_size < 1) {
    return Status::InvalidArgument("need queries with context");
  }
  if (aliases.entity_alias.size() != kb.num_entities()) {
    return Status::InvalidArgument("alias table does not match KB");
  }
  Rng rng(seed);
  std::vector<MentionQuery> queries;
  queries.reserve(n);
  while (queries.size() < n) {
    MentionQuery query;
    query.truth = static_cast<uint32_t>(kb.popularity.Sample(&rng));
    query.alias = aliases.entity_alias[query.truth];
    // Context: a relation walk from the gold entity (same process as the
    // corpus generator's sentences).
    uint32_t current = query.truth;
    for (int step = 0; step < context_size * 3 &&
                       static_cast<int>(query.context.size()) < context_size;
         ++step) {
      const auto& adjacency = kb.neighbors[current];
      if (adjacency.empty()) break;
      current = adjacency[rng.Uniform(adjacency.size())].first;
      if (current != query.truth) query.context.push_back(current);
    }
    if (query.context.empty()) continue;  // Isolated entity: no signal.
    queries.push_back(std::move(query));
  }
  return queries;
}

namespace {

StatusOr<NedReport> EvaluateImpl(const EmbeddingTable& table,
                                 const SyntheticKb& kb,
                                 const AliasTable& aliases,
                                 const std::vector<MentionQuery>& queries,
                                 const std::unordered_set<size_t>* subset,
                                 const NedOptions& options) {
  // The evaluation holds row/Get pointers across further lookups, which
  // the tiered pin contract forbids; evaluate a resident copy instead.
  if (table.tiered()) {
    MLFS_ASSIGN_OR_RETURN(EmbeddingTablePtr resident, table.Materialize());
    return EvaluateImpl(*resident, kb, aliases, queries, subset, options);
  }
  const size_t d = table.dim();
  // Hubness prior: each entity's mean cosine to random probe entities.
  std::vector<double> prior(kb.num_entities(), 0.0);
  if (options.hubness_correction && table.size() > 0) {
    Rng rng(options.seed);
    std::vector<const float*> probe_vectors;
    for (size_t p = 0; p < options.hubness_probes; ++p) {
      probe_vectors.push_back(table.row(rng.Uniform(table.size())));
    }
    for (size_t e = 0; e < kb.num_entities(); ++e) {
      auto vec = table.Get(kb.entity_key(e));
      if (!vec.ok()) continue;
      double sum = 0.0;
      for (const float* probe : probe_vectors) {
        sum += CosineSimilarity(*vec, probe, d);
      }
      prior[e] = sum / static_cast<double>(probe_vectors.size());
    }
  }
  NedReport report;
  double baseline_total = 0.0;
  std::vector<float> context_mean(d);
  for (const MentionQuery& query : queries) {
    if (subset != nullptr && subset->count(query.truth) == 0) continue;
    if (query.alias >= aliases.alias_candidates.size()) {
      return Status::InvalidArgument("query alias out of range");
    }
    const auto& candidates = aliases.alias_candidates[query.alias];
    // Mean context vector.
    std::fill(context_mean.begin(), context_mean.end(), 0.0f);
    size_t used = 0;
    for (uint32_t entity : query.context) {
      auto vec = table.Get(kb.entity_key(entity));
      if (!vec.ok()) continue;
      for (size_t j = 0; j < d; ++j) context_mean[j] += (*vec)[j];
      ++used;
    }
    if (used == 0) continue;
    for (auto& x : context_mean) x /= static_cast<float>(used);

    // Rank candidates by cosine with the context.
    std::vector<std::pair<float, uint32_t>> scored;
    scored.reserve(candidates.size());
    bool gold_present = false;
    for (uint32_t candidate : candidates) {
      auto vec = table.Get(kb.entity_key(candidate));
      if (!vec.ok()) continue;
      float score = CosineSimilarity(context_mean.data(), *vec, d) -
                    static_cast<float>(prior[candidate]);
      scored.emplace_back(-score, candidate);
      gold_present |= candidate == query.truth;
    }
    if (!gold_present || scored.empty()) continue;
    std::sort(scored.begin(), scored.end());
    size_t rank = scored.size();
    for (size_t r = 0; r < scored.size(); ++r) {
      if (scored[r].second == query.truth) {
        rank = r + 1;
        break;
      }
    }
    ++report.queries;
    report.accuracy += (rank == 1) ? 1.0 : 0.0;
    report.mrr += 1.0 / static_cast<double>(rank);
    baseline_total += 1.0 / static_cast<double>(scored.size());
  }
  if (report.queries == 0) {
    return Status::InvalidArgument("no evaluable queries");
  }
  report.accuracy /= static_cast<double>(report.queries);
  report.mrr /= static_cast<double>(report.queries);
  report.random_baseline =
      baseline_total / static_cast<double>(report.queries);
  return report;
}

}  // namespace

StatusOr<NedReport> EvaluateDisambiguation(
    const EmbeddingTable& table, const SyntheticKb& kb,
    const AliasTable& aliases, const std::vector<MentionQuery>& queries,
    NedOptions options) {
  return EvaluateImpl(table, kb, aliases, queries, nullptr, options);
}

StatusOr<NedReport> EvaluateDisambiguationOn(
    const EmbeddingTable& table, const SyntheticKb& kb,
    const AliasTable& aliases, const std::vector<MentionQuery>& queries,
    const std::vector<size_t>& entity_subset, NedOptions options) {
  std::unordered_set<size_t> subset(entity_subset.begin(),
                                    entity_subset.end());
  return EvaluateImpl(table, kb, aliases, queries, &subset, options);
}

}  // namespace mlfs
