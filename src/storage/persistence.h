#ifndef MLFS_STORAGE_PERSISTENCE_H_
#define MLFS_STORAGE_PERSISTENCE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/offline_store.h"
#include "storage/online_store.h"

namespace mlfs {

/// Durable checkpointing for the dual datastore. The stores themselves are
/// in-memory engines; checkpoints make restarts and migrations possible
/// without replaying ingestion.

/// Writes `data` to `path` atomically (temp file + rename).
Status WriteFileAtomic(const std::string& path, std::string_view data);

/// Reads a whole file.
StatusOr<std::string> ReadFile(const std::string& path);

/// Checkpoints every table of `store` into `dir/<table>.offline.mlfs`.
/// Creates `dir` if needed. Returns the file names written.
StatusOr<std::vector<std::string>> CheckpointOfflineStore(
    const OfflineStore& store, const std::string& dir);

/// Restores every `*.offline.mlfs` file in `dir` into `store` (tables are
/// created from the self-contained snapshots; name collisions fail).
Status RestoreOfflineStore(OfflineStore* store, const std::string& dir);

/// Checkpoints the online store into `dir/online.mlfs`.
Status CheckpointOnlineStore(const OnlineStore& store,
                             const std::string& dir);

/// Restores `dir/online.mlfs` into `store`.
Status RestoreOnlineStore(OnlineStore* store, const std::string& dir);

}  // namespace mlfs

#endif  // MLFS_STORAGE_PERSISTENCE_H_
