#ifndef MLFS_STORAGE_OFFLINE_STORE_H_
#define MLFS_STORAGE_OFFLINE_STORE_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "expr/evaluator.h"
#include "io/readahead.h"
#include "storage/segment.h"

namespace mlfs {

/// One point-in-time read in an AsOfBatch call: the *canonical* entity key
/// (EntityKeyToString form) and the as-of timestamp. The key bytes must
/// outlive the call.
struct AsOfRequest {
  std::string_view key;
  Timestamp ts = 0;
};

/// Optional knobs for batched reads (AsOfBatch / ScanColumns).
struct AsOfReadOptions {
  /// Projection: indices into the table schema to gather, in output order.
  /// Empty means full width. With columnar segments the projection is
  /// resolved *before* the gather — unrequested columns are never
  /// materialized, not copied and dropped.
  std::span<const int> columns;
  /// Schema of the projected output rows; must have one field per entry in
  /// `columns` with matching types. Required iff `columns` is non-empty
  /// (callers build it once and reuse it so every result row shares one
  /// schema object).
  SchemaPtr projected_schema;
  /// When set, receives one bit per request (bit i of word i/64): 1 means
  /// the request missed (no history at its timestamp). Missed slots of
  /// `results` are left untouched — no empty row is materialized — so
  /// callers null-fill from the bitmap instead of probing result rows.
  std::vector<uint64_t>* miss_bitmap = nullptr;
  /// Time-range pruning of the posting cursor (default on): AsOfBatch
  /// advances each entity's cursor with a binary search over the remaining
  /// (ts-sorted) postings instead of stepping row references one at a
  /// time, skipping every posting a request timestamp cannot match.
  /// Results are byte-identical either way (pinned by a differential
  /// test); the knob exists so that equivalence stays testable.
  bool prune_time_ranges = true;
  /// Spilled-segment prefetch pipeline depth for this call: AsOfBatch
  /// keeps up to this many segments ahead of the gather cursor warming
  /// concurrently (>= 1; meaningful only when the table's readahead is
  /// enabled). Deeper pipelines help when per-segment gather time is
  /// shorter than a segment's fault-in time.
  size_t readahead_depth = 1;
};

/// Tests bit `i` of a miss bitmap produced by AsOfBatch.
inline bool MissBitmapTest(const std::vector<uint64_t>& bitmap, size_t i) {
  return (bitmap[i >> 6] >> (i & 63)) & 1;
}

/// One entity's result from a batch materialization read
/// (OfflineTable::EvalLatestPerEntityAsOf).
struct MaterializedCell {
  Value entity;
  Timestamp event_time = 0;
  Value value;
};

/// How RunMaintenance() picks segments to merge (explicit
/// CompactPartitions() always merges everything regardless of policy).
enum class CompactionPolicy : uint8_t {
  /// Merge every segment of a partition once the partition accumulates
  /// compact_min_segments of them — the historical policy. Simple, but
  /// each pass rewrites the partition's entire sealed history, so write
  /// amplification grows with partition size.
  kSegmentCount = 0,
  /// Size-tiered: merge only an adjacent run of segments in the same
  /// log2-size bucket (preferring runs whose event-time ranges overlap,
  /// which is where as-of reads pay for fragmentation). Merged output
  /// graduates to a bigger bucket and is not rewritten again until peers
  /// of its own size accumulate — write amplification per row is
  /// O(log n) instead of O(n / seal_rows).
  kSizeTiered = 1,
};

/// Configuration for one offline (historical) table.
struct OfflineTableOptions {
  std::string name;
  SchemaPtr schema;
  /// Column holding the entity key (INT64 or STRING; non-nullable).
  std::string entity_column;
  /// Column holding the event timestamp (TIMESTAMP; non-nullable).
  std::string time_column;
  /// Rows are grouped into partitions of this width (default: daily), the
  /// standard feature-store layout for time-based joins.
  Timestamp partition_granularity = kMicrosPerDay;

  // --- Columnar / tiered storage knobs ---------------------------------
  /// A partition's mutable row head seals into an immutable columnar
  /// segment once it holds this many rows (checked on append, under the
  /// same exclusive lock). 0 disables automatic sealing; heads then seal
  /// only through SealHeads()/RunMaintenance().
  size_t seal_rows = 8192;
  /// Soft cap on encoded segment bytes kept resident in RAM; 0 means
  /// unlimited. Over-budget segments spill to `spill_dir` during
  /// EnforceMemoryBudget()/RunMaintenance() (coldest partition first),
  /// after which they are served through a read-only file mapping.
  size_t memory_budget_bytes = 0;
  /// Directory for spilled segment files; empty disables spilling.
  std::string spill_dir;
  /// RunMaintenance() compacts a partition once it accumulates this many
  /// sealed segments (explicit CompactPartitions() compacts at >= 2).
  size_t compact_min_segments = 4;
  /// Segment-selection policy for RunMaintenance() compaction.
  CompactionPolicy compaction_policy = CompactionPolicy::kSegmentCount;
  /// Async spilled-segment prefetch for AsOfBatch (io/readahead.h): while
  /// the gather cursor works one spilled segment, the scheduler faults in
  /// the next one's pages off-thread. Default-disabled; results are
  /// byte-identical either way.
  ReadaheadOptions readahead;
};

/// Storage-tier counters for one table (see storage_stats()).
struct OfflineStorageStats {
  size_t head_rows = 0;
  size_t sealed_rows = 0;
  size_t sealed_segments = 0;
  size_t spilled_segments = 0;
  /// Encoded bytes of sealed segments held in RAM (what the memory budget
  /// caps). Spilled segments keep only their decoded time index resident.
  size_t resident_segment_bytes = 0;
  /// Encoded bytes of spilled segment files on disk.
  size_t spilled_bytes = 0;
  /// RunMaintenance() failures observed by the background thread.
  uint64_t maintenance_errors = 0;
  /// Sealed segments skipped *entirely* by a scan because their
  /// [min_ts, max_ts] range was disjoint from the scan window (Scan /
  /// ScanIf / ScanColumns / pushdown scans) — how much work the
  /// segment-level time index saved.
  uint64_t scan_segments_skipped = 0;
  /// Spilled-segment prefetch counters (zeros when readahead is off).
  ReadaheadStats readahead;
};

/// Append-only, time-partitioned table of historical feature rows: the
/// "offline store" half of the feature store's dual datastore (paper
/// §2.2.2, e.g. a SQL warehouse). Serves full scans for training-set
/// construction and per-entity *as-of* (point-in-time) reads.
///
/// Storage is tiered (PR 6): each partition is a mutable row-oriented head
/// that seals into immutable column-major segments (dictionary strings,
/// delta-packed timestamps, raw fixed-width numerics; checksummed), which
/// background maintenance compacts and — past the memory budget — spills
/// to memory-mapped files so backfills larger than RAM work. Rows keep a
/// stable per-partition ordinal across seal/compact/spill, so the key
/// directory built at append time never needs rewriting. The never-sealed
/// configuration (seal_rows = 0) is exactly the legacy all-in-RAM row
/// engine and serves as the differential-testing oracle.
///
/// Thread-safe: appends and structural changes take an exclusive lock;
/// reads take a shared lock (sealed segments are immutable, so readers
/// never observe a segment mid-build).
class OfflineTable {
 public:
  /// Validates options (columns exist with the required types).
  static StatusOr<std::unique_ptr<OfflineTable>> Create(
      OfflineTableOptions options);

  ~OfflineTable();

  /// Appends one row; rows may arrive in any time order (late data is
  /// supported and lands in the partition of its event time).
  Status Append(const Row& row);

  Status AppendBatch(const std::vector<Row>& rows);

  /// All rows with event time in [lo, hi), in no particular order.
  std::vector<Row> Scan(Timestamp lo = kMinTimestamp,
                        Timestamp hi = kMaxTimestamp) const;

  /// Scans with a row predicate.
  std::vector<Row> ScanIf(Timestamp lo, Timestamp hi,
                          const std::function<bool(const Row&)>& pred) const;

  /// Scans with a compiled predicate pushed down into the columnar tier:
  /// sealed rows evaluate batch-wise directly over segment column buffers
  /// (no Row materialization for rejected rows) and head rows batch
  /// through a row source. Rows whose predicate result is NULL are dropped
  /// (SQL WHERE semantics). The predicate must be compiled against the
  /// table schema with BOOL output.
  StatusOr<std::vector<Row>> ScanIf(Timestamp lo, Timestamp hi,
                                    const CompiledExpr& pred) const;

  /// ScanColumns with predicate pushdown: the predicate runs over full-
  /// schema segment columns first and only surviving rows gather their
  /// projected cells.
  StatusOr<std::vector<Row>> ScanColumns(Timestamp lo, Timestamp hi,
                                         const AsOfReadOptions& options,
                                         const CompiledExpr& pred) const;

  /// Projected scan: materializes only `options.columns` (required), in
  /// rows conforming to `options.projected_schema`. On sealed segments the
  /// unrequested columns are never touched.
  StatusOr<std::vector<Row>> ScanColumns(Timestamp lo, Timestamp hi,
                                         const AsOfReadOptions& options) const;

  /// The most recent row for `entity_key` with event_time <= ts
  /// (point-in-time read). NotFound if the entity has no history at ts.
  StatusOr<Row> AsOf(const Value& entity_key, Timestamp ts) const;

  /// Batched point-in-time reads: the offline half of the training hot
  /// path. `requests` must be sorted ascending by (key, ts); the call
  /// acquires the shared lock **once**, probes the key directory once per
  /// entity, and answers all of an entity's requests with one flat forward
  /// cursor walk. `results[i]` receives the matched row — a head-row copy
  /// or a columnar gather — or is left untouched on a miss: callers either
  /// pass `options.miss_bitmap` or test `results[i].schema() != nullptr`
  /// against default-constructed inputs. Tie-break matches AsOf: for equal
  /// event times the most recently appended row wins. With
  /// `options.columns` set, results conform to `options.projected_schema`
  /// and only those columns are gathered.
  ///
  /// InvalidArgument if `results.size() != requests.size()`, the requests
  /// are not sorted, or the projection is malformed. The
  /// `offline_store.as_of` failpoint is evaluated once per call.
  Status AsOfBatch(std::span<const AsOfRequest> requests,
                   std::span<Row> results,
                   const AsOfReadOptions& options = {}) const;

  /// Latest row per entity as of `ts` — the materialization query that
  /// loads the online store.
  std::vector<Row> LatestPerEntityAsOf(Timestamp ts) const;

  /// Batch materialization read: selects the same rows as
  /// LatestPerEntityAsOf and evaluates `expr` over them vectorized —
  /// segment-resident rows straight over columnar buffers, head rows
  /// through a batched row source — without materializing full-width rows
  /// on the sealed path. Results are in canonical entity-key order (the
  /// order LatestPerEntityAsOf emits). `expr` must be compiled against the
  /// table schema.
  StatusOr<std::vector<MaterializedCell>> EvalLatestPerEntityAsOf(
      Timestamp ts, const CompiledExpr& expr) const;

  /// All distinct entity keys (canonical string form).
  std::vector<std::string> EntityKeys() const;

  // --- Tier maintenance -------------------------------------------------

  /// Seals every partition's non-empty mutable head into a columnar
  /// segment. The `offline_store.seal` failpoint fires once per call.
  Status SealHeads();

  /// Merges every partition with >= 2 sealed segments into one segment per
  /// partition. Runs the merge off the table lock (segments are immutable)
  /// and swaps under the exclusive lock. `offline_store.compact` failpoint.
  Status CompactPartitions();

  /// Spills the coldest resident segments to `spill_dir` until resident
  /// segment bytes fit `memory_budget_bytes` (no-op when unconfigured).
  /// File writes run off the table lock; the resident blob is swapped for
  /// the validated file mapping under the exclusive lock.
  /// `offline_store.spill` failpoint.
  Status EnforceMemoryBudget();

  /// SealHeads (only heads at/above seal_rows) + CompactPartitions (only
  /// partitions at/above compact_min_segments) + EnforceMemoryBudget — the
  /// periodic maintenance step the background thread runs.
  Status RunMaintenance();

  /// Starts a background maintenance thread running RunMaintenance() every
  /// `period_millis`. FailedPrecondition if already running. Errors are
  /// counted in storage_stats().maintenance_errors, never fatal.
  Status StartMaintenance(int64_t period_millis);

  /// Stops and joins the background maintenance thread (idempotent).
  void StopMaintenance();

  OfflineStorageStats storage_stats() const;

  const OfflineTableOptions& options() const { return options_; }
  const std::string& name() const { return options_.name; }
  size_t num_rows() const;
  size_t num_partitions() const;
  /// Event time of the newest row, or kMinTimestamp when empty.
  Timestamp max_event_time() const;

  /// Serializes the table: options (name, key/time columns, granularity),
  /// schema, sealed segments (encoded blobs, checksums and all) and the
  /// mutable heads' rows. Self-contained: FromSnapshot() reconstructs the
  /// table — including its sealed tier — without external metadata.
  std::string Snapshot() const;

  /// Restores from `Snapshot()` output into this (empty) table; the
  /// snapshot's name and schema must match. Understands both the current
  /// segment-carrying format and the legacy row-stream format.
  Status Restore(std::string_view snapshot);

  /// Reconstructs a table (options + data) from `Snapshot()` output.
  static StatusOr<std::unique_ptr<OfflineTable>> FromSnapshot(
      std::string_view snapshot);

 private:
  struct IndexEntry {
    Timestamp ts;
    size_t ordinal;
  };
  /// Transparent hash/eq so batch reads can probe the index with
  /// string_view keys without materializing a std::string per lookup.
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const { return HashBytes(s); }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };
  /// One partition: sealed columnar segments (ordinal ranges
  /// [segment_base[i], segment_base[i] + segments[i]->num_rows())) followed
  /// by the mutable row head at [head_base, head_base + head_rows.size()).
  /// Ordinals are assigned at append time and never change: sealing moves
  /// the head's ordinal range into a segment, compaction concatenates
  /// adjacent segments' ranges, spilling only swaps a segment's backing
  /// store — so index postings survive every tier transition untouched.
  struct Partition {
    std::vector<SegmentPtr> segments;
    std::vector<size_t> segment_base;  // Parallel to `segments`.
    size_t head_base = 0;
    std::vector<Row> head_rows;
    // Per-entity (ts, ordinal) postings, kept sorted by ts at insert time
    // so concurrent readers never need to mutate the index. Equal
    // timestamps keep append order (later appends later), which is what
    // gives as-of reads their most-recently-appended tie-break.
    std::unordered_map<std::string, std::vector<IndexEntry>, KeyHash, KeyEq>
        index;
  };
  /// One row reference in the cross-partition key directory. The Partition
  /// pointer is node-stable (std::map node); the row is addressed by its
  /// stable ordinal (see Partition).
  struct GlobalPosting {
    Timestamp ts;
    size_t ordinal;
    const Partition* part;
  };
  /// A resolved ordinal: either a head row or a (segment, local row) pair.
  struct RowLoc {
    const Row* head = nullptr;
    const Segment* seg = nullptr;
    size_t seg_row = 0;
  };

  explicit OfflineTable(OfflineTableOptions options);

  Status AppendLocked(const Row& row);
  /// Seals `part`'s head into a segment (caller holds the exclusive lock).
  Status SealPartitionLocked(int64_t pid, Partition& part);
  /// Adopts a restored segment as the next ordinal range of its partition
  /// and rebuilds its index postings (caller holds the exclusive lock).
  Status AdoptSegmentLocked(const SegmentPtr& seg);
  Status CompactPartition(int64_t pid);
  /// Merges `captured` — a contiguous run of `pid`'s sealed segments,
  /// captured under the shared lock — into one segment and swaps it in
  /// place. Caller holds maintenance_mu_.
  Status CompactRun(int64_t pid, std::vector<SegmentPtr> captured);
  Status SealHeadsInner(size_t min_rows);
  Status CompactInner(size_t min_segments);
  Status EnforceBudgetInner();
  Status ValidateReadOptions(const AsOfReadOptions& options) const;
  /// Checks `expr` was compiled against this table's schema (and, when
  /// `need_bool`, that it is a predicate).
  Status ValidateCompiled(const CompiledExpr& expr, bool need_bool) const;
  /// Shared engine under both pushdown scans; `proj` is null for
  /// full-width output.
  StatusOr<std::vector<Row>> ScanPushdown(Timestamp lo, Timestamp hi,
                                          const CompiledExpr& pred,
                                          const AsOfReadOptions* proj) const;
  static RowLoc Resolve(const Partition& part, size_t ordinal);
  Row MaterializeRow(const RowLoc& loc) const;
  int64_t PartitionIdFor(Timestamp ts) const;

  OfflineTableOptions options_;
  int entity_idx_ = -1;
  int time_idx_ = -1;
  std::vector<int> all_columns_;  // 0..num_fields-1, for full-width gathers.

  mutable std::shared_mutex mu_;
  // Ordered so as-of reads can walk partitions newest-first.
  std::map<int64_t, Partition> partitions_;
  // Key directory: entity key -> the entity's full posting stream merged
  // across partitions, globally sorted by ts with equal timestamps in
  // append order (the same tie-break the per-partition postings keep).
  // Maintained on append (under the exclusive lock) so AsOfBatch answers a
  // key's whole request run with one hash probe and one flat, sequential
  // cursor walk — no per-partition probing or pointer chasing.
  std::unordered_map<std::string, std::vector<GlobalPosting>, KeyHash, KeyEq>
      key_directory_;
  size_t num_rows_ = 0;
  Timestamp max_event_time_ = kMinTimestamp;

  // EntityKeys() result cache. Keys are only ever added, so the cache is
  // current iff its size matches the key directory's; appends invalidate
  // it implicitly by growing the directory. Guarded by keys_mu_ (acquired
  // after mu_, never the other way around).
  mutable std::mutex keys_mu_;
  mutable std::vector<std::string> keys_cache_;

  /// Sealed segments whose time range let a scan skip them whole.
  mutable std::atomic<uint64_t> scan_segments_skipped_{0};

  // Serializes compaction/spill passes so their off-lock work never
  // targets a segment another maintenance pass is replacing.
  std::mutex maintenance_mu_;
  uint64_t spill_seq_ = 0;  // Guarded by maintenance_mu_.
  std::atomic<uint64_t> maintenance_errors_{0};

  /// Spilled-segment prefetcher for AsOfBatch; always constructed (a
  /// disabled scheduler no-ops), carries its own locks.
  std::unique_ptr<ReadaheadScheduler> readahead_;

  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  std::thread bg_thread_;
  bool bg_stop_ = false;
};

/// Named collection of offline tables.
class OfflineStore {
 public:
  /// Creates a table; AlreadyExists if the name is taken.
  Status CreateTable(OfflineTableOptions options);

  /// Adopts an already-constructed table (e.g. OfflineTable::FromSnapshot).
  Status AdoptTable(std::unique_ptr<OfflineTable> table);

  /// Borrowed pointer valid for the store's lifetime; NotFound if absent.
  StatusOr<OfflineTable*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<OfflineTable>> tables_;
};

}  // namespace mlfs

#endif  // MLFS_STORAGE_OFFLINE_STORE_H_
