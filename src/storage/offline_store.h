#ifndef MLFS_STORAGE_OFFLINE_STORE_H_
#define MLFS_STORAGE_OFFLINE_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/timestamp.h"

namespace mlfs {

/// One point-in-time read in an AsOfBatch call: the *canonical* entity key
/// (EntityKeyToString form) and the as-of timestamp. The key bytes must
/// outlive the call.
struct AsOfRequest {
  std::string_view key;
  Timestamp ts = 0;
};

/// Configuration for one offline (historical) table.
struct OfflineTableOptions {
  std::string name;
  SchemaPtr schema;
  /// Column holding the entity key (INT64 or STRING; non-nullable).
  std::string entity_column;
  /// Column holding the event timestamp (TIMESTAMP; non-nullable).
  std::string time_column;
  /// Rows are grouped into partitions of this width (default: daily), the
  /// standard feature-store layout for time-based joins.
  Timestamp partition_granularity = kMicrosPerDay;
};

/// Append-only, time-partitioned table of historical feature rows: the
/// "offline store" half of the feature store's dual datastore (paper
/// §2.2.2, e.g. a SQL warehouse). Serves full scans for training-set
/// construction and per-entity *as-of* (point-in-time) reads.
///
/// Thread-safe: appends take an exclusive lock; reads take a shared lock.
class OfflineTable {
 public:
  /// Validates options (columns exist with the required types).
  static StatusOr<std::unique_ptr<OfflineTable>> Create(
      OfflineTableOptions options);

  /// Appends one row; rows may arrive in any time order (late data is
  /// supported and lands in the partition of its event time).
  Status Append(const Row& row);

  Status AppendBatch(const std::vector<Row>& rows);

  /// All rows with event time in [lo, hi), in no particular order.
  std::vector<Row> Scan(Timestamp lo = kMinTimestamp,
                        Timestamp hi = kMaxTimestamp) const;

  /// Scans with a row predicate.
  std::vector<Row> ScanIf(Timestamp lo, Timestamp hi,
                          const std::function<bool(const Row&)>& pred) const;

  /// The most recent row for `entity_key` with event_time <= ts
  /// (point-in-time read). NotFound if the entity has no history at ts.
  StatusOr<Row> AsOf(const Value& entity_key, Timestamp ts) const;

  /// Batched point-in-time reads: the offline half of the training hot
  /// path. `requests` must be sorted ascending by (key, ts); the call
  /// acquires the shared lock **once**, walks each entity's per-partition
  /// postings with a single forward merged cursor (partitions cover
  /// disjoint time ranges, so the merged stream is their concatenation in
  /// partition order), and answers all of an entity's requests in one
  /// pass. `results[i]` receives the matched row for `requests[i]`, or is
  /// left a default (schema-less) Row when no history qualifies — callers
  /// test `results[i].schema() != nullptr`. Tie-break matches AsOf: for
  /// equal event times the most recently appended row wins.
  ///
  /// InvalidArgument if `results.size() != requests.size()` or the
  /// requests are not sorted. The `offline_store.as_of` failpoint is
  /// evaluated once per call; unlike the per-row path (whose callers have
  /// historically NULL-filled on error), a batch failure is surfaced to
  /// the caller.
  Status AsOfBatch(std::span<const AsOfRequest> requests,
                   std::span<Row> results) const;

  /// Latest row per entity as of `ts` — the materialization query that
  /// loads the online store.
  std::vector<Row> LatestPerEntityAsOf(Timestamp ts) const;

  /// All distinct entity keys (canonical string form).
  std::vector<std::string> EntityKeys() const;

  const OfflineTableOptions& options() const { return options_; }
  const std::string& name() const { return options_.name; }
  size_t num_rows() const;
  size_t num_partitions() const;
  /// Event time of the newest row, or kMinTimestamp when empty.
  Timestamp max_event_time() const;

  /// Serializes the table: options (name, key/time columns, granularity),
  /// schema, and all rows. Self-contained: FromSnapshot() reconstructs the
  /// table without external metadata.
  std::string Snapshot() const;

  /// Restores rows from `Snapshot()` output into this (empty) table; the
  /// snapshot's name and schema must match.
  Status Restore(std::string_view snapshot);

  /// Reconstructs a table (options + data) from `Snapshot()` output.
  static StatusOr<std::unique_ptr<OfflineTable>> FromSnapshot(
      std::string_view snapshot);

 private:
  struct IndexEntry {
    Timestamp ts;
    size_t row_index;
  };
  /// Transparent hash/eq so batch reads can probe the index with
  /// string_view keys without materializing a std::string per lookup.
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const { return HashBytes(s); }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };
  struct Partition {
    std::vector<Row> rows;
    // Per-entity (ts, row) postings, kept sorted by ts at insert time so
    // concurrent readers never need to mutate the index. Equal timestamps
    // keep append order (later appends later), which is what gives as-of
    // reads their most-recently-appended tie-break.
    std::unordered_map<std::string, std::vector<IndexEntry>, KeyHash, KeyEq>
        index;
  };
  /// One row reference in the cross-partition key directory. The Partition
  /// pointer is node-stable (std::map node); the row is addressed by index
  /// because Partition::rows reallocates as it grows.
  struct GlobalPosting {
    Timestamp ts;
    size_t row_index;
    const Partition* part;
  };

  explicit OfflineTable(OfflineTableOptions options);

  Status AppendLocked(const Row& row);
  int64_t PartitionIdFor(Timestamp ts) const;

  OfflineTableOptions options_;
  int entity_idx_ = -1;
  int time_idx_ = -1;

  mutable std::shared_mutex mu_;
  // Ordered so as-of reads can walk partitions newest-first.
  std::map<int64_t, Partition> partitions_;
  // Key directory: entity key -> the entity's full posting stream merged
  // across partitions, globally sorted by ts with equal timestamps in
  // append order (the same tie-break the per-partition postings keep).
  // Maintained on append (under the exclusive lock) so AsOfBatch answers a
  // key's whole request run with one hash probe and one flat, sequential
  // cursor walk — no per-partition probing or pointer chasing.
  std::unordered_map<std::string, std::vector<GlobalPosting>, KeyHash, KeyEq>
      key_directory_;
  size_t num_rows_ = 0;
  Timestamp max_event_time_ = kMinTimestamp;
};

/// Named collection of offline tables.
class OfflineStore {
 public:
  /// Creates a table; AlreadyExists if the name is taken.
  Status CreateTable(OfflineTableOptions options);

  /// Adopts an already-constructed table (e.g. OfflineTable::FromSnapshot).
  Status AdoptTable(std::unique_ptr<OfflineTable> table);

  /// Borrowed pointer valid for the store's lifetime; NotFound if absent.
  StatusOr<OfflineTable*> GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<OfflineTable>> tables_;
};

}  // namespace mlfs

#endif  // MLFS_STORAGE_OFFLINE_STORE_H_
