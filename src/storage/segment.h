#ifndef MLFS_STORAGE_SEGMENT_H_
#define MLFS_STORAGE_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "io/block_file.h"

namespace mlfs {

class ColumnVector;

/// Per-column encoding inside a sealed segment. The encoding is chosen from
/// the schema field type at seal time; every encoding supports O(1) random
/// access directly on the encoded bytes (so a memory-mapped spilled segment
/// is readable without decompression) except kDeltaTimestamp, whose varint
/// stream is decoded once at open into a resident time index.
enum class ColumnEncoding : uint8_t {
  /// Schema type kNull: the column carries no data (every cell is NULL).
  kNullOnly = 0,
  /// INT64 / DOUBLE: raw little-endian 8-byte values (bit patterns for
  /// doubles, so the round-trip is bit-exact).
  kRaw64 = 1,
  /// BOOL: one byte per row (0/1).
  kBool = 2,
  /// TIMESTAMP: zigzag-varint deltas from the previous row's value.
  kDeltaTimestamp = 3,
  /// STRING: dictionary of distinct strings (first-appearance order) with
  /// fixed-width u32 codes per row.
  kDictionary = 4,
  /// EMBEDDING: u64 float-offset fences plus a flat float blob.
  kFloatList = 5,
};

/// An immutable, checksummed, column-major block of rows sealed out of an
/// OfflineTable partition's mutable head — the unit of the offline store's
/// tiered storage. A segment's encoded bytes are self-contained (schema,
/// partition id, column index hints, per-column and whole-body checksums)
/// and live either resident in RAM or spilled as a memory-mapped file; the
/// read path is identical in both tiers.
///
/// Blob layout: the shared BlockFile envelope
///   [u32 magic][u32 version][u64 body_len][body][u64 body_hash]
/// Body: header (partition id, entity/time column indices, schema, row
/// count, min/max event time, per-column {encoding, hash, length}) followed
/// by the concatenated column buffers. Every column buffer starts with a
/// has-nulls byte and an optional null bitmap.
///
/// FromBytes/FromFile validate *everything* up front — the envelope
/// (magic, length, body hash) through io/block_file, then per-column
/// hashes and every structural invariant (offset fences, dictionary code
/// ranges, varint stream termination) — so cell accessors can run without
/// per-access bounds checks and a truncated or bit-flipped blob surfaces
/// as a Status error, never UB.
class Segment {
 public:
  /// Encodes `rows` (all conforming to `schema`, all in partition
  /// `partition_id`) into a self-contained blob. Row order is preserved:
  /// row i of the segment is rows[i], which is what keeps the offline
  /// store's append-order tie-break stable across seals and compactions.
  static StatusOr<std::string> Encode(const SchemaPtr& schema,
                                      int64_t partition_id, int entity_idx,
                                      int time_idx, std::span<const Row> rows);

  /// Parses and validates a blob held in RAM (the resident tier).
  static StatusOr<std::shared_ptr<const Segment>> FromBytes(std::string bytes);

  /// Memory-maps and validates a segment file (the spilled tier). When
  /// `remove_file_on_destroy` is set the file is deleted when the last
  /// reference to the segment drops (spill files are scratch, not
  /// checkpoints). The `segment.open` failpoint fires before the map.
  static StatusOr<std::shared_ptr<const Segment>> FromFile(
      std::string path, bool remove_file_on_destroy);

  /// Writes `seg`'s encoded blob to `path` (atomic write + mmap reopen
  /// via BlockFile::Spill) and returns the file-backed twin serving the
  /// same bytes. On failure no file is left behind and `seg` is
  /// untouched — the caller simply keeps the resident segment.
  static StatusOr<std::shared_ptr<const Segment>> SpillToFile(
      const Segment& seg, std::string path, bool remove_file_on_destroy);

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  size_t num_rows() const { return num_rows_; }
  const SchemaPtr& schema() const { return schema_; }
  int64_t partition_id() const { return partition_id_; }
  int entity_idx() const { return entity_idx_; }
  int time_idx() const { return time_idx_; }
  Timestamp min_ts() const { return min_ts_; }
  Timestamp max_ts() const { return max_ts_; }
  bool spilled() const { return file_->mapped(); }
  const std::string& path() const { return file_->path(); }

  /// The full encoded blob (resident buffer or file mapping) — what a
  /// spill writes to disk and what a table snapshot embeds.
  std::string_view encoded() const { return data_; }
  size_t encoded_size() const { return data_.size(); }

  /// Approximate RAM held by this segment: the encoded blob when resident,
  /// plus the decoded time index (kept resident even when spilled — it is
  /// the column every scan bound and as-of probe touches).
  size_t resident_bytes() const;

  /// Event time of `row` (decoded time index; O(1)).
  Timestamp ts(size_t row) const { return delta_cols_[time_idx_][row]; }

  bool is_null(size_t col, size_t row) const;

  /// Materializes one cell.
  Value value(size_t col, size_t row) const;

  /// Appends the cells of `row` for each column in `cols` (in order) to
  /// `out` — the projected gather primitive under AsOfBatch/ScanColumns.
  void AppendProjected(size_t row, std::span<const int> cols,
                       std::vector<Value>* out) const;

  /// Gathers column `col` of the listed rows into `out` (including its
  /// Reset) straight off the encoded column buffers — no per-cell Value is
  /// materialized. This is the batch-load primitive behind vectorized
  /// predicate pushdown and batch materialization (expr/column_batch.h).
  void LoadColumn(size_t col, std::span<const uint32_t> rows,
                  ColumnVector* out) const;

  /// Readahead hook: asks the kernel for the spilled file's pages
  /// (madvise WILLNEED) and faults them in — run off the serving thread
  /// one segment ahead of the gather cursor. No-op when resident.
  void PrefetchSpill() const {
    if (!file_->mapped()) return;
    file_->AdviseWillNeed(0, file_->size());
    file_->TouchPages(0, file_->size());
  }

 private:
  struct Column {
    ColumnEncoding enc = ColumnEncoding::kNullOnly;
    const unsigned char* nulls = nullptr;  // Bitmap, or null when no nulls.
    const unsigned char* data = nullptr;   // Encoding-specific section.
    size_t data_len = 0;
    // kDictionary pieces.
    uint32_t dict_count = 0;
    const unsigned char* codes = nullptr;
    const unsigned char* dict_offsets = nullptr;  // dict_count + 1 u32s.
    const unsigned char* dict_blob = nullptr;
    // kFloatList pieces.
    const unsigned char* fences = nullptr;  // num_rows + 1 u64s.
    const unsigned char* floats = nullptr;
  };

  Segment() = default;

  /// Wraps an envelope-validated BlockFile in a parsed segment.
  static StatusOr<std::shared_ptr<const Segment>> FromBlockFile(
      BlockFilePtr file);

  /// Parses the body of `file_` (set by the factories), filling every
  /// member and validating all invariants.
  Status Parse();

  bool NullBit(const Column& c, size_t row) const {
    return c.nulls != nullptr && (c.nulls[row >> 3] >> (row & 7)) & 1;
  }

  // Backing storage (resident blob or validated file mapping); data_
  // views the full envelope.
  BlockFilePtr file_;
  std::string_view data_;

  SchemaPtr schema_;
  int64_t partition_id_ = 0;
  int entity_idx_ = -1;
  int time_idx_ = -1;
  size_t num_rows_ = 0;
  Timestamp min_ts_ = kMinTimestamp;
  Timestamp max_ts_ = kMinTimestamp;
  std::vector<Column> cols_;
  // Decoded values for kDeltaTimestamp columns (empty for other columns).
  std::vector<std::vector<Timestamp>> delta_cols_;
};

using SegmentPtr = std::shared_ptr<const Segment>;

}  // namespace mlfs

#endif  // MLFS_STORAGE_SEGMENT_H_
