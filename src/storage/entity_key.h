#ifndef MLFS_STORAGE_ENTITY_KEY_H_
#define MLFS_STORAGE_ENTITY_KEY_H_

#include <string>

#include "common/status.h"
#include "common/value.h"

namespace mlfs {

/// Canonical string form of an entity key value. Entity keys may be INT64
/// or STRING columns; both stores index by this canonical form so that the
/// same entity resolves identically online and offline.
inline StatusOr<std::string> EntityKeyToString(const Value& v) {
  switch (v.type()) {
    case FeatureType::kInt64:
      return std::to_string(v.int64_value());
    case FeatureType::kString:
      return v.string_value();
    default:
      return Status::InvalidArgument(
          "entity key must be INT64 or STRING, got " +
          std::string(FeatureTypeToString(v.type())));
  }
}

}  // namespace mlfs

#endif  // MLFS_STORAGE_ENTITY_KEY_H_
