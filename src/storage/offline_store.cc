#include "storage/offline_store.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <utility>

#include "common/failpoint.h"
#include "common/serde.h"
#include "storage/entity_key.h"
#include "storage/persistence.h"
#include "storage/segment_batch.h"

namespace mlfs {

namespace {
/// Rows per vectorized predicate/materialization batch. Large enough to
/// amortize the per-batch dispatch, small enough that every register of a
/// typical program stays cache-resident.
constexpr size_t kEvalBatchRows = 1024;
}  // namespace

OfflineTable::OfflineTable(OfflineTableOptions options)
    : options_(std::move(options)) {
  entity_idx_ = options_.schema->FieldIndex(options_.entity_column);
  time_idx_ = options_.schema->FieldIndex(options_.time_column);
  all_columns_.resize(options_.schema->num_fields());
  for (size_t i = 0; i < all_columns_.size(); ++i) {
    all_columns_[i] = static_cast<int>(i);
  }
  readahead_ = std::make_unique<ReadaheadScheduler>(options_.readahead);
}

OfflineTable::~OfflineTable() { StopMaintenance(); }

StatusOr<std::unique_ptr<OfflineTable>> OfflineTable::Create(
    OfflineTableOptions options) {
  if (options.name.empty()) {
    return Status::InvalidArgument("offline table needs a name");
  }
  if (options.schema == nullptr) {
    return Status::InvalidArgument("offline table needs a schema");
  }
  if (options.partition_granularity <= 0) {
    return Status::InvalidArgument("partition granularity must be positive");
  }
  int eidx = options.schema->FieldIndex(options.entity_column);
  if (eidx < 0) {
    return Status::InvalidArgument("entity column '" + options.entity_column +
                                   "' not in schema");
  }
  const FieldSpec& efield = options.schema->field(eidx);
  if (efield.type != FeatureType::kInt64 &&
      efield.type != FeatureType::kString) {
    return Status::InvalidArgument("entity column must be INT64 or STRING");
  }
  if (efield.nullable) {
    return Status::InvalidArgument("entity column must be NOT NULL");
  }
  int tidx = options.schema->FieldIndex(options.time_column);
  if (tidx < 0) {
    return Status::InvalidArgument("time column '" + options.time_column +
                                   "' not in schema");
  }
  const FieldSpec& tfield = options.schema->field(tidx);
  if (tfield.type != FeatureType::kTimestamp || tfield.nullable) {
    return Status::InvalidArgument(
        "time column must be TIMESTAMP NOT NULL");
  }
  if (options.memory_budget_bytes > 0 && options.spill_dir.empty()) {
    return Status::InvalidArgument(
        "memory_budget_bytes requires a spill_dir");
  }
  return std::unique_ptr<OfflineTable>(new OfflineTable(std::move(options)));
}

int64_t OfflineTable::PartitionIdFor(Timestamp ts) const {
  // Floor division so negative timestamps partition correctly.
  int64_t g = options_.partition_granularity;
  int64_t q = ts / g;
  if (ts % g != 0 && ts < 0) --q;
  return q;
}

OfflineTable::RowLoc OfflineTable::Resolve(const Partition& part,
                                           size_t ordinal) {
  RowLoc loc;
  if (ordinal >= part.head_base) {
    loc.head = &part.head_rows[ordinal - part.head_base];
    return loc;
  }
  // Rightmost segment whose base is <= ordinal.
  auto it = std::upper_bound(part.segment_base.begin(),
                             part.segment_base.end(), ordinal);
  size_t si = static_cast<size_t>(it - part.segment_base.begin()) - 1;
  loc.seg = part.segments[si].get();
  loc.seg_row = ordinal - part.segment_base[si];
  return loc;
}

Row OfflineTable::MaterializeRow(const RowLoc& loc) const {
  if (loc.head != nullptr) return *loc.head;
  std::vector<Value> values;
  values.reserve(all_columns_.size());
  loc.seg->AppendProjected(loc.seg_row, all_columns_, &values);
  return Row::CreateUnsafe(options_.schema, std::move(values));
}

Status OfflineTable::SealPartitionLocked(int64_t pid, Partition& part) {
  if (part.head_rows.empty()) return Status::OK();
  MLFS_ASSIGN_OR_RETURN(
      std::string blob,
      Segment::Encode(options_.schema, pid, entity_idx_, time_idx_,
                      std::span<const Row>(part.head_rows)));
  MLFS_ASSIGN_OR_RETURN(SegmentPtr seg, Segment::FromBytes(std::move(blob)));
  // The head's ordinal range [head_base, head_base + n) moves into the
  // segment verbatim; no index entry changes.
  part.segments.push_back(std::move(seg));
  part.segment_base.push_back(part.head_base);
  part.head_base += part.head_rows.size();
  part.head_rows.clear();
  return Status::OK();
}

Status OfflineTable::AppendLocked(const Row& row) {
  if (row.schema() == nullptr || !(*row.schema() == *options_.schema)) {
    return Status::InvalidArgument("row schema does not match table '" +
                                   options_.name + "'");
  }
  const Value& evalue = row.value(entity_idx_);
  MLFS_ASSIGN_OR_RETURN(std::string key, EntityKeyToString(evalue));
  const Value& tvalue = row.value(time_idx_);
  if (tvalue.is_null()) {
    return Status::InvalidArgument("event time is null");
  }
  Timestamp ts = tvalue.time_value();
  const int64_t pid = PartitionIdFor(ts);
  Partition& part = partitions_[pid];
  const size_t ordinal = part.head_base + part.head_rows.size();
  part.head_rows.push_back(row);
  auto& postings = part.index[key];
  // Insert in ts order (stable for equal timestamps: later insert wins by
  // being placed after, so as-of picks the most recently appended row).
  auto pos = std::upper_bound(
      postings.begin(), postings.end(), ts,
      [](Timestamp t, const IndexEntry& e) { return t < e.ts; });
  postings.insert(pos, IndexEntry{ts, ordinal});
  // Mirror the insert into the key directory's merged stream. upper_bound
  // places equal timestamps after existing ones — the same
  // most-recently-appended tie-break as the per-partition postings — and
  // partitions cover disjoint time ranges, so ts order alone keeps the
  // merged stream consistent with a partition-ordered walk.
  std::vector<GlobalPosting>& merged = key_directory_[key];
  auto gpos = std::upper_bound(
      merged.begin(), merged.end(), ts,
      [](Timestamp t, const GlobalPosting& g) { return t < g.ts; });
  merged.insert(gpos, GlobalPosting{ts, ordinal, &part});
  ++num_rows_;
  max_event_time_ = std::max(max_event_time_, ts);
  // Auto-seal a full head under the same exclusive lock. No failpoint
  // here: the row is already appended and indexed, so fault injection on
  // the seal path belongs to the explicit maintenance entry points.
  if (options_.seal_rows > 0 && part.head_rows.size() >= options_.seal_rows) {
    MLFS_RETURN_IF_ERROR(SealPartitionLocked(pid, part));
  }
  return Status::OK();
}

Status OfflineTable::Append(const Row& row) {
  MLFS_FAILPOINT("offline_store.append");
  std::unique_lock lock(mu_);
  return AppendLocked(row);
}

Status OfflineTable::AppendBatch(const std::vector<Row>& rows) {
  MLFS_FAILPOINT("offline_store.append");
  std::unique_lock lock(mu_);
  for (const Row& row : rows) {
    MLFS_RETURN_IF_ERROR(AppendLocked(row));
  }
  return Status::OK();
}

std::vector<Row> OfflineTable::Scan(Timestamp lo, Timestamp hi) const {
  return ScanIf(lo, hi, nullptr);
}

std::vector<Row> OfflineTable::ScanIf(
    Timestamp lo, Timestamp hi,
    const std::function<bool(const Row&)>& pred) const {
  std::shared_lock lock(mu_);
  std::vector<Row> out;
  if (lo >= hi) return out;
  // Partitions wholly outside [lo, hi) are skipped without touching rows.
  const int64_t lo_part =
      (lo == kMinTimestamp) ? INT64_MIN : PartitionIdFor(lo);
  const int64_t hi_part =
      (hi == kMaxTimestamp) ? INT64_MAX : PartitionIdFor(hi);
  for (auto it = partitions_.lower_bound(lo_part); it != partitions_.end();
       ++it) {
    if (it->first > hi_part) break;
    const Partition& part = it->second;
    // Segments then head is exactly per-partition append order, which is
    // the order the legacy row engine scanned — scans stay byte-identical.
    for (const SegmentPtr& seg : part.segments) {
      if (seg->max_ts() < lo || seg->min_ts() >= hi) {
        scan_segments_skipped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // A segment fully inside the window needs no per-row time checks.
      const bool contained = seg->min_ts() >= lo && seg->max_ts() < hi;
      for (size_t r = 0; r < seg->num_rows(); ++r) {
        if (!contained) {
          Timestamp ts = seg->ts(r);
          if (ts < lo || ts >= hi) continue;
        }
        Row row = MaterializeRow(RowLoc{nullptr, seg.get(), r});
        if (pred && !pred(row)) continue;
        out.push_back(std::move(row));
      }
    }
    for (const Row& row : part.head_rows) {
      Timestamp ts = row.value(time_idx_).time_value();
      if (ts < lo || ts >= hi) continue;
      if (pred && !pred(row)) continue;
      out.push_back(row);
    }
  }
  return out;
}

Status OfflineTable::ValidateCompiled(const CompiledExpr& expr,
                                      bool need_bool) const {
  if (expr.schema() == nullptr || !(*expr.schema() == *options_.schema)) {
    return Status::InvalidArgument(
        "expression was not compiled against table '" + options_.name + "'");
  }
  if (need_bool && expr.output_type() != FeatureType::kBool &&
      expr.output_type() != FeatureType::kNull) {
    return Status::InvalidArgument("scan predicate must be BOOL, got " +
                                   std::string(FeatureTypeToString(
                                       expr.output_type())));
  }
  return Status::OK();
}

StatusOr<std::vector<Row>> OfflineTable::ScanPushdown(
    Timestamp lo, Timestamp hi, const CompiledExpr& pred,
    const AsOfReadOptions* proj) const {
  MLFS_RETURN_IF_ERROR(ValidateCompiled(pred, /*need_bool=*/true));
  if (proj != nullptr) {
    if (proj->columns.empty()) {
      return Status::InvalidArgument("ScanColumns requires a projection");
    }
    MLFS_RETURN_IF_ERROR(ValidateReadOptions(*proj));
  }
  std::shared_lock lock(mu_);
  std::vector<Row> out;
  if (lo >= hi) return out;
  const int64_t lo_part =
      (lo == kMinTimestamp) ? INT64_MIN : PartitionIdFor(lo);
  const int64_t hi_part =
      (hi == kMaxTimestamp) ? INT64_MAX : PartitionIdFor(hi);
  ExprScratch scratch;
  const ColumnVector* res = nullptr;
  std::vector<Value> values;
  // Sealed path: candidate row ids (time-filtered) accumulate per segment
  // and evaluate in kEvalBatchRows chunks directly over the segment's
  // column buffers; only surviving rows materialize cells.
  std::vector<uint32_t> cand;
  cand.reserve(kEvalBatchRows);
  auto flush_segment = [&](const Segment* seg) -> Status {
    if (cand.empty()) return Status::OK();
    SegmentBatchSource src(seg, cand);
    MLFS_RETURN_IF_ERROR(pred.EvalBatch(src, &scratch, &res));
    for (size_t i = 0; i < cand.size(); ++i) {
      if (res->TriBool(i) != 1) continue;  // false and NULL both drop.
      values.clear();
      seg->AppendProjected(
          cand[i], proj != nullptr ? proj->columns : std::span<const int>(all_columns_),
          &values);
      out.push_back(Row::CreateUnsafe(
          proj != nullptr ? proj->projected_schema : options_.schema, values));
    }
    cand.clear();
    return Status::OK();
  };
  // Head path: surviving head rows either copy whole (full width) or
  // gather their projected cells.
  std::vector<const Row*> head_cand;
  head_cand.reserve(kEvalBatchRows);
  auto flush_head = [&]() -> Status {
    if (head_cand.empty()) return Status::OK();
    RowPtrBatchSource src(options_.schema, head_cand);
    MLFS_RETURN_IF_ERROR(pred.EvalBatch(src, &scratch, &res));
    for (size_t i = 0; i < head_cand.size(); ++i) {
      if (res->TriBool(i) != 1) continue;
      if (proj == nullptr) {
        out.push_back(*head_cand[i]);
        continue;
      }
      values.clear();
      for (int col : proj->columns) values.push_back(head_cand[i]->value(col));
      out.push_back(Row::CreateUnsafe(proj->projected_schema, values));
    }
    head_cand.clear();
    return Status::OK();
  };
  for (auto it = partitions_.lower_bound(lo_part); it != partitions_.end();
       ++it) {
    if (it->first > hi_part) break;
    const Partition& part = it->second;
    for (const SegmentPtr& seg : part.segments) {
      if (seg->max_ts() < lo || seg->min_ts() >= hi) {
        scan_segments_skipped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // Full containment: every row is a candidate, so skip the per-row
      // timestamp decode entirely.
      const bool contained = seg->min_ts() >= lo && seg->max_ts() < hi;
      for (size_t r = 0; r < seg->num_rows(); ++r) {
        if (!contained) {
          Timestamp ts = seg->ts(r);
          if (ts < lo || ts >= hi) continue;
        }
        cand.push_back(static_cast<uint32_t>(r));
        if (cand.size() == kEvalBatchRows) {
          MLFS_RETURN_IF_ERROR(flush_segment(seg.get()));
        }
      }
      MLFS_RETURN_IF_ERROR(flush_segment(seg.get()));
    }
    for (const Row& row : part.head_rows) {
      Timestamp ts = row.value(time_idx_).time_value();
      if (ts < lo || ts >= hi) continue;
      head_cand.push_back(&row);
      if (head_cand.size() == kEvalBatchRows) {
        MLFS_RETURN_IF_ERROR(flush_head());
      }
    }
    MLFS_RETURN_IF_ERROR(flush_head());
  }
  return out;
}

StatusOr<std::vector<Row>> OfflineTable::ScanIf(Timestamp lo, Timestamp hi,
                                                const CompiledExpr& pred) const {
  return ScanPushdown(lo, hi, pred, nullptr);
}

StatusOr<std::vector<Row>> OfflineTable::ScanColumns(
    Timestamp lo, Timestamp hi, const AsOfReadOptions& options,
    const CompiledExpr& pred) const {
  return ScanPushdown(lo, hi, pred, &options);
}

Status OfflineTable::ValidateReadOptions(
    const AsOfReadOptions& options) const {
  if (options.columns.empty()) {
    if (options.projected_schema != nullptr) {
      return Status::InvalidArgument(
          "projected_schema set without a column projection");
    }
    return Status::OK();
  }
  if (options.projected_schema == nullptr) {
    return Status::InvalidArgument(
        "column projection requires projected_schema");
  }
  if (options.projected_schema->num_fields() != options.columns.size()) {
    return Status::InvalidArgument(
        "projected_schema width does not match projection");
  }
  for (size_t i = 0; i < options.columns.size(); ++i) {
    int col = options.columns[i];
    if (col < 0 || static_cast<size_t>(col) >= options_.schema->num_fields()) {
      return Status::InvalidArgument("projection column index out of range");
    }
    const FieldSpec& src = options_.schema->field(col);
    const FieldSpec& dst = options.projected_schema->field(i);
    if (src.type != dst.type) {
      return Status::InvalidArgument("projection type mismatch for column '" +
                                     src.name + "'");
    }
    if (src.nullable && !dst.nullable) {
      return Status::InvalidArgument(
          "projection drops nullability of column '" + src.name + "'");
    }
  }
  return Status::OK();
}

StatusOr<std::vector<Row>> OfflineTable::ScanColumns(
    Timestamp lo, Timestamp hi, const AsOfReadOptions& options) const {
  if (options.columns.empty()) {
    return Status::InvalidArgument("ScanColumns requires a projection");
  }
  MLFS_RETURN_IF_ERROR(ValidateReadOptions(options));
  std::shared_lock lock(mu_);
  std::vector<Row> out;
  if (lo >= hi) return out;
  const int64_t lo_part =
      (lo == kMinTimestamp) ? INT64_MIN : PartitionIdFor(lo);
  const int64_t hi_part =
      (hi == kMaxTimestamp) ? INT64_MAX : PartitionIdFor(hi);
  std::vector<Value> values;
  for (auto it = partitions_.lower_bound(lo_part); it != partitions_.end();
       ++it) {
    if (it->first > hi_part) break;
    const Partition& part = it->second;
    for (const SegmentPtr& seg : part.segments) {
      if (seg->max_ts() < lo || seg->min_ts() >= hi) {
        scan_segments_skipped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const bool contained = seg->min_ts() >= lo && seg->max_ts() < hi;
      for (size_t r = 0; r < seg->num_rows(); ++r) {
        if (!contained) {
          Timestamp ts = seg->ts(r);
          if (ts < lo || ts >= hi) continue;
        }
        values.clear();
        // Columnar fast path: only the projected columns are decoded;
        // unrequested columns are never touched.
        seg->AppendProjected(r, options.columns, &values);
        out.push_back(Row::CreateUnsafe(options.projected_schema, values));
      }
    }
    for (const Row& row : part.head_rows) {
      Timestamp ts = row.value(time_idx_).time_value();
      if (ts < lo || ts >= hi) continue;
      values.clear();
      for (int col : options.columns) values.push_back(row.value(col));
      out.push_back(Row::CreateUnsafe(options.projected_schema, values));
    }
  }
  return out;
}

StatusOr<Row> OfflineTable::AsOf(const Value& entity_key, Timestamp ts) const {
  MLFS_FAILPOINT("offline_store.as_of");
  MLFS_ASSIGN_OR_RETURN(std::string key, EntityKeyToString(entity_key));
  std::shared_lock lock(mu_);
  auto dit = key_directory_.find(key);
  if (dit != key_directory_.end()) {
    const std::vector<GlobalPosting>& merged = dit->second;
    // Rightmost posting with posting.ts <= ts: max event time, with the
    // most-recently-appended row winning equal-timestamp ties.
    auto bit = std::upper_bound(
        merged.begin(), merged.end(), ts,
        [](Timestamp t, const GlobalPosting& g) { return t < g.ts; });
    if (bit != merged.begin()) {
      --bit;
      return MaterializeRow(Resolve(*bit->part, bit->ordinal));
    }
  }
  return Status::NotFound("no row for entity '" + key + "' as of " +
                          FormatTimestamp(ts));
}

Status OfflineTable::AsOfBatch(std::span<const AsOfRequest> requests,
                               std::span<Row> results,
                               const AsOfReadOptions& options) const {
  MLFS_FAILPOINT("offline_store.as_of");
  if (results.size() != requests.size()) {
    return Status::InvalidArgument("AsOfBatch results/requests size mismatch");
  }
  MLFS_RETURN_IF_ERROR(ValidateReadOptions(options));
  for (size_t i = 1; i < requests.size(); ++i) {
    const AsOfRequest& prev = requests[i - 1];
    const AsOfRequest& cur = requests[i];
    if (cur.key < prev.key ||
        (cur.key == prev.key && cur.ts < prev.ts)) {
      return Status::InvalidArgument(
          "AsOfBatch requests must be sorted by (key, ts)");
    }
  }
  const size_t n = requests.size();
  if (options.miss_bitmap != nullptr) {
    options.miss_bitmap->assign((n + 63) / 64, 0);
  }
  std::shared_lock lock(mu_);
  // Pass 1: resolve every request to its matched posting (or null). The
  // key directory holds each entity's merged posting stream already sorted
  // by ts: one hash probe per *entity*, then one flat forward cursor
  // answers the entity's whole ascending request run. Postings and row
  // storage stay stable for the duration of the shared lock (appends and
  // maintenance are excluded), so they can be dereferenced in pass 2.
  std::vector<const GlobalPosting*> hits(n, nullptr);
  size_t i = 0;
  while (i < n) {
    const std::string_view key = requests[i].key;
    size_t run_end = i + 1;
    while (run_end < n && requests[run_end].key == key) ++run_end;
    auto dit = key_directory_.find(key);
    if (dit == key_directory_.end()) {
      i = run_end;  // Absent entity: every request in the run misses.
      continue;
    }
    const std::vector<GlobalPosting>& postings = dit->second;
    const size_t num_postings = postings.size();
    size_t pos = 0;
    for (; i < run_end; ++i) {
      const Timestamp ts = requests[i].ts;
      if (options.prune_time_ranges) {
        // Time-range pruning: the remaining postings are ts-sorted, so a
        // binary search from the cursor lands directly past the last
        // matchable posting — every row reference whose timestamp range
        // cannot contain the request is skipped, never visited. Selects
        // exactly the posting the linear walk below selects.
        pos = static_cast<size_t>(
            std::upper_bound(postings.begin() + pos, postings.end(), ts,
                             [](Timestamp t, const GlobalPosting& g) {
                               return t < g.ts;
                             }) -
            postings.begin());
      } else {
        while (pos < num_postings && postings[pos].ts <= ts) ++pos;
      }
      if (pos > 0) {
        // Rightmost posting with ts <= request: max event time, with the
        // most-recently-appended row winning equal-timestamp ties.
        hits[i] = &postings[pos - 1];
      }
    }
  }
  // Pass 2: materialize. Misses only mark the bitmap — results[i] is left
  // untouched, no empty row is built. Segment hits (and projected head
  // hits) gather the requested cells; full-width head hits are deferred to
  // the prefetch-pipelined copy loop below, which is the hot shape on the
  // training path (fresh rows still in the mutable head).
  const bool projected = !options.columns.empty();
  std::vector<const Row*> head_hits(n, nullptr);
  std::vector<Value> values;
  // Readahead plan: the gather below touches spilled segments in a
  // deterministic first-touch order, so warm upcoming segments' pages
  // (madvise + touch, off-thread) while the cursor works the current one.
  // Keys are segment addresses — stable for the duration of the shared
  // lock. ra_order[0] is being read immediately, so prefetching starts at
  // ra_order[1]; options.readahead_depth segments are kept in flight
  // ahead of the cursor.
  std::vector<const Segment*> ra_order;
  size_t ra_next = 1;
  size_t ra_issued = 1;
  const size_t ra_depth = std::max<size_t>(1, options.readahead_depth);
  auto issue_prefetches_until = [&](size_t end) {
    for (end = std::min(end, ra_order.size()); ra_issued < end; ++ra_issued) {
      const Segment* next = ra_order[ra_issued];
      readahead_->Prefetch(
          reinterpret_cast<uintptr_t>(next),
          [next]() -> ReadaheadScheduler::Payload {
            next->PrefetchSpill();
            return nullptr;  // Page warming: nothing to park.
          });
    }
  };
  if (readahead_->enabled()) {
    for (i = 0; i < n; ++i) {
      if (hits[i] == nullptr) continue;
      RowLoc loc = Resolve(*hits[i]->part, hits[i]->ordinal);
      if (loc.seg != nullptr && loc.seg->spilled() &&
          (ra_order.empty() || ra_order.back() != loc.seg) &&
          std::find(ra_order.begin(), ra_order.end(), loc.seg) ==
              ra_order.end()) {
        ra_order.push_back(loc.seg);
      }
    }
    issue_prefetches_until(1 + ra_depth);
  }
  for (i = 0; i < n; ++i) {
    const GlobalPosting* g = hits[i];
    if (g == nullptr) {
      if (options.miss_bitmap != nullptr) {
        (*options.miss_bitmap)[i >> 6] |= uint64_t{1} << (i & 63);
      }
      continue;
    }
    RowLoc loc = Resolve(*g->part, g->ordinal);
    // First touch of the next planned segment: claim its prefetch (hit
    // accounting; pages are warm or warming) and top the pipeline back up
    // to `ra_depth` segments in flight ahead of the cursor.
    if (ra_next < ra_order.size() && loc.seg == ra_order[ra_next]) {
      readahead_->Consume(reinterpret_cast<uintptr_t>(loc.seg));
      ++ra_next;
      issue_prefetches_until(ra_next + ra_depth);
    }
    if (loc.head != nullptr && !projected) {
      head_hits[i] = loc.head;
      continue;
    }
    values.clear();
    if (loc.head != nullptr) {
      for (int col : options.columns) values.push_back(loc.head->value(col));
    } else {
      loc.seg->AppendProjected(
          loc.seg_row, projected ? options.columns : all_columns_, &values);
    }
    results[i] = Row::CreateUnsafe(
        projected ? options.projected_schema : options_.schema, values);
  }
  // Pass 3: copy full-width head hits out. The copies are refcount bumps
  // on control blocks scattered across the partitions, so the loop is
  // latency-bound on cache misses; prefetching the Row object one stage
  // ahead and its shared value buffer a second stage ahead overlaps them.
  constexpr size_t kFetch = 8;
  for (i = 0; i < n; ++i) {
    if (i + 2 * kFetch < n && head_hits[i + 2 * kFetch] != nullptr) {
      __builtin_prefetch(head_hits[i + 2 * kFetch]);
    }
    if (i + kFetch < n && head_hits[i + kFetch] != nullptr) {
      __builtin_prefetch(head_hits[i + kFetch]->payload_address());
    }
    if (head_hits[i] != nullptr) results[i] = *head_hits[i];
  }
  return Status::OK();
}

std::vector<Row> OfflineTable::LatestPerEntityAsOf(Timestamp ts) const {
  std::shared_lock lock(mu_);
  // Each entity settles with one binary search over its merged posting
  // stream: the rightmost posting with ts <= the cutoff is its latest row.
  // Emitted in encoded-key order so the result is independent of hash-map
  // insertion history (a snapshot restore replays rows segment-first).
  std::vector<std::pair<const std::string*, const GlobalPosting*>> hits;
  hits.reserve(key_directory_.size());
  for (const auto& [key, merged] : key_directory_) {
    auto it = std::upper_bound(
        merged.begin(), merged.end(), ts,
        [](Timestamp t, const GlobalPosting& g) { return t < g.ts; });
    if (it == merged.begin()) continue;
    hits.emplace_back(&key, &*--it);
  }
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  std::vector<Row> out;
  out.reserve(hits.size());
  for (const auto& [key, posting] : hits) {
    out.push_back(MaterializeRow(Resolve(*posting->part, posting->ordinal)));
  }
  return out;
}

StatusOr<std::vector<MaterializedCell>> OfflineTable::EvalLatestPerEntityAsOf(
    Timestamp ts, const CompiledExpr& expr) const {
  MLFS_RETURN_IF_ERROR(ValidateCompiled(expr, /*need_bool=*/false));
  std::shared_lock lock(mu_);
  // Row selection is identical to LatestPerEntityAsOf: rightmost posting
  // with ts <= cutoff per entity, emitted in canonical key order.
  std::vector<std::pair<const std::string*, const GlobalPosting*>> hits;
  hits.reserve(key_directory_.size());
  for (const auto& [key, merged] : key_directory_) {
    auto it = std::upper_bound(
        merged.begin(), merged.end(), ts,
        [](Timestamp t, const GlobalPosting& g) { return t < g.ts; });
    if (it == merged.begin()) continue;
    hits.emplace_back(&key, &*--it);
  }
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  const size_t n = hits.size();
  std::vector<MaterializedCell> out(n);
  // Group the matched rows by residence so each group evaluates as column
  // batches: segment rows load straight off the encoded buffers, head rows
  // go through a row-pointer source. Only the entity cell and the result
  // are ever materialized as Values.
  struct SegGroup {
    const Segment* seg;
    std::vector<uint32_t> rows;
    std::vector<size_t> slots;  // Index into `out`, parallel to `rows`.
  };
  std::vector<SegGroup> groups;
  std::unordered_map<const Segment*, size_t> group_of;
  std::vector<const Row*> head_rows;
  std::vector<size_t> head_slots;
  for (size_t i = 0; i < n; ++i) {
    out[i].event_time = hits[i].second->ts;
    RowLoc loc = Resolve(*hits[i].second->part, hits[i].second->ordinal);
    if (loc.head != nullptr) {
      out[i].entity = loc.head->value(entity_idx_);
      head_rows.push_back(loc.head);
      head_slots.push_back(i);
      continue;
    }
    out[i].entity = loc.seg->value(entity_idx_, loc.seg_row);
    auto [git, inserted] = group_of.emplace(loc.seg, groups.size());
    if (inserted) groups.push_back(SegGroup{loc.seg, {}, {}});
    SegGroup& g = groups[git->second];
    g.rows.push_back(static_cast<uint32_t>(loc.seg_row));
    g.slots.push_back(i);
  }
  ExprScratch scratch;
  const ColumnVector* res = nullptr;
  for (const SegGroup& g : groups) {
    for (size_t off = 0; off < g.rows.size(); off += kEvalBatchRows) {
      const size_t len = std::min(kEvalBatchRows, g.rows.size() - off);
      SegmentBatchSource src(g.seg,
                             std::span<const uint32_t>(g.rows).subspan(off, len));
      MLFS_RETURN_IF_ERROR(expr.EvalBatch(src, &scratch, &res));
      for (size_t j = 0; j < len; ++j) {
        out[g.slots[off + j]].value = res->GetValue(j);
      }
    }
  }
  for (size_t off = 0; off < head_rows.size(); off += kEvalBatchRows) {
    const size_t len = std::min(kEvalBatchRows, head_rows.size() - off);
    RowPtrBatchSource src(
        options_.schema,
        std::span<const Row* const>(head_rows).subspan(off, len));
    MLFS_RETURN_IF_ERROR(expr.EvalBatch(src, &scratch, &res));
    for (size_t j = 0; j < len; ++j) {
      out[head_slots[off + j]].value = res->GetValue(j);
    }
  }
  return out;
}

std::vector<std::string> OfflineTable::EntityKeys() const {
  std::shared_lock lock(mu_);
  std::lock_guard cache_lock(keys_mu_);
  // The key directory holds every distinct key exactly once, and keys are
  // never removed — so the sorted cache is current iff the sizes match,
  // and the sort runs once per batch of new keys instead of once per call.
  if (keys_cache_.size() != key_directory_.size()) {
    keys_cache_.clear();
    keys_cache_.reserve(key_directory_.size());
    for (const auto& [key, runs] : key_directory_) keys_cache_.push_back(key);
    std::sort(keys_cache_.begin(), keys_cache_.end());
  }
  return keys_cache_;
}

size_t OfflineTable::num_rows() const {
  std::shared_lock lock(mu_);
  return num_rows_;
}

size_t OfflineTable::num_partitions() const {
  std::shared_lock lock(mu_);
  return partitions_.size();
}

Timestamp OfflineTable::max_event_time() const {
  std::shared_lock lock(mu_);
  return max_event_time_;
}

OfflineStorageStats OfflineTable::storage_stats() const {
  std::shared_lock lock(mu_);
  OfflineStorageStats stats;
  for (const auto& [pid, part] : partitions_) {
    stats.head_rows += part.head_rows.size();
    for (const SegmentPtr& seg : part.segments) {
      ++stats.sealed_segments;
      stats.sealed_rows += seg->num_rows();
      if (seg->spilled()) {
        ++stats.spilled_segments;
        stats.spilled_bytes += seg->encoded_size();
      } else {
        stats.resident_segment_bytes += seg->encoded_size();
      }
    }
  }
  stats.maintenance_errors =
      maintenance_errors_.load(std::memory_order_relaxed);
  stats.scan_segments_skipped =
      scan_segments_skipped_.load(std::memory_order_relaxed);
  stats.readahead = readahead_->stats();
  return stats;
}

// --- Tier maintenance ----------------------------------------------------

Status OfflineTable::SealHeadsInner(size_t min_rows) {
  MLFS_FAILPOINT("offline_store.seal");
  std::unique_lock lock(mu_);
  for (auto& [pid, part] : partitions_) {
    if (part.head_rows.size() < std::max<size_t>(min_rows, 1)) continue;
    MLFS_RETURN_IF_ERROR(SealPartitionLocked(pid, part));
  }
  return Status::OK();
}

Status OfflineTable::SealHeads() {
  std::lock_guard m(maintenance_mu_);
  return SealHeadsInner(1);
}

Status OfflineTable::CompactPartition(int64_t pid) {
  // Capture the partition's current immutable segment list under the
  // shared lock. Appends may grow the head (and auto-seal may append NEW
  // segments) while we merge, but captured segments themselves can only be
  // replaced by another maintenance pass — and maintenance_mu_ (held by
  // the caller) serializes those.
  std::vector<SegmentPtr> captured;
  {
    std::shared_lock lock(mu_);
    auto it = partitions_.find(pid);
    if (it == partitions_.end()) return Status::OK();
    captured = it->second.segments;
  }
  return CompactRun(pid, std::move(captured));
}

Status OfflineTable::CompactRun(int64_t pid, std::vector<SegmentPtr> captured) {
  if (captured.size() < 2) return Status::OK();
  // Merge off-lock: adjacent segments cover adjacent ordinal ranges, so
  // concatenating a captured run in order is ordinal order — the merged
  // segment covers the contiguous range starting at the run's first base
  // and the append-order tie-break is untouched.
  std::vector<Row> rows;
  size_t total = 0;
  for (const SegmentPtr& seg : captured) total += seg->num_rows();
  rows.reserve(total);
  std::vector<Value> values;
  for (const SegmentPtr& seg : captured) {
    for (size_t r = 0; r < seg->num_rows(); ++r) {
      values.clear();
      seg->AppendProjected(r, all_columns_, &values);
      rows.push_back(Row::CreateUnsafe(options_.schema, values));
    }
  }
  MLFS_ASSIGN_OR_RETURN(
      std::string blob,
      Segment::Encode(options_.schema, pid, entity_idx_, time_idx_,
                      std::span<const Row>(rows)));
  MLFS_ASSIGN_OR_RETURN(SegmentPtr merged, Segment::FromBytes(std::move(blob)));
  // Swap under the exclusive lock, after verifying the captured run is
  // still in place (it must be — see above — but a pointer check is cheap
  // insurance against a future locking regression). Auto-seal may have
  // appended segments after the run, never inside or before it.
  std::unique_lock lock(mu_);
  auto it = partitions_.find(pid);
  if (it == partitions_.end()) {
    return Status::Internal("partition vanished during compaction");
  }
  Partition& part = it->second;
  const auto first = std::find(part.segments.begin(), part.segments.end(),
                               captured.front());
  const size_t at = static_cast<size_t>(first - part.segments.begin());
  if (first == part.segments.end() ||
      part.segments.size() - at < captured.size()) {
    return Status::Internal("segment run vanished during compaction");
  }
  for (size_t s = 0; s < captured.size(); ++s) {
    if (part.segments[at + s] != captured[s]) {
      return Status::Internal("segment run changed during compaction");
    }
  }
  const size_t base = part.segment_base[at];
  part.segments.erase(part.segments.begin() + at,
                      part.segments.begin() + at + captured.size());
  part.segments.insert(part.segments.begin() + at, std::move(merged));
  part.segment_base.erase(part.segment_base.begin() + at,
                          part.segment_base.begin() + at + captured.size());
  part.segment_base.insert(part.segment_base.begin() + at, base);
  return Status::OK();
}

namespace {

/// log2 size bucket for size-tiered compaction: segments in the same
/// bucket are "peers" worth merging (the merge graduates them together
/// into the next bucket).
int SizeBucket(const SegmentPtr& seg) {
  int bucket = 0;
  for (size_t size = seg->encoded_size() >> 12; size != 0; size >>= 1) {
    ++bucket;  // 0: <4KiB, 1: <8KiB, ...
  }
  return bucket;
}

/// True when the two segments' event-time ranges intersect — fragments
/// that interleave in time are where as-of probes pay for fragmentation,
/// so overlapping runs merge first.
bool TsOverlap(const SegmentPtr& a, const SegmentPtr& b) {
  return a->min_ts() <= b->max_ts() && b->min_ts() <= a->max_ts();
}

/// Picks the best adjacent same-bucket run of >= 2 segments: most
/// time-overlapping adjacent pairs, then longest, then earliest. Empty
/// when every bucket neighbor pair differs — the caller falls back to
/// merging the smallest adjacent pair so fragmentation always shrinks.
std::vector<SegmentPtr> PickSizeTieredRun(
    const std::vector<SegmentPtr>& segments) {
  size_t best_at = 0, best_len = 0, best_overlap = 0;
  size_t at = 0;
  while (at < segments.size()) {
    const int bucket = SizeBucket(segments[at]);
    size_t end = at + 1, overlap = 0;
    while (end < segments.size() && SizeBucket(segments[end]) == bucket) {
      if (TsOverlap(segments[end - 1], segments[end])) ++overlap;
      ++end;
    }
    const size_t len = end - at;
    if (len >= 2 && (overlap > best_overlap ||
                     (overlap == best_overlap && len > best_len))) {
      best_at = at;
      best_len = len;
      best_overlap = overlap;
    }
    at = end;
  }
  if (best_len >= 2) {
    return {segments.begin() + best_at, segments.begin() + best_at + best_len};
  }
  return {};
}

}  // namespace

Status OfflineTable::CompactInner(size_t min_segments) {
  MLFS_FAILPOINT("offline_store.compact");
  const bool size_tiered =
      options_.compaction_policy == CompactionPolicy::kSizeTiered;
  std::vector<int64_t> candidates;
  std::vector<std::vector<SegmentPtr>> runs;  // Parallel, size-tiered only.
  {
    std::shared_lock lock(mu_);
    for (const auto& [pid, part] : partitions_) {
      if (part.segments.size() < std::max<size_t>(min_segments, 2)) continue;
      if (!size_tiered) {
        candidates.push_back(pid);
        continue;
      }
      std::vector<SegmentPtr> run = PickSizeTieredRun(part.segments);
      if (run.empty()) {
        // No same-bucket peers: merge the smallest adjacent pair so the
        // partition still converges instead of fragmenting forever.
        size_t smallest = 0;
        size_t smallest_bytes = SIZE_MAX;
        for (size_t s = 0; s + 1 < part.segments.size(); ++s) {
          const size_t bytes = part.segments[s]->encoded_size() +
                               part.segments[s + 1]->encoded_size();
          if (bytes < smallest_bytes) {
            smallest_bytes = bytes;
            smallest = s;
          }
        }
        run = {part.segments[smallest], part.segments[smallest + 1]};
      }
      candidates.push_back(pid);
      runs.push_back(std::move(run));
    }
  }
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (size_tiered) {
      MLFS_RETURN_IF_ERROR(CompactRun(candidates[c], std::move(runs[c])));
    } else {
      MLFS_RETURN_IF_ERROR(CompactPartition(candidates[c]));
    }
  }
  return Status::OK();
}

Status OfflineTable::CompactPartitions() {
  std::lock_guard m(maintenance_mu_);
  return CompactInner(2);
}

Status OfflineTable::EnforceBudgetInner() {
  if (options_.memory_budget_bytes == 0 || options_.spill_dir.empty()) {
    return Status::OK();
  }
  MLFS_FAILPOINT("offline_store.spill");
  // Pick victims under the shared lock: coldest (oldest partition) first,
  // oldest segment within a partition first.
  struct Victim {
    int64_t pid;
    SegmentPtr seg;
  };
  std::vector<Victim> victims;
  {
    std::shared_lock lock(mu_);
    size_t resident = 0;
    for (const auto& [pid, part] : partitions_) {
      for (const SegmentPtr& seg : part.segments) {
        if (!seg->spilled()) resident += seg->encoded_size();
      }
    }
    for (const auto& [pid, part] : partitions_) {
      if (resident <= options_.memory_budget_bytes) break;
      for (const SegmentPtr& seg : part.segments) {
        if (seg->spilled()) continue;
        victims.push_back(Victim{pid, seg});
        resident -= seg->encoded_size();
        if (resident <= options_.memory_budget_bytes) break;
      }
    }
  }
  if (victims.empty()) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(options_.spill_dir, ec);
  for (Victim& v : victims) {
    const std::string path =
        options_.spill_dir + "/" + options_.name + "_p" +
        std::to_string(v.pid) + "_" + std::to_string(spill_seq_++) + ".seg";
    // Write + map + validate off-lock (Segment::SpillToFile: atomic write
    // + mmap reopen, no file left behind on failure); readers keep using
    // the resident blob until the swap below, and on any failure the
    // resident segment simply stays resident — the table is never
    // degraded by a spill fault.
    auto mapped =
        Segment::SpillToFile(*v.seg, path, /*remove_file_on_destroy=*/true);
    if (!mapped.ok()) {
      return mapped.status();
    }
    std::unique_lock lock(mu_);
    auto it = partitions_.find(v.pid);
    if (it == partitions_.end()) continue;
    Partition& part = it->second;
    for (size_t s = 0; s < part.segments.size(); ++s) {
      if (part.segments[s] == v.seg) {
        // Same bytes, different backing store; ordinals (and therefore
        // every index posting) are untouched. The old resident blob is
        // freed when in-flight readers drop their reference.
        part.segments[s] = *mapped;
        break;
      }
    }
  }
  return Status::OK();
}

Status OfflineTable::EnforceMemoryBudget() {
  std::lock_guard m(maintenance_mu_);
  return EnforceBudgetInner();
}

Status OfflineTable::RunMaintenance() {
  std::lock_guard m(maintenance_mu_);
  if (options_.seal_rows > 0) {
    MLFS_RETURN_IF_ERROR(SealHeadsInner(options_.seal_rows));
  }
  MLFS_RETURN_IF_ERROR(CompactInner(options_.compact_min_segments));
  return EnforceBudgetInner();
}

Status OfflineTable::StartMaintenance(int64_t period_millis) {
  if (period_millis <= 0) {
    return Status::InvalidArgument("maintenance period must be positive");
  }
  std::lock_guard lock(bg_mu_);
  if (bg_thread_.joinable()) {
    return Status::FailedPrecondition("maintenance thread already running");
  }
  bg_stop_ = false;
  bg_thread_ = std::thread([this, period_millis] {
    std::unique_lock lock(bg_mu_);
    while (!bg_stop_) {
      bg_cv_.wait_for(lock, std::chrono::milliseconds(period_millis),
                      [this] { return bg_stop_; });
      if (bg_stop_) break;
      lock.unlock();
      Status s = RunMaintenance();
      if (!s.ok()) {
        maintenance_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      lock.lock();
    }
  });
  return Status::OK();
}

void OfflineTable::StopMaintenance() {
  std::thread t;
  {
    std::lock_guard lock(bg_mu_);
    bg_stop_ = true;
    t = std::move(bg_thread_);
  }
  bg_cv_.notify_all();
  if (t.joinable()) t.join();
}

// --- Snapshots -----------------------------------------------------------

namespace {
// Legacy (PR <= 5) row-stream snapshot.
constexpr uint32_t kSnapshotMagic = 0x4d4c4653;  // "MLFS"
// Segment-carrying snapshot: sealed segments are embedded verbatim
// (checksums and all) and only the mutable heads travel as a row stream.
constexpr uint32_t kSnapshotMagicV2 = 0x4d4c4632;  // "MLF2"
}  // namespace

std::string OfflineTable::Snapshot() const {
  std::shared_lock lock(mu_);
  Encoder enc;
  enc.PutFixed32(kSnapshotMagicV2);
  enc.PutString(options_.name);
  enc.PutString(options_.entity_column);
  enc.PutString(options_.time_column);
  enc.PutFixed64(static_cast<uint64_t>(options_.partition_granularity));
  enc.PutSchema(*options_.schema);
  size_t num_segments = 0;
  size_t head_rows = 0;
  for (const auto& [pid, part] : partitions_) {
    num_segments += part.segments.size();
    head_rows += part.head_rows.size();
  }
  enc.PutVarint64(num_segments);
  for (const auto& [pid, part] : partitions_) {
    for (const SegmentPtr& seg : part.segments) enc.PutString(seg->encoded());
  }
  enc.PutVarint64(head_rows);
  for (const auto& [pid, part] : partitions_) {
    for (const Row& row : part.head_rows) enc.PutRow(row);
  }
  return enc.Release();
}

Status OfflineTable::AdoptSegmentLocked(const SegmentPtr& seg) {
  if (!(*seg->schema() == *options_.schema)) {
    return Status::Corruption("snapshot segment schema does not match table");
  }
  if (seg->entity_idx() != entity_idx_ || seg->time_idx() != time_idx_) {
    return Status::Corruption("snapshot segment column indices do not match");
  }
  Partition& part = partitions_[seg->partition_id()];
  if (!part.head_rows.empty()) {
    return Status::Corruption("snapshot interleaves segments and head rows");
  }
  const size_t base = part.head_base;
  // Validate partition assignment before adopting: a corrupt-but-checksum-
  // valid snapshot must not be able to put rows where scans skip them.
  for (size_t r = 0; r < seg->num_rows(); ++r) {
    if (PartitionIdFor(seg->ts(r)) != seg->partition_id()) {
      return Status::Corruption(
          "snapshot segment row outside its partition's time range");
    }
  }
  part.segments.push_back(seg);
  part.segment_base.push_back(base);
  part.head_base += seg->num_rows();
  // Rebuild index postings. Rows are visited in ordinal order and segments
  // are adopted in ordinal order, so upper_bound reproduces the original
  // append-order tie-break for equal timestamps.
  for (size_t r = 0; r < seg->num_rows(); ++r) {
    MLFS_ASSIGN_OR_RETURN(std::string key,
                          EntityKeyToString(seg->value(entity_idx_, r)));
    const Timestamp ts = seg->ts(r);
    const size_t ordinal = base + r;
    auto& postings = part.index[key];
    auto pos = std::upper_bound(
        postings.begin(), postings.end(), ts,
        [](Timestamp t, const IndexEntry& e) { return t < e.ts; });
    postings.insert(pos, IndexEntry{ts, ordinal});
    std::vector<GlobalPosting>& merged = key_directory_[key];
    auto gpos = std::upper_bound(
        merged.begin(), merged.end(), ts,
        [](Timestamp t, const GlobalPosting& g) { return t < g.ts; });
    merged.insert(gpos, GlobalPosting{ts, ordinal, &part});
    ++num_rows_;
    max_event_time_ = std::max(max_event_time_, ts);
  }
  return Status::OK();
}

namespace {

struct SnapshotHeader {
  uint32_t magic = 0;
  OfflineTableOptions options;
};

StatusOr<SnapshotHeader> ReadSnapshotHeader(Decoder* dec) {
  SnapshotHeader header;
  MLFS_ASSIGN_OR_RETURN(header.magic, dec->GetFixed32());
  if (header.magic != kSnapshotMagic && header.magic != kSnapshotMagicV2) {
    return Status::Corruption("bad snapshot magic");
  }
  MLFS_ASSIGN_OR_RETURN(header.options.name, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(header.options.entity_column, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(header.options.time_column, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(uint64_t granularity, dec->GetFixed64());
  header.options.partition_granularity =
      static_cast<Timestamp>(granularity);
  MLFS_ASSIGN_OR_RETURN(header.options.schema, dec->GetSchema());
  return header;
}

}  // namespace

Status OfflineTable::Restore(std::string_view snapshot) {
  {
    std::shared_lock lock(mu_);
    if (num_rows_ != 0 || !partitions_.empty()) {
      return Status::FailedPrecondition("Restore requires an empty table");
    }
  }
  Decoder dec(snapshot);
  MLFS_ASSIGN_OR_RETURN(SnapshotHeader header, ReadSnapshotHeader(&dec));
  if (header.options.name != options_.name) {
    return Status::InvalidArgument("snapshot is for table '" +
                                   header.options.name + "'");
  }
  if (!(*header.options.schema == *options_.schema)) {
    return Status::InvalidArgument("snapshot schema does not match table");
  }
  std::unique_lock lock(mu_);
  if (header.magic == kSnapshotMagicV2) {
    MLFS_ASSIGN_OR_RETURN(uint64_t num_segments, dec.GetVarint64());
    for (uint64_t s = 0; s < num_segments; ++s) {
      MLFS_ASSIGN_OR_RETURN(std::string blob, dec.GetString());
      MLFS_ASSIGN_OR_RETURN(SegmentPtr seg,
                            Segment::FromBytes(std::move(blob)));
      MLFS_RETURN_IF_ERROR(AdoptSegmentLocked(seg));
    }
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint64());
  for (uint64_t i = 0; i < n; ++i) {
    MLFS_ASSIGN_OR_RETURN(Row row, dec.GetRow(options_.schema));
    MLFS_RETURN_IF_ERROR(AppendLocked(row));
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<OfflineTable>> OfflineTable::FromSnapshot(
    std::string_view snapshot) {
  Decoder probe(snapshot);
  MLFS_ASSIGN_OR_RETURN(SnapshotHeader header, ReadSnapshotHeader(&probe));
  MLFS_ASSIGN_OR_RETURN(auto table, Create(std::move(header.options)));
  MLFS_RETURN_IF_ERROR(table->Restore(snapshot));
  return table;
}

Status OfflineStore::CreateTable(OfflineTableOptions options) {
  MLFS_ASSIGN_OR_RETURN(auto table, OfflineTable::Create(std::move(options)));
  return AdoptTable(std::move(table));
}

Status OfflineStore::AdoptTable(std::unique_ptr<OfflineTable> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot adopt a null table");
  }
  std::lock_guard lock(mu_);
  auto [it, inserted] = tables_.emplace(table->name(), std::move(table));
  if (!inserted) {
    return Status::AlreadyExists("offline table '" + it->first +
                                 "' already exists");
  }
  return Status::OK();
}

StatusOr<OfflineTable*> OfflineStore::GetTable(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("offline table '" + name + "' not found");
  }
  return it->second.get();
}

bool OfflineStore::HasTable(const std::string& name) const {
  std::lock_guard lock(mu_);
  return tables_.count(name) > 0;
}

std::vector<std::string> OfflineStore::TableNames() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

}  // namespace mlfs
