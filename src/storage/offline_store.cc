#include "storage/offline_store.h"

#include <algorithm>
#include <unordered_set>

#include "common/failpoint.h"
#include "common/serde.h"
#include "storage/entity_key.h"

namespace mlfs {

OfflineTable::OfflineTable(OfflineTableOptions options)
    : options_(std::move(options)) {
  entity_idx_ = options_.schema->FieldIndex(options_.entity_column);
  time_idx_ = options_.schema->FieldIndex(options_.time_column);
}

StatusOr<std::unique_ptr<OfflineTable>> OfflineTable::Create(
    OfflineTableOptions options) {
  if (options.name.empty()) {
    return Status::InvalidArgument("offline table needs a name");
  }
  if (options.schema == nullptr) {
    return Status::InvalidArgument("offline table needs a schema");
  }
  if (options.partition_granularity <= 0) {
    return Status::InvalidArgument("partition granularity must be positive");
  }
  int eidx = options.schema->FieldIndex(options.entity_column);
  if (eidx < 0) {
    return Status::InvalidArgument("entity column '" + options.entity_column +
                                   "' not in schema");
  }
  const FieldSpec& efield = options.schema->field(eidx);
  if (efield.type != FeatureType::kInt64 &&
      efield.type != FeatureType::kString) {
    return Status::InvalidArgument("entity column must be INT64 or STRING");
  }
  if (efield.nullable) {
    return Status::InvalidArgument("entity column must be NOT NULL");
  }
  int tidx = options.schema->FieldIndex(options.time_column);
  if (tidx < 0) {
    return Status::InvalidArgument("time column '" + options.time_column +
                                   "' not in schema");
  }
  const FieldSpec& tfield = options.schema->field(tidx);
  if (tfield.type != FeatureType::kTimestamp || tfield.nullable) {
    return Status::InvalidArgument(
        "time column must be TIMESTAMP NOT NULL");
  }
  return std::unique_ptr<OfflineTable>(new OfflineTable(std::move(options)));
}

int64_t OfflineTable::PartitionIdFor(Timestamp ts) const {
  // Floor division so negative timestamps partition correctly.
  int64_t g = options_.partition_granularity;
  int64_t q = ts / g;
  if (ts % g != 0 && ts < 0) --q;
  return q;
}

Status OfflineTable::AppendLocked(const Row& row) {
  if (row.schema() == nullptr || !(*row.schema() == *options_.schema)) {
    return Status::InvalidArgument("row schema does not match table '" +
                                   options_.name + "'");
  }
  const Value& evalue = row.value(entity_idx_);
  MLFS_ASSIGN_OR_RETURN(std::string key, EntityKeyToString(evalue));
  const Value& tvalue = row.value(time_idx_);
  if (tvalue.is_null()) {
    return Status::InvalidArgument("event time is null");
  }
  Timestamp ts = tvalue.time_value();
  const int64_t pid = PartitionIdFor(ts);
  Partition& part = partitions_[pid];
  size_t idx = part.rows.size();
  part.rows.push_back(row);
  auto& postings = part.index[key];
  // Insert in ts order (stable for equal timestamps: later insert wins by
  // being placed after, so as-of picks the most recently appended row).
  auto pos = std::upper_bound(
      postings.begin(), postings.end(), ts,
      [](Timestamp t, const IndexEntry& e) { return t < e.ts; });
  postings.insert(pos, IndexEntry{ts, idx});
  // Mirror the insert into the key directory's merged stream. upper_bound
  // places equal timestamps after existing ones — the same
  // most-recently-appended tie-break as the per-partition postings — and
  // partitions cover disjoint time ranges, so ts order alone keeps the
  // merged stream consistent with a partition-ordered walk.
  std::vector<GlobalPosting>& merged = key_directory_[key];
  auto gpos = std::upper_bound(
      merged.begin(), merged.end(), ts,
      [](Timestamp t, const GlobalPosting& g) { return t < g.ts; });
  merged.insert(gpos, GlobalPosting{ts, idx, &part});
  ++num_rows_;
  max_event_time_ = std::max(max_event_time_, ts);
  return Status::OK();
}

Status OfflineTable::Append(const Row& row) {
  MLFS_FAILPOINT("offline_store.append");
  std::unique_lock lock(mu_);
  return AppendLocked(row);
}

Status OfflineTable::AppendBatch(const std::vector<Row>& rows) {
  MLFS_FAILPOINT("offline_store.append");
  std::unique_lock lock(mu_);
  for (const Row& row : rows) {
    MLFS_RETURN_IF_ERROR(AppendLocked(row));
  }
  return Status::OK();
}

std::vector<Row> OfflineTable::Scan(Timestamp lo, Timestamp hi) const {
  return ScanIf(lo, hi, nullptr);
}

std::vector<Row> OfflineTable::ScanIf(
    Timestamp lo, Timestamp hi,
    const std::function<bool(const Row&)>& pred) const {
  std::shared_lock lock(mu_);
  std::vector<Row> out;
  if (lo >= hi) return out;
  // Partitions wholly outside [lo, hi) are skipped without touching rows.
  const int64_t lo_part =
      (lo == kMinTimestamp) ? INT64_MIN : PartitionIdFor(lo);
  const int64_t hi_part =
      (hi == kMaxTimestamp) ? INT64_MAX : PartitionIdFor(hi);
  for (auto it = partitions_.lower_bound(lo_part); it != partitions_.end();
       ++it) {
    if (it->first > hi_part) break;
    for (const Row& row : it->second.rows) {
      Timestamp ts = row.value(time_idx_).time_value();
      if (ts < lo || ts >= hi) continue;
      if (pred && !pred(row)) continue;
      out.push_back(row);
    }
  }
  return out;
}

StatusOr<Row> OfflineTable::AsOf(const Value& entity_key, Timestamp ts) const {
  MLFS_FAILPOINT("offline_store.as_of");
  MLFS_ASSIGN_OR_RETURN(std::string key, EntityKeyToString(entity_key));
  std::shared_lock lock(mu_);
  // Walk partitions from the one containing ts backwards in time.
  auto it = partitions_.upper_bound(
      ts == kMaxTimestamp ? INT64_MAX : PartitionIdFor(ts));
  while (it != partitions_.begin()) {
    --it;
    const Partition& part = it->second;
    auto pit = part.index.find(key);
    if (pit == part.index.end()) continue;
    const auto& postings = pit->second;
    // Rightmost posting with posting.ts <= ts.
    auto bit = std::upper_bound(
        postings.begin(), postings.end(), ts,
        [](Timestamp t, const IndexEntry& e) { return t < e.ts; });
    if (bit == postings.begin()) continue;
    --bit;
    return part.rows[bit->row_index];
  }
  return Status::NotFound("no row for entity '" + key + "' as of " +
                          FormatTimestamp(ts));
}

Status OfflineTable::AsOfBatch(std::span<const AsOfRequest> requests,
                               std::span<Row> results) const {
  MLFS_FAILPOINT("offline_store.as_of");
  if (results.size() != requests.size()) {
    return Status::InvalidArgument("AsOfBatch results/requests size mismatch");
  }
  for (size_t i = 1; i < requests.size(); ++i) {
    const AsOfRequest& prev = requests[i - 1];
    const AsOfRequest& cur = requests[i];
    if (cur.key < prev.key ||
        (cur.key == prev.key && cur.ts < prev.ts)) {
      return Status::InvalidArgument(
          "AsOfBatch requests must be sorted by (key, ts)");
    }
  }
  std::shared_lock lock(mu_);
  const size_t n = requests.size();
  // Pass 1: resolve every request to the address of its matched row (or
  // null). The key directory holds each entity's merged posting stream
  // already sorted by ts: one hash probe per *entity*, then one flat
  // forward cursor answers the entity's whole ascending request run. Row
  // addresses stay stable for the duration of the shared lock (appends
  // are excluded), so they can be dereferenced in pass 2.
  std::vector<const Row*> hits(n, nullptr);
  size_t i = 0;
  while (i < n) {
    const std::string_view key = requests[i].key;
    size_t run_end = i + 1;
    while (run_end < n && requests[run_end].key == key) ++run_end;
    auto dit = key_directory_.find(key);
    if (dit == key_directory_.end()) {
      i = run_end;  // Absent entity: every request in the run misses.
      continue;
    }
    const std::vector<GlobalPosting>& postings = dit->second;
    const size_t num_postings = postings.size();
    size_t pos = 0;
    for (; i < run_end; ++i) {
      const Timestamp ts = requests[i].ts;
      while (pos < num_postings && postings[pos].ts <= ts) ++pos;
      if (pos > 0) {
        // Rightmost posting with ts <= request: max event time, with the
        // most-recently-appended row winning equal-timestamp ties.
        const GlobalPosting& g = postings[pos - 1];
        hits[i] = &g.part->rows[g.row_index];
      }
    }
  }
  // Pass 2: copy the matched rows out. The copies are refcount bumps on
  // control blocks scattered across the partitions, so the loop is
  // latency-bound on cache misses; prefetching the Row object one stage
  // ahead and its shared value buffer a second stage ahead overlaps them.
  constexpr size_t kFetch = 8;
  for (i = 0; i < n; ++i) {
    if (i + 2 * kFetch < n && hits[i + 2 * kFetch] != nullptr) {
      __builtin_prefetch(hits[i + 2 * kFetch]);
    }
    if (i + kFetch < n && hits[i + kFetch] != nullptr) {
      __builtin_prefetch(hits[i + kFetch]->payload_address());
    }
    if (hits[i] != nullptr) results[i] = *hits[i];
  }
  return Status::OK();
}

std::vector<Row> OfflineTable::LatestPerEntityAsOf(Timestamp ts) const {
  std::shared_lock lock(mu_);
  std::vector<Row> out;
  out.reserve(key_directory_.size());
  // Each entity settles with one binary search over its merged posting
  // stream: the rightmost posting with ts <= the cutoff is its latest row.
  for (const auto& [key, merged] : key_directory_) {
    auto it = std::upper_bound(
        merged.begin(), merged.end(), ts,
        [](Timestamp t, const GlobalPosting& g) { return t < g.ts; });
    if (it == merged.begin()) continue;
    --it;
    out.push_back(it->part->rows[it->row_index]);
  }
  return out;
}

std::vector<std::string> OfflineTable::EntityKeys() const {
  std::shared_lock lock(mu_);
  // The key directory holds every distinct key exactly once.
  std::vector<std::string> out;
  out.reserve(key_directory_.size());
  for (const auto& [key, runs] : key_directory_) out.push_back(key);
  std::sort(out.begin(), out.end());
  return out;
}

size_t OfflineTable::num_rows() const {
  std::shared_lock lock(mu_);
  return num_rows_;
}

size_t OfflineTable::num_partitions() const {
  std::shared_lock lock(mu_);
  return partitions_.size();
}

Timestamp OfflineTable::max_event_time() const {
  std::shared_lock lock(mu_);
  return max_event_time_;
}

namespace {
constexpr uint32_t kSnapshotMagic = 0x4d4c4653;  // "MLFS"
}  // namespace

std::string OfflineTable::Snapshot() const {
  std::shared_lock lock(mu_);
  Encoder enc;
  enc.PutFixed32(kSnapshotMagic);
  enc.PutString(options_.name);
  enc.PutString(options_.entity_column);
  enc.PutString(options_.time_column);
  enc.PutFixed64(static_cast<uint64_t>(options_.partition_granularity));
  enc.PutSchema(*options_.schema);
  enc.PutVarint64(num_rows_);
  for (const auto& [pid, part] : partitions_) {
    for (const Row& row : part.rows) enc.PutRow(row);
  }
  return enc.Release();
}

namespace {

struct SnapshotHeader {
  OfflineTableOptions options;
};

StatusOr<SnapshotHeader> ReadSnapshotHeader(Decoder* dec) {
  MLFS_ASSIGN_OR_RETURN(uint32_t magic, dec->GetFixed32());
  if (magic != kSnapshotMagic) {
    return Status::Corruption("bad snapshot magic");
  }
  SnapshotHeader header;
  MLFS_ASSIGN_OR_RETURN(header.options.name, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(header.options.entity_column, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(header.options.time_column, dec->GetString());
  MLFS_ASSIGN_OR_RETURN(uint64_t granularity, dec->GetFixed64());
  header.options.partition_granularity =
      static_cast<Timestamp>(granularity);
  MLFS_ASSIGN_OR_RETURN(header.options.schema, dec->GetSchema());
  return header;
}

}  // namespace

Status OfflineTable::Restore(std::string_view snapshot) {
  {
    std::shared_lock lock(mu_);
    if (num_rows_ != 0) {
      return Status::FailedPrecondition("Restore requires an empty table");
    }
  }
  Decoder dec(snapshot);
  MLFS_ASSIGN_OR_RETURN(SnapshotHeader header, ReadSnapshotHeader(&dec));
  if (header.options.name != options_.name) {
    return Status::InvalidArgument("snapshot is for table '" +
                                   header.options.name + "'");
  }
  if (!(*header.options.schema == *options_.schema)) {
    return Status::InvalidArgument("snapshot schema does not match table");
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint64());
  std::unique_lock lock(mu_);
  for (uint64_t i = 0; i < n; ++i) {
    MLFS_ASSIGN_OR_RETURN(Row row, dec.GetRow(options_.schema));
    MLFS_RETURN_IF_ERROR(AppendLocked(row));
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<OfflineTable>> OfflineTable::FromSnapshot(
    std::string_view snapshot) {
  Decoder dec(snapshot);
  MLFS_ASSIGN_OR_RETURN(SnapshotHeader header, ReadSnapshotHeader(&dec));
  MLFS_ASSIGN_OR_RETURN(auto table, Create(std::move(header.options)));
  MLFS_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint64());
  std::unique_lock lock(table->mu_);
  for (uint64_t i = 0; i < n; ++i) {
    MLFS_ASSIGN_OR_RETURN(Row row, dec.GetRow(table->options_.schema));
    MLFS_RETURN_IF_ERROR(table->AppendLocked(row));
  }
  lock.unlock();
  return table;
}

Status OfflineStore::CreateTable(OfflineTableOptions options) {
  MLFS_ASSIGN_OR_RETURN(auto table, OfflineTable::Create(std::move(options)));
  return AdoptTable(std::move(table));
}

Status OfflineStore::AdoptTable(std::unique_ptr<OfflineTable> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot adopt a null table");
  }
  std::lock_guard lock(mu_);
  auto [it, inserted] = tables_.emplace(table->name(), std::move(table));
  if (!inserted) {
    return Status::AlreadyExists("offline table '" + it->first +
                                 "' already exists");
  }
  return Status::OK();
}

StatusOr<OfflineTable*> OfflineStore::GetTable(const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("offline table '" + name + "' not found");
  }
  return it->second.get();
}

bool OfflineStore::HasTable(const std::string& name) const {
  std::lock_guard lock(mu_);
  return tables_.count(name) > 0;
}

std::vector<std::string> OfflineStore::TableNames() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

}  // namespace mlfs
