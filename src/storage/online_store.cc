#include "storage/online_store.h"

#include <charconv>

#include "common/failpoint.h"
#include "common/serde.h"
#include "storage/entity_key.h"

namespace mlfs {

namespace {

/// Cell keys are hashed as entity bytes seeded with the view's own hash,
/// rather than hashing the composed "view\x1fentity" string: a batched
/// lookup then hashes the view once per batch and only the short entity
/// bytes per key. Every path that touches shard.cells must use this pair
/// (the hash picks both the shard and the probe chain).
inline uint64_t ViewHashSeed(std::string_view view) {
  return FastHash64(view.data(), view.size());
}
inline uint64_t CellKeyHash(uint64_t view_seed, std::string_view entity_key) {
  return FastHash64(entity_key.data(), entity_key.size(), view_seed);
}

/// One key's pending lookup inside MultiGet.
struct Probe {
  uint64_t hash;         // Cell-key hash, reused by the shard's CellMap.
  const CellMap* cells;  // Destination shard's table, resolved once.
  uint32_t index;        // Position in the request/result vectors.
  uint32_t shard;        // Destination shard.
  uint32_t offset, len;  // Full-key bytes in the scratch arena.
  uint32_t key_offset;   // Start of the entity-key part (messages).
};

/// A request position whose key equals an earlier probe's key.
struct Dup {
  uint32_t canonical;  // Probe whose result this duplicate copies.
  uint32_t index;      // Position in the request/result vectors.
};

/// Per-thread MultiGet working memory, reused across calls so the hot
/// path performs no scratch allocations once a thread's buffers have
/// grown to its typical batch size.
struct MultiGetScratch {
  std::string arena;
  std::vector<Probe> probes;
  std::vector<Probe> sorted;
  std::vector<uint32_t> shard_counts;
  std::vector<uint32_t> shard_start;
  std::vector<uint32_t> cursor;
  std::vector<uint32_t> dedup_table;
  std::vector<Dup> dups;
  std::vector<const OnlineCell*> found;
  std::vector<Status> errs;
  std::vector<uint8_t> outcome;
  std::vector<int64_t> candidates;
  std::vector<std::shared_lock<std::shared_mutex>> locks;
};

MultiGetScratch& GetMultiGetScratch() {
  static thread_local MultiGetScratch scratch;
  return scratch;
}

}  // namespace

OnlineStore::OnlineStore(OnlineStoreOptions options)
    : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string OnlineStore::FullKey(const std::string& view,
                                 const std::string& key) {
  std::string full;
  full.reserve(view.size() + 1 + key.size());
  full += view;
  full += '\x1f';  // Unit separator; views cannot contain it.
  full += key;
  return full;
}

Status OnlineStore::CreateView(const std::string& view, SchemaPtr schema) {
  if (view.empty() || view.find('\x1f') != std::string::npos) {
    return Status::InvalidArgument("bad view name");
  }
  if (schema == nullptr) {
    return Status::InvalidArgument("view schema is null");
  }
  std::lock_guard lock(views_mu_);
  auto [it, inserted] = views_.emplace(view, std::move(schema));
  if (!inserted) {
    return Status::AlreadyExists("view '" + view + "' already exists");
  }
  return Status::OK();
}

bool OnlineStore::HasView(const std::string& view) const {
  std::shared_lock lock(views_mu_);
  return views_.count(view) > 0;
}

StatusOr<SchemaPtr> OnlineStore::ViewSchema(const std::string& view) const {
  std::shared_lock lock(views_mu_);
  auto it = views_.find(view);
  if (it == views_.end()) {
    return Status::NotFound("view '" + view + "' not found");
  }
  return it->second;
}

Status OnlineStore::Put(const std::string& view, const Value& entity_key,
                        Row row, Timestamp event_time, Timestamp write_time,
                        Timestamp ttl) {
  // Injected before any counter/state mutation so stats invariants hold
  // under fault injection.
  MLFS_FAILPOINT("online_store.put");
  MLFS_ASSIGN_OR_RETURN(SchemaPtr schema, ViewSchema(view));
  if (row.schema() == nullptr || !(*row.schema() == *schema)) {
    return Status::InvalidArgument("row schema does not match view '" + view +
                                   "'");
  }
  MLFS_ASSIGN_OR_RETURN(std::string key, EntityKeyToString(entity_key));
  if (ttl <= 0) ttl = options_.default_ttl;
  Timestamp expires_at =
      (ttl <= 0) ? kMaxTimestamp
                 : (write_time > kMaxTimestamp - ttl ? kMaxTimestamp
                                                     : write_time + ttl);
  if (expires_at != kMaxTimestamp) {
    may_have_ttl_.store(true, std::memory_order_relaxed);
  }
  std::string full_key = FullKey(view, key);
  const uint64_t h = CellKeyHash(ViewHashSeed(view), key);
  Shard& shard = ShardFor(h);
  puts_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(shard.mu);
  auto [cell, inserted] = shard.cells.Insert(h, full_key, OnlineCell{});
  if (!inserted) {
    if (cell->event_time > event_time) {
      stale_writes_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();  // Keep the fresher cell.
    }
    shard.approx_bytes -= cell->row.ByteSize();
  }
  shard.approx_bytes += row.ByteSize();
  *cell = OnlineCell{std::move(row), event_time, write_time, expires_at};
  return Status::OK();
}

StatusOr<Row> OnlineStore::Get(const std::string& view,
                               const Value& entity_key, Timestamp now) const {
  MLFS_FAILPOINT("online_store.get");
  gets_.fetch_add(1, std::memory_order_relaxed);
  auto keyor = EntityKeyToString(entity_key);
  if (!keyor.ok()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return keyor.status();
  }
  std::string full_key = FullKey(view, *keyor);
  const uint64_t h = CellKeyHash(ViewHashSeed(view), *keyor);
  Shard& shard = ShardFor(h);
  std::shared_lock lock(shard.mu);
  const OnlineCell* cell = shard.cells.Find(h, full_key);
  if (cell == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("no online value for '" + *keyor + "' in view '" +
                            view + "'");
  }
  if (cell->expires_at <= now) {
    expired_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("online value for '" + *keyor + "' expired");
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return cell->row;
}

std::vector<StatusOr<Row>> OnlineStore::MultiGet(
    const std::string& view, const std::vector<Value>& entity_keys,
    Timestamp now) const {
  const size_t n = entity_keys.size();
  if (n == 0) return {};
  if (n == 1) {
    // Grouping has nothing to amortize for a single key; Get is
    // observationally identical (failpoint, counters, messages).
    std::vector<StatusOr<Row>> out;
    out.reserve(1);
    out.push_back(Get(view, entity_keys[0], now));
    return out;
  }

  // Per-thread scratch: all working vectors are reused across calls, so a
  // steady-state serving thread allocates nothing here but the result
  // vector itself.
  MultiGetScratch& scr = GetMultiGetScratch();

  // Results accumulate as raw parts — a cell pointer per hit, a sparse
  // error per miss — and are assembled into StatusOr<Row>s in one
  // sequential pass at the end. Pre-filling a vector<StatusOr<Row>> with
  // placeholder statuses and overwriting it out of order costs a
  // construct-destroy cycle per key on the hot path.
  std::vector<const OnlineCell*>& found = scr.found;
  found.assign(n, nullptr);
  std::vector<Status>& errs = scr.errs;  // OK == "hit"; misses overwrite.
  errs.clear();
  errs.resize(n);

  // Pass 1 — per-key admission. The failpoint is evaluated once per key
  // (exactly as a loop of Get would), key strings are canonicalized, and
  // full keys are packed into one arena so no per-key composed-key string
  // is heap-allocated. Cell-key hashes are seeded with the view's hash,
  // so the view bytes are hashed once per batch rather than once per key.
  std::string& arena = scr.arena;
  arena.clear();
  arena.reserve(n * (view.size() + 12));
  std::vector<Probe>& probes = scr.probes;
  probes.clear();
  probes.reserve(n);
  std::vector<uint32_t>& shard_counts = scr.shard_counts;
  shard_counts.assign(shards_.size(), 0);

  // In-batch dedup state. Skewed serving traffic repeats hot keys within a
  // batch, so the table is probed once per DISTINCT key and the result is
  // fanned out to every duplicate afterwards. The scratch table maps the
  // full-key hash to the canonical probe's position; byte comparison
  // resolves hash collisions, so a colliding distinct key still gets its
  // own probe.
  constexpr uint32_t kEmptyDedupSlot = UINT32_MAX;
  size_t dedup_cap = 16;
  while (dedup_cap < n * 2) dedup_cap <<= 1;
  const size_t dedup_mask = dedup_cap - 1;
  std::vector<uint32_t>& dedup_table = scr.dedup_table;
  dedup_table.assign(dedup_cap, kEmptyDedupSlot);
  std::vector<Dup>& dups = scr.dups;
  dups.clear();

  const bool any_failpoint = FailpointRegistry::Instance().AnyArmed();
  uint64_t gets = 0, hits = 0, misses = 0, expired = 0;
  const uint64_t view_seed = ViewHashSeed(view);

  for (size_t i = 0; i < n; ++i) {
    if (any_failpoint) {
      Status injected =
          FailpointRegistry::Instance().Evaluate("online_store.get");
      if (!injected.ok()) {
        errs[i] = std::move(injected);  // No counters, exactly like Get.
        continue;
      }
    }
    ++gets;
    // Canonical entity-key form appended straight into the arena — the
    // same bytes EntityKeyToString would produce, without materializing a
    // per-key StatusOr<std::string>.
    const Value& ek = entity_keys[i];
    const uint32_t offset = static_cast<uint32_t>(arena.size());
    arena += view;
    arena += '\x1f';
    switch (ek.type()) {
      case FeatureType::kInt64: {
        char digits[20];
        auto res = std::to_chars(digits, digits + sizeof(digits),
                                 ek.int64_value());
        arena.append(digits, res.ptr);
        break;
      }
      case FeatureType::kString:
        arena += ek.string_value();
        break;
      default:
        arena.resize(offset);  // Roll back the partial full key.
        ++misses;
        errs[i] = Status::InvalidArgument(
            "entity key must be INT64 or STRING, got " +
            std::string(FeatureTypeToString(ek.type())));
        continue;
    }
    Probe p;
    p.offset = offset;
    p.key_offset = offset + static_cast<uint32_t>(view.size()) + 1;
    p.len = static_cast<uint32_t>(arena.size()) - offset;
    const uint64_t h = CellKeyHash(
        view_seed, std::string_view(arena).substr(p.key_offset));
    bool is_dup = false;
    for (size_t slot = h & dedup_mask;; slot = (slot + 1) & dedup_mask) {
      const uint32_t j = dedup_table[slot];
      if (j == kEmptyDedupSlot) {
        dedup_table[slot] = static_cast<uint32_t>(probes.size());
        break;
      }
      const Probe& q = probes[j];
      if (q.hash == h && q.len == p.len &&
          arena.compare(q.offset, q.len, arena, offset, p.len) == 0) {
        dups.push_back(Dup{j, static_cast<uint32_t>(i)});
        arena.resize(offset);  // The canonical probe's bytes suffice.
        is_dup = true;
        break;
      }
    }
    if (is_dup) continue;
    p.hash = h;
    p.index = static_cast<uint32_t>(i);
    p.shard = static_cast<uint32_t>(h % shards_.size());
    p.cells = &shards_[p.shard]->cells;
    probes.push_back(p);
    ++shard_counts[p.shard];
  }

  // Pass 2 — counting-sort the probes themselves into shard order so each
  // shard lock is taken exactly once per batch and the probe stages below
  // walk one contiguous array (an index-indirection per stage call adds
  // up across four stages).
  std::vector<uint32_t>& shard_start = scr.shard_start;
  shard_start.assign(shards_.size() + 1, 0);
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_start[s + 1] = shard_start[s] + shard_counts[s];
  }
  std::vector<Probe>& sorted = scr.sorted;
  sorted.clear();
  sorted.resize(probes.size());
  {
    std::vector<uint32_t>& cursor = scr.cursor;
    cursor.assign(shard_start.begin(), shard_start.end() - 1);
    for (const Probe& p : probes) {
      sorted[cursor[p.shard]++] = p;
    }
  }

  // Pass 3 — take every touched shard's lock up front (shared, in
  // ascending index order; writers only ever hold one shard lock, so the
  // ordering cannot deadlock), then probe the CellMaps in four sweeps that
  // span the WHOLE batch: warm every probe's tag-array window, walk the
  // (now warm) tags to locate and prefetch candidate slots, chase the
  // candidates' heap payloads, then confirm keys and copy rows from warm
  // lines. Batch-wide sweeps keep hundreds of independent miss chains in
  // flight; per-shard sweeps would expose the stage-transition latency
  // once per shard group instead of once per batch.
  std::vector<std::shared_lock<std::shared_mutex>>& locks = scr.locks;
  locks.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shard_counts[s] != 0) locks.emplace_back(shards_[s]->mu);
  }
  // Loaded after every lock is held: a writer publishes a TTL'd cell only
  // after setting the flag, and its unlock synchronizes with our acquire
  // of that shard's lock, so any cell visible below is covered.
  const bool check_ttl = may_have_ttl_.load(std::memory_order_relaxed);
  std::vector<int64_t>& candidates = scr.candidates;
  candidates.assign(sorted.size(), CellMap::kNoCandidate);
  enum : uint8_t { kHit = 0, kMiss = 1, kExpired = 2 };
  std::vector<uint8_t>& outcome = scr.outcome;
  outcome.assign(n, kMiss);  // Indexed by request position.

  // Rolling software pipeline. Issuing the whole batch's prefetches in
  // bulk sweeps would overflow the core's handful of line-fill buffers and
  // drop most of them; bounded lookahead keeps just enough independent
  // miss chains in flight. Stage spacing: tag-array window at +32 probes,
  // candidate slot at +20, heap payloads at +8, confirm at 0.
  constexpr uint32_t kBucketAhead = 32, kSlotAhead = 20, kRowAhead = 8;
  const uint32_t total = static_cast<uint32_t>(sorted.size());
  auto prefetch_bucket = [&](uint32_t pos) {
    const Probe& p = sorted[pos];
    p.cells->PrefetchBucket(p.hash);
  };
  auto locate_candidate = [&](uint32_t pos) {
    const Probe& p = sorted[pos];
    candidates[pos] = p.cells->PrefetchCandidate(p.hash);
  };
  auto prefetch_row = [&](uint32_t pos) {
    sorted[pos].cells->PrefetchRowAt(candidates[pos]);
  };
  for (uint32_t pos = 0; pos < total && pos < kBucketAhead; ++pos) {
    prefetch_bucket(pos);
  }
  for (uint32_t pos = 0; pos < total && pos < kSlotAhead; ++pos) {
    locate_candidate(pos);
  }
  for (uint32_t pos = 0; pos < total && pos < kRowAhead; ++pos) {
    prefetch_row(pos);
  }
  for (uint32_t pos = 0; pos < total; ++pos) {
    if (pos + kBucketAhead < total) prefetch_bucket(pos + kBucketAhead);
    if (pos + kSlotAhead < total) locate_candidate(pos + kSlotAhead);
    if (pos + kRowAhead < total) prefetch_row(pos + kRowAhead);
    const Probe& p = sorted[pos];
    std::string_view full_key(arena.data() + p.offset, p.len);
    const OnlineCell* cell =
        p.cells->FindFrom(candidates[pos], p.hash, full_key);
    if (cell == nullptr) {
      ++misses;
      errs[p.index] = Status::NotFound(
          "no online value for '" +
          std::string(arena, p.key_offset, p.offset + p.len - p.key_offset) +
          "' in view '" + view + "'");
      continue;
    }
    if (check_ttl && cell->expires_at <= now) {
      ++expired;
      ++misses;
      outcome[p.index] = kExpired;
      errs[p.index] = Status::NotFound(
          "online value for '" +
          std::string(arena, p.key_offset, p.offset + p.len - p.key_offset) +
          "' expired");
      continue;
    }
    ++hits;
    outcome[p.index] = kHit;
    found[p.index] = cell;
  }

  // Fan duplicate keys out from their canonical probe's result. The whole
  // batch resolves against one locked snapshot at one `now`, so each
  // duplicate's answer — and its counter contribution — is exactly what a
  // per-key Get would have produced.
  for (const Dup& d : dups) {
    const uint32_t ci = probes[d.canonical].index;
    switch (outcome[ci]) {
      case kHit:
        ++hits;
        found[d.index] = found[ci];
        break;
      case kExpired:
        ++expired;
        ++misses;
        errs[d.index] = errs[ci];
        break;
      default:
        ++misses;
        errs[d.index] = errs[ci];
        break;
    }
  }

  // Assemble the results in request order while the shard locks are still
  // held — the cell pointers are only stable under them.
  std::vector<StatusOr<Row>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (found[i] != nullptr) {
      out.emplace_back(found[i]->row);
    } else {
      out.emplace_back(std::move(errs[i]));
    }
  }
  locks.clear();

  gets_.fetch_add(gets, std::memory_order_relaxed);
  if (hits) hits_.fetch_add(hits, std::memory_order_relaxed);
  if (misses) misses_.fetch_add(misses, std::memory_order_relaxed);
  if (expired) expired_.fetch_add(expired, std::memory_order_relaxed);
  return out;
}

StatusOr<Timestamp> OnlineStore::GetEventTime(const std::string& view,
                                              const Value& entity_key,
                                              Timestamp now) const {
  MLFS_ASSIGN_OR_RETURN(std::string key, EntityKeyToString(entity_key));
  std::string full_key = FullKey(view, key);
  const uint64_t h = CellKeyHash(ViewHashSeed(view), key);
  Shard& shard = ShardFor(h);
  std::shared_lock lock(shard.mu);
  const OnlineCell* cell = shard.cells.Find(h, full_key);
  if (cell == nullptr || cell->expires_at <= now) {
    return Status::NotFound("no live online value for '" + key + "'");
  }
  return cell->event_time;
}

size_t OnlineStore::EvictExpired(Timestamp now) {
  size_t evicted = 0;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    evicted += shard->cells.EraseIf(
        [&](const std::string&, const OnlineCell& cell) {
          if (cell.expires_at > now) return false;
          shard->approx_bytes -= cell.row.ByteSize();
          return true;
        });
  }
  return evicted;
}

size_t OnlineStore::DropView(const std::string& view) {
  std::string prefix = view + '\x1f';
  size_t dropped = 0;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    dropped += shard->cells.EraseIf(
        [&](const std::string& full_key, const OnlineCell& cell) {
          if (full_key.compare(0, prefix.size(), prefix) != 0) return false;
          shard->approx_bytes -= cell.row.ByteSize();
          return true;
        });
  }
  return dropped;
}

OnlineStoreStats OnlineStore::stats() const {
  OnlineStoreStats s;
  s.puts = puts_.load(std::memory_order_relaxed);
  s.gets = gets_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.stale_writes = stale_writes_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    s.num_cells += shard->cells.size();
    s.approx_bytes += shard->approx_bytes;
  }
  return s;
}

namespace {
constexpr uint32_t kOnlineSnapshotMagic = 0x4d4c4f4e;  // "MLON"
}  // namespace

std::string OnlineStore::Snapshot() const {
  Encoder enc;
  enc.PutFixed32(kOnlineSnapshotMagic);
  {
    std::shared_lock lock(views_mu_);
    enc.PutVarint64(views_.size());
    for (const auto& [view, schema] : views_) {
      enc.PutString(view);
      enc.PutSchema(*schema);
    }
  }
  // Cells: count first requires a pass; encode per shard with counts.
  enc.PutVarint64(shards_.size());
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mu);
    enc.PutVarint64(shard->cells.size());
    shard->cells.ForEach([&](const std::string& full_key,
                             const OnlineCell& cell) {
      enc.PutString(full_key);
      enc.PutFixed64(static_cast<uint64_t>(cell.event_time));
      enc.PutFixed64(static_cast<uint64_t>(cell.write_time));
      enc.PutFixed64(static_cast<uint64_t>(cell.expires_at));
      enc.PutRow(cell.row);
    });
  }
  return enc.Release();
}

Status OnlineStore::Restore(std::string_view snapshot) {
  Decoder dec(snapshot);
  MLFS_ASSIGN_OR_RETURN(uint32_t magic, dec.GetFixed32());
  if (magic != kOnlineSnapshotMagic) {
    return Status::Corruption("bad online-store snapshot magic");
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t num_views, dec.GetVarint64());
  for (uint64_t i = 0; i < num_views; ++i) {
    MLFS_ASSIGN_OR_RETURN(std::string view, dec.GetString());
    MLFS_ASSIGN_OR_RETURN(SchemaPtr schema, dec.GetSchema());
    MLFS_RETURN_IF_ERROR(CreateView(view, std::move(schema)));
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t num_shards, dec.GetVarint64());
  for (uint64_t s = 0; s < num_shards; ++s) {
    MLFS_ASSIGN_OR_RETURN(uint64_t num_cells, dec.GetVarint64());
    for (uint64_t c = 0; c < num_cells; ++c) {
      MLFS_ASSIGN_OR_RETURN(std::string full_key, dec.GetString());
      size_t sep = full_key.find('\x1f');
      if (sep == std::string::npos) {
        return Status::Corruption("cell key without view separator");
      }
      std::string view = full_key.substr(0, sep);
      MLFS_ASSIGN_OR_RETURN(uint64_t event_time, dec.GetFixed64());
      MLFS_ASSIGN_OR_RETURN(uint64_t write_time, dec.GetFixed64());
      MLFS_ASSIGN_OR_RETURN(uint64_t expires_at, dec.GetFixed64());
      MLFS_ASSIGN_OR_RETURN(SchemaPtr schema, ViewSchema(view));
      MLFS_ASSIGN_OR_RETURN(Row row, dec.GetRow(schema));
      if (static_cast<Timestamp>(expires_at) != kMaxTimestamp) {
        may_have_ttl_.store(true, std::memory_order_relaxed);
      }
      // Re-shard on restore (shard count may differ).
      const uint64_t h = CellKeyHash(
          ViewHashSeed(view),
          std::string_view(full_key).substr(view.size() + 1));
      Shard& shard = ShardFor(h);
      std::lock_guard lock(shard.mu);
      auto [cell, inserted] = shard.cells.Insert(h, full_key, OnlineCell{});
      if (inserted) {
        shard.approx_bytes += row.ByteSize();
        *cell = OnlineCell{std::move(row), static_cast<Timestamp>(event_time),
                           static_cast<Timestamp>(write_time),
                           static_cast<Timestamp>(expires_at)};
      }
    }
  }
  return Status::OK();
}

}  // namespace mlfs
