#include "storage/online_store.h"

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/serde.h"
#include "storage/entity_key.h"

namespace mlfs {

OnlineStore::OnlineStore(OnlineStoreOptions options)
    : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string OnlineStore::FullKey(const std::string& view,
                                 const std::string& key) {
  std::string full;
  full.reserve(view.size() + 1 + key.size());
  full += view;
  full += '\x1f';  // Unit separator; views cannot contain it.
  full += key;
  return full;
}

OnlineStore::Shard& OnlineStore::ShardFor(const std::string& full_key) const {
  uint64_t h = HashBytes(full_key);
  return *shards_[h % shards_.size()];
}

Status OnlineStore::CreateView(const std::string& view, SchemaPtr schema) {
  if (view.empty() || view.find('\x1f') != std::string::npos) {
    return Status::InvalidArgument("bad view name");
  }
  if (schema == nullptr) {
    return Status::InvalidArgument("view schema is null");
  }
  std::lock_guard lock(views_mu_);
  auto [it, inserted] = views_.emplace(view, std::move(schema));
  if (!inserted) {
    return Status::AlreadyExists("view '" + view + "' already exists");
  }
  return Status::OK();
}

bool OnlineStore::HasView(const std::string& view) const {
  std::lock_guard lock(views_mu_);
  return views_.count(view) > 0;
}

StatusOr<SchemaPtr> OnlineStore::ViewSchema(const std::string& view) const {
  std::lock_guard lock(views_mu_);
  auto it = views_.find(view);
  if (it == views_.end()) {
    return Status::NotFound("view '" + view + "' not found");
  }
  return it->second;
}

Status OnlineStore::Put(const std::string& view, const Value& entity_key,
                        Row row, Timestamp event_time, Timestamp write_time,
                        Timestamp ttl) {
  // Injected before any counter/state mutation so stats invariants hold
  // under fault injection.
  MLFS_FAILPOINT("online_store.put");
  MLFS_ASSIGN_OR_RETURN(SchemaPtr schema, ViewSchema(view));
  if (row.schema() == nullptr || !(*row.schema() == *schema)) {
    return Status::InvalidArgument("row schema does not match view '" + view +
                                   "'");
  }
  MLFS_ASSIGN_OR_RETURN(std::string key, EntityKeyToString(entity_key));
  if (ttl <= 0) ttl = options_.default_ttl;
  Timestamp expires_at =
      (ttl <= 0) ? kMaxTimestamp
                 : (write_time > kMaxTimestamp - ttl ? kMaxTimestamp
                                                     : write_time + ttl);
  std::string full_key = FullKey(view, key);
  Shard& shard = ShardFor(full_key);
  puts_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(shard.mu);
  auto it = shard.cells.find(full_key);
  if (it != shard.cells.end()) {
    if (it->second.event_time > event_time) {
      stale_writes_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();  // Keep the fresher cell.
    }
    shard.approx_bytes -= it->second.row.ByteSize();
    shard.approx_bytes += row.ByteSize();
    it->second =
        Cell{std::move(row), event_time, write_time, expires_at};
    return Status::OK();
  }
  shard.approx_bytes += row.ByteSize();
  shard.cells.emplace(std::move(full_key),
                      Cell{std::move(row), event_time, write_time,
                           expires_at});
  return Status::OK();
}

StatusOr<Row> OnlineStore::Get(const std::string& view,
                               const Value& entity_key, Timestamp now) const {
  MLFS_FAILPOINT("online_store.get");
  gets_.fetch_add(1, std::memory_order_relaxed);
  auto keyor = EntityKeyToString(entity_key);
  if (!keyor.ok()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return keyor.status();
  }
  std::string full_key = FullKey(view, *keyor);
  Shard& shard = ShardFor(full_key);
  std::lock_guard lock(shard.mu);
  auto it = shard.cells.find(full_key);
  if (it == shard.cells.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("no online value for '" + *keyor + "' in view '" +
                            view + "'");
  }
  if (it->second.expires_at <= now) {
    expired_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("online value for '" + *keyor + "' expired");
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.row;
}

std::vector<StatusOr<Row>> OnlineStore::MultiGet(
    const std::string& view, const std::vector<Value>& entity_keys,
    Timestamp now) const {
  std::vector<StatusOr<Row>> out;
  out.reserve(entity_keys.size());
  for (const Value& key : entity_keys) {
    out.push_back(Get(view, key, now));
  }
  return out;
}

StatusOr<Timestamp> OnlineStore::GetEventTime(const std::string& view,
                                              const Value& entity_key,
                                              Timestamp now) const {
  MLFS_ASSIGN_OR_RETURN(std::string key, EntityKeyToString(entity_key));
  std::string full_key = FullKey(view, key);
  Shard& shard = ShardFor(full_key);
  std::lock_guard lock(shard.mu);
  auto it = shard.cells.find(full_key);
  if (it == shard.cells.end() || it->second.expires_at <= now) {
    return Status::NotFound("no live online value for '" + key + "'");
  }
  return it->second.event_time;
}

size_t OnlineStore::EvictExpired(Timestamp now) {
  size_t evicted = 0;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    for (auto it = shard->cells.begin(); it != shard->cells.end();) {
      if (it->second.expires_at <= now) {
        shard->approx_bytes -= it->second.row.ByteSize();
        it = shard->cells.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  return evicted;
}

size_t OnlineStore::DropView(const std::string& view) {
  std::string prefix = view + '\x1f';
  size_t dropped = 0;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    for (auto it = shard->cells.begin(); it != shard->cells.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        shard->approx_bytes -= it->second.row.ByteSize();
        it = shard->cells.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

OnlineStoreStats OnlineStore::stats() const {
  OnlineStoreStats s;
  s.puts = puts_.load(std::memory_order_relaxed);
  s.gets = gets_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.stale_writes = stale_writes_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    s.num_cells += shard->cells.size();
    s.approx_bytes += shard->approx_bytes;
  }
  return s;
}

namespace {
constexpr uint32_t kOnlineSnapshotMagic = 0x4d4c4f4e;  // "MLON"
}  // namespace

std::string OnlineStore::Snapshot() const {
  Encoder enc;
  enc.PutFixed32(kOnlineSnapshotMagic);
  {
    std::lock_guard lock(views_mu_);
    enc.PutVarint64(views_.size());
    for (const auto& [view, schema] : views_) {
      enc.PutString(view);
      enc.PutSchema(*schema);
    }
  }
  // Cells: count first requires a pass; encode per shard with counts.
  enc.PutVarint64(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    enc.PutVarint64(shard->cells.size());
    for (const auto& [full_key, cell] : shard->cells) {
      enc.PutString(full_key);
      enc.PutFixed64(static_cast<uint64_t>(cell.event_time));
      enc.PutFixed64(static_cast<uint64_t>(cell.write_time));
      enc.PutFixed64(static_cast<uint64_t>(cell.expires_at));
      enc.PutRow(cell.row);
    }
  }
  return enc.Release();
}

Status OnlineStore::Restore(std::string_view snapshot) {
  Decoder dec(snapshot);
  MLFS_ASSIGN_OR_RETURN(uint32_t magic, dec.GetFixed32());
  if (magic != kOnlineSnapshotMagic) {
    return Status::Corruption("bad online-store snapshot magic");
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t num_views, dec.GetVarint64());
  for (uint64_t i = 0; i < num_views; ++i) {
    MLFS_ASSIGN_OR_RETURN(std::string view, dec.GetString());
    MLFS_ASSIGN_OR_RETURN(SchemaPtr schema, dec.GetSchema());
    MLFS_RETURN_IF_ERROR(CreateView(view, std::move(schema)));
  }
  MLFS_ASSIGN_OR_RETURN(uint64_t num_shards, dec.GetVarint64());
  for (uint64_t s = 0; s < num_shards; ++s) {
    MLFS_ASSIGN_OR_RETURN(uint64_t num_cells, dec.GetVarint64());
    for (uint64_t c = 0; c < num_cells; ++c) {
      MLFS_ASSIGN_OR_RETURN(std::string full_key, dec.GetString());
      size_t sep = full_key.find('\x1f');
      if (sep == std::string::npos) {
        return Status::Corruption("cell key without view separator");
      }
      std::string view = full_key.substr(0, sep);
      MLFS_ASSIGN_OR_RETURN(uint64_t event_time, dec.GetFixed64());
      MLFS_ASSIGN_OR_RETURN(uint64_t write_time, dec.GetFixed64());
      MLFS_ASSIGN_OR_RETURN(uint64_t expires_at, dec.GetFixed64());
      MLFS_ASSIGN_OR_RETURN(SchemaPtr schema, ViewSchema(view));
      MLFS_ASSIGN_OR_RETURN(Row row, dec.GetRow(schema));
      // Re-shard on restore (shard count may differ).
      Shard& shard = ShardFor(full_key);
      std::lock_guard lock(shard.mu);
      shard.approx_bytes += row.ByteSize();
      shard.cells.emplace(
          std::move(full_key),
          Cell{std::move(row), static_cast<Timestamp>(event_time),
               static_cast<Timestamp>(write_time),
               static_cast<Timestamp>(expires_at)});
    }
  }
  return Status::OK();
}

}  // namespace mlfs
