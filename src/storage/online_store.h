#ifndef MLFS_STORAGE_ONLINE_STORE_H_
#define MLFS_STORAGE_ONLINE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/timestamp.h"
#include "storage/cell_map.h"

namespace mlfs {

/// Counters describing online-store traffic.
struct OnlineStoreStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t expired = 0;       // Gets that found only an expired cell.
  uint64_t stale_writes = 0;  // Puts dropped because a newer cell existed.
  size_t num_cells = 0;
  size_t approx_bytes = 0;
};

struct OnlineStoreOptions {
  /// Shards (each with its own lock) for concurrent serving.
  size_t num_shards = 16;
  /// Default TTL applied when a Put passes ttl == 0. 0 here means
  /// "never expire".
  Timestamp default_ttl = 0;
};

/// Low-latency, in-memory, latest-value store: the "online" half of the
/// dual datastore (paper §2.2.2, e.g. an in-memory DBMS). Keyed by
/// (view, entity); each cell holds the most recent feature row for that
/// entity with its event time and an optional TTL.
///
/// Last-writer-wins is by *event time*, not write time, so replayed or
/// out-of-order materializations can never clobber fresher data.
///
/// Thread-safe; sharded by key hash. Each shard is guarded by a
/// std::shared_mutex: readers (Get / MultiGet / GetEventTime / stats /
/// Snapshot) take shared locks and never serialize against each other,
/// writers (Put / EvictExpired / DropView / Restore) take exclusive locks.
/// MultiGet is shard-aware: it hashes every key up front (no per-key
/// composed-key heap allocation), groups keys by shard, and serves each
/// shard's keys under a single shared critical section.
class OnlineStore {
 public:
  explicit OnlineStore(OnlineStoreOptions options = {});

  /// Registers a view (a named feature row layout). Writes and reads
  /// validate against the view's schema.
  Status CreateView(const std::string& view, SchemaPtr schema);

  bool HasView(const std::string& view) const;
  StatusOr<SchemaPtr> ViewSchema(const std::string& view) const;

  /// Upserts the row for (view, entity_key). Drops the write (counted in
  /// stats().stale_writes) when an existing cell has a newer event time.
  /// `ttl` <= 0 selects options.default_ttl.
  Status Put(const std::string& view, const Value& entity_key, Row row,
             Timestamp event_time, Timestamp write_time, Timestamp ttl = 0);

  /// Latest row for (view, entity_key); NotFound on miss or when the cell
  /// has expired at `now`.
  StatusOr<Row> Get(const std::string& view, const Value& entity_key,
                    Timestamp now) const;

  /// Batched get preserving input order; individual entries may fail.
  /// Equivalent to a loop of Get (same per-key results, counters, and
  /// failpoint evaluations) but takes each shard lock once per batch
  /// instead of once per key.
  std::vector<StatusOr<Row>> MultiGet(const std::string& view,
                                      const std::vector<Value>& entity_keys,
                                      Timestamp now) const;

  /// Event time of the cell (freshness probes); NotFound semantics as Get.
  StatusOr<Timestamp> GetEventTime(const std::string& view,
                                   const Value& entity_key,
                                   Timestamp now) const;

  /// Removes expired cells; returns how many were evicted.
  size_t EvictExpired(Timestamp now);

  /// Removes every cell of `view`.
  size_t DropView(const std::string& view);

  OnlineStoreStats stats() const;

  /// Serializes views (name + schema) and all cells. Traffic counters are
  /// not persisted.
  std::string Snapshot() const;

  /// Restores a Snapshot() into this store; existing views with the same
  /// name must not exist.
  Status Restore(std::string_view snapshot);

 private:
  /// Cells live in a prefetch-friendly open-addressing table (CellMap)
  /// keyed by the composed "view\x1fentity" string; every store operation
  /// computes the key hash exactly once and passes it through.
  struct Shard {
    mutable std::shared_mutex mu;
    CellMap cells;
    size_t approx_bytes = 0;
  };

  Shard& ShardFor(uint64_t full_key_hash) const {
    return *shards_[full_key_hash % shards_.size()];
  }
  static std::string FullKey(const std::string& view, const std::string& key);

  OnlineStoreOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::shared_mutex views_mu_;
  std::unordered_map<std::string, SchemaPtr> views_;

  /// False until any cell is written with a real TTL; lets batched reads
  /// skip the expiry branch entirely for the common no-TTL deployment.
  mutable std::atomic<bool> may_have_ttl_{false};

  mutable std::atomic<uint64_t> puts_{0};
  mutable std::atomic<uint64_t> gets_{0};
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> expired_{0};
  mutable std::atomic<uint64_t> stale_writes_{0};
};

}  // namespace mlfs

#endif  // MLFS_STORAGE_ONLINE_STORE_H_
