#include "storage/segment.h"

#include <cstring>
#include <unordered_map>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/serde.h"
#include "expr/column_batch.h"

namespace mlfs {
namespace {

constexpr uint32_t kSegmentMagic = 0x47534c4d;  // "MLSG"
constexpr uint32_t kSegmentVersion = 1;

// Raw little-endian-host loads/stores. The column buffers use memcpy'd host
// integers (like FastHash64) rather than the serde byte-by-byte codec: the
// sections are accessed in place through the file mapping, so load cost is
// what matters. Segments are scratch + checkpoint artifacts for one host,
// not a cross-architecture interchange format.
uint64_t LoadU64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

uint32_t LoadU32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void AppendU64(std::string* buf, uint64_t v) {
  buf->append(reinterpret_cast<const char*>(&v), 8);
}

void AppendU32(std::string* buf, uint32_t v) {
  buf->append(reinterpret_cast<const char*>(&v), 4);
}

void AppendVarint(std::string* buf, uint64_t v) {
  while (v >= 0x80) {
    buf->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf->push_back(static_cast<char>(v));
}

uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t u) {
  return static_cast<int64_t>((u >> 1) ^ (0 - (u & 1)));
}

// Reads one varint from [p, end); advances *p. False on overrun/overlong.
bool ReadVarint(const unsigned char** p, const unsigned char* end,
                uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (*p < end && shift < 64) {
    unsigned char byte = **p;
    ++*p;
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

ColumnEncoding EncodingFor(FeatureType type) {
  switch (type) {
    case FeatureType::kNull:
      return ColumnEncoding::kNullOnly;
    case FeatureType::kBool:
      return ColumnEncoding::kBool;
    case FeatureType::kInt64:
      return ColumnEncoding::kRaw64;
    case FeatureType::kDouble:
      return ColumnEncoding::kRaw64;
    case FeatureType::kString:
      return ColumnEncoding::kDictionary;
    case FeatureType::kTimestamp:
      return ColumnEncoding::kDeltaTimestamp;
    case FeatureType::kEmbedding:
      return ColumnEncoding::kFloatList;
  }
  return ColumnEncoding::kNullOnly;
}

}  // namespace

StatusOr<std::string> Segment::Encode(const SchemaPtr& schema,
                                      int64_t partition_id, int entity_idx,
                                      int time_idx,
                                      std::span<const Row> rows) {
  if (schema == nullptr) {
    return Status::InvalidArgument("segment needs a schema");
  }
  if (rows.empty()) {
    return Status::InvalidArgument("cannot seal an empty segment");
  }
  const size_t n = rows.size();
  const size_t ncols = schema->num_fields();
  if (entity_idx < 0 || static_cast<size_t>(entity_idx) >= ncols ||
      time_idx < 0 || static_cast<size_t>(time_idx) >= ncols) {
    return Status::InvalidArgument("segment entity/time index out of range");
  }
  if (schema->field(time_idx).type != FeatureType::kTimestamp) {
    return Status::InvalidArgument("segment time column is not a timestamp");
  }
  for (const Row& row : rows) {
    if (row.schema() == nullptr || !(*row.schema() == *schema)) {
      return Status::InvalidArgument("segment rows have mixed schemas");
    }
  }
  Timestamp min_ts = kMaxTimestamp;
  Timestamp max_ts = kMinTimestamp;
  for (const Row& row : rows) {
    const Value& tv = row.value(time_idx);
    if (tv.is_null()) {
      return Status::InvalidArgument("segment row has null event time");
    }
    min_ts = std::min(min_ts, tv.time_value());
    max_ts = std::max(max_ts, tv.time_value());
  }

  std::vector<std::string> col_bufs(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    const FeatureType type = schema->field(c).type;
    const ColumnEncoding enc = EncodingFor(type);
    std::string& buf = col_bufs[c];
    bool has_nulls = false;
    for (const Row& row : rows) {
      if (row.value(c).is_null()) {
        has_nulls = true;
        break;
      }
    }
    buf.push_back(has_nulls ? 1 : 0);
    if (has_nulls) {
      std::string bitmap((n + 7) / 8, '\0');
      for (size_t r = 0; r < n; ++r) {
        if (rows[r].value(c).is_null()) {
          bitmap[r >> 3] |= static_cast<char>(1u << (r & 7));
        }
      }
      buf.append(bitmap);
    }
    switch (enc) {
      case ColumnEncoding::kNullOnly:
        for (size_t r = 0; r < n; ++r) {
          if (!rows[r].value(c).is_null()) {
            return Status::InvalidArgument(
                "non-null value in a NULL-typed column");
          }
        }
        break;
      case ColumnEncoding::kRaw64:
        for (size_t r = 0; r < n; ++r) {
          const Value& v = rows[r].value(c);
          uint64_t bits = 0;
          if (!v.is_null()) {
            if (type == FeatureType::kInt64) {
              bits = static_cast<uint64_t>(v.int64_value());
            } else {
              double d = v.double_value();
              std::memcpy(&bits, &d, 8);
            }
          }
          AppendU64(&buf, bits);
        }
        break;
      case ColumnEncoding::kBool:
        for (size_t r = 0; r < n; ++r) {
          const Value& v = rows[r].value(c);
          buf.push_back(!v.is_null() && v.bool_value() ? 1 : 0);
        }
        break;
      case ColumnEncoding::kDeltaTimestamp: {
        // Null cells repeat the previous value (delta 0); the bitmap is
        // what makes them NULL on read.
        Timestamp prev = 0;
        for (size_t r = 0; r < n; ++r) {
          const Value& v = rows[r].value(c);
          Timestamp t = v.is_null() ? prev : v.time_value();
          AppendVarint(&buf, ZigzagEncode(t - prev));
          prev = t;
        }
        break;
      }
      case ColumnEncoding::kDictionary: {
        // Dictionary in first-appearance order; null cells take code 0.
        std::unordered_map<std::string_view, uint32_t> dict;
        std::vector<std::string_view> dict_order;
        std::vector<uint32_t> codes(n, 0);
        for (size_t r = 0; r < n; ++r) {
          const Value& v = rows[r].value(c);
          if (v.is_null()) continue;
          std::string_view s = v.string_value();
          auto [it, inserted] =
              dict.emplace(s, static_cast<uint32_t>(dict_order.size()));
          if (inserted) dict_order.push_back(s);
          codes[r] = it->second;
        }
        AppendU32(&buf, static_cast<uint32_t>(dict_order.size()));
        for (uint32_t code : codes) AppendU32(&buf, code);
        uint32_t offset = 0;
        AppendU32(&buf, 0);
        for (std::string_view s : dict_order) {
          if (s.size() > UINT32_MAX - offset) {
            return Status::InvalidArgument("dictionary blob exceeds 4 GiB");
          }
          offset += static_cast<uint32_t>(s.size());
          AppendU32(&buf, offset);
        }
        for (std::string_view s : dict_order) buf.append(s);
        break;
      }
      case ColumnEncoding::kFloatList: {
        uint64_t fence = 0;
        AppendU64(&buf, 0);
        for (size_t r = 0; r < n; ++r) {
          const Value& v = rows[r].value(c);
          if (!v.is_null()) fence += v.embedding_value().size();
          AppendU64(&buf, fence);
        }
        for (size_t r = 0; r < n; ++r) {
          const Value& v = rows[r].value(c);
          if (v.is_null()) continue;
          const std::vector<float>& e = v.embedding_value();
          buf.append(reinterpret_cast<const char*>(e.data()),
                     e.size() * sizeof(float));
        }
        break;
      }
    }
  }

  Encoder header;
  header.PutFixed64(static_cast<uint64_t>(partition_id));
  header.PutVarint64(static_cast<uint64_t>(entity_idx));
  header.PutVarint64(static_cast<uint64_t>(time_idx));
  header.PutSchema(*schema);
  header.PutVarint64(n);
  header.PutFixed64(static_cast<uint64_t>(min_ts));
  header.PutFixed64(static_cast<uint64_t>(max_ts));
  header.PutVarint64(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    header.PutU8(static_cast<uint8_t>(EncodingFor(schema->field(c).type)));
    header.PutFixed64(HashBytes(col_bufs[c]));
    header.PutVarint64(col_bufs[c].size());
  }

  std::string body = header.Release();
  for (const std::string& buf : col_bufs) body.append(buf);
  // HashBytes(body) with the default seed is Fnv1a64(body) — exactly the
  // envelope trailer Seal writes, so the blob bytes are unchanged from the
  // pre-BlockFile format.
  return BlockFile::Seal(kSegmentMagic, kSegmentVersion, body);
}

Status Segment::Parse() {
  // The envelope (magic, version, length, body checksum) was validated by
  // the BlockFile factory; everything here is body-internal structure.
  const std::string_view body = file_->body();
  Decoder dec(body);
  MLFS_ASSIGN_OR_RETURN(uint64_t pid_bits, dec.GetFixed64());
  partition_id_ = static_cast<int64_t>(pid_bits);
  MLFS_ASSIGN_OR_RETURN(uint64_t eidx, dec.GetVarint64());
  MLFS_ASSIGN_OR_RETURN(uint64_t tidx, dec.GetVarint64());
  MLFS_ASSIGN_OR_RETURN(schema_, dec.GetSchema());
  MLFS_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint64());
  MLFS_ASSIGN_OR_RETURN(uint64_t min_bits, dec.GetFixed64());
  MLFS_ASSIGN_OR_RETURN(uint64_t max_bits, dec.GetFixed64());
  min_ts_ = static_cast<Timestamp>(min_bits);
  max_ts_ = static_cast<Timestamp>(max_bits);
  MLFS_ASSIGN_OR_RETURN(uint64_t ncols, dec.GetVarint64());
  if (n == 0) return Status::Corruption("segment: zero rows");
  if (ncols != schema_->num_fields()) {
    return Status::Corruption("segment: column count does not match schema");
  }
  if (eidx >= ncols || tidx >= ncols) {
    return Status::Corruption("segment: entity/time index out of range");
  }
  entity_idx_ = static_cast<int>(eidx);
  time_idx_ = static_cast<int>(tidx);
  const FieldSpec& efield = schema_->field(entity_idx_);
  if (efield.type != FeatureType::kInt64 &&
      efield.type != FeatureType::kString) {
    return Status::Corruption("segment: entity column is not INT64/STRING");
  }
  if (schema_->field(time_idx_).type != FeatureType::kTimestamp) {
    return Status::Corruption("segment: time column is not TIMESTAMP");
  }
  num_rows_ = n;

  struct ColMeta {
    ColumnEncoding enc;
    uint64_t hash;
    uint64_t len;
  };
  std::vector<ColMeta> metas;
  metas.reserve(ncols);
  uint64_t cols_total = 0;
  for (size_t c = 0; c < ncols; ++c) {
    MLFS_ASSIGN_OR_RETURN(uint8_t enc_byte, dec.GetU8());
    if (enc_byte > static_cast<uint8_t>(ColumnEncoding::kFloatList)) {
      return Status::Corruption("segment: unknown column encoding");
    }
    MLFS_ASSIGN_OR_RETURN(uint64_t hash, dec.GetFixed64());
    MLFS_ASSIGN_OR_RETURN(uint64_t len, dec.GetVarint64());
    metas.push_back({static_cast<ColumnEncoding>(enc_byte), hash, len});
    cols_total += len;
  }
  if (dec.remaining() != cols_total) {
    return Status::Corruption("segment: column sections do not fill the body");
  }

  const unsigned char* cursor =
      reinterpret_cast<const unsigned char*>(body.data()) +
      (body.size() - dec.remaining());
  cols_.resize(ncols);
  delta_cols_.assign(ncols, {});
  const size_t bitmap_bytes = (n + 7) / 8;
  for (size_t c = 0; c < ncols; ++c) {
    const ColMeta& meta = metas[c];
    if (meta.enc != EncodingFor(schema_->field(c).type)) {
      return Status::Corruption(
          "segment: column encoding does not match schema type");
    }
    const unsigned char* buf = cursor;
    cursor += meta.len;
    if (HashBytes(std::string_view(reinterpret_cast<const char*>(buf),
                                   meta.len)) != meta.hash) {
      return Status::Corruption("segment: column " + std::to_string(c) +
                                " checksum mismatch");
    }
    Column& col = cols_[c];
    col.enc = meta.enc;
    if (meta.len < 1) {
      return Status::Corruption("segment: column section truncated");
    }
    const bool has_nulls = buf[0] != 0;
    size_t pos = 1;
    if (has_nulls) {
      if (meta.len < pos + bitmap_bytes) {
        return Status::Corruption("segment: null bitmap truncated");
      }
      col.nulls = buf + pos;
      pos += bitmap_bytes;
    }
    col.data = buf + pos;
    col.data_len = meta.len - pos;
    const auto data_end = col.data + col.data_len;
    switch (col.enc) {
      case ColumnEncoding::kNullOnly:
        if (col.data_len != 0) {
          return Status::Corruption("segment: NULL column carries data");
        }
        if (!has_nulls) {
          return Status::Corruption("segment: NULL column without null bits");
        }
        for (size_t r = 0; r < n; ++r) {
          if (!NullBit(col, r)) {
            return Status::Corruption(
                "segment: NULL column has a non-null row");
          }
        }
        break;
      case ColumnEncoding::kRaw64:
        if (col.data_len != 8 * n) {
          return Status::Corruption("segment: raw64 column has wrong size");
        }
        break;
      case ColumnEncoding::kBool:
        if (col.data_len != n) {
          return Status::Corruption("segment: bool column has wrong size");
        }
        for (size_t r = 0; r < n; ++r) {
          if (col.data[r] > 1) {
            return Status::Corruption("segment: bool column byte not 0/1");
          }
        }
        break;
      case ColumnEncoding::kDeltaTimestamp: {
        std::vector<Timestamp>& decoded = delta_cols_[c];
        decoded.reserve(n);
        const unsigned char* p = col.data;
        Timestamp prev = 0;
        for (size_t r = 0; r < n; ++r) {
          uint64_t u;
          if (!ReadVarint(&p, data_end, &u)) {
            return Status::Corruption("segment: timestamp stream truncated");
          }
          prev += ZigzagDecode(u);
          decoded.push_back(prev);
        }
        if (p != data_end) {
          return Status::Corruption(
              "segment: timestamp stream has trailing bytes");
        }
        break;
      }
      case ColumnEncoding::kDictionary: {
        if (col.data_len < 4) {
          return Status::Corruption("segment: dictionary header truncated");
        }
        col.dict_count = LoadU32(col.data);
        const uint64_t fixed =
            4 + 4 * static_cast<uint64_t>(n) +
            4 * (static_cast<uint64_t>(col.dict_count) + 1);
        if (col.data_len < fixed) {
          return Status::Corruption("segment: dictionary sections truncated");
        }
        col.codes = col.data + 4;
        col.dict_offsets = col.codes + 4 * n;
        col.dict_blob = col.dict_offsets + 4 * (col.dict_count + 1);
        const uint64_t blob_len = col.data_len - fixed;
        if (LoadU32(col.dict_offsets) != 0) {
          return Status::Corruption(
              "segment: dictionary offsets do not start at 0");
        }
        for (uint32_t d = 0; d < col.dict_count; ++d) {
          if (LoadU32(col.dict_offsets + 4 * d) >
              LoadU32(col.dict_offsets + 4 * (d + 1))) {
            return Status::Corruption(
                "segment: dictionary offsets not monotonic");
          }
        }
        if (LoadU32(col.dict_offsets + 4 * col.dict_count) != blob_len) {
          return Status::Corruption(
              "segment: dictionary blob length mismatch");
        }
        for (size_t r = 0; r < n; ++r) {
          if (NullBit(col, r)) continue;
          if (LoadU32(col.codes + 4 * r) >= col.dict_count) {
            return Status::Corruption(
                "segment: dictionary code out of range");
          }
        }
        break;
      }
      case ColumnEncoding::kFloatList: {
        const uint64_t fences_len = 8 * (static_cast<uint64_t>(n) + 1);
        if (col.data_len < fences_len) {
          return Status::Corruption("segment: float fences truncated");
        }
        col.fences = col.data;
        col.floats = col.data + fences_len;
        const uint64_t floats_len = col.data_len - fences_len;
        if (floats_len % 4 != 0) {
          return Status::Corruption("segment: float blob misaligned");
        }
        if (LoadU64(col.fences) != 0) {
          return Status::Corruption("segment: float fences not zero-based");
        }
        for (size_t r = 0; r < n; ++r) {
          if (LoadU64(col.fences + 8 * r) > LoadU64(col.fences + 8 * r + 8)) {
            return Status::Corruption("segment: float fences not monotonic");
          }
        }
        if (LoadU64(col.fences + 8 * n) != floats_len / 4) {
          return Status::Corruption("segment: float blob length mismatch");
        }
        break;
      }
    }
  }

  // The time column must be delta-encoded (verified above via EncodingFor)
  // and its decoded stream must agree with the header's min/max.
  const std::vector<Timestamp>& ts = delta_cols_[time_idx_];
  Timestamp lo = kMaxTimestamp;
  Timestamp hi = kMinTimestamp;
  for (Timestamp t : ts) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  if (lo != min_ts_ || hi != max_ts_) {
    return Status::Corruption("segment: min/max event time mismatch");
  }
  return Status::OK();
}

StatusOr<std::shared_ptr<const Segment>> Segment::FromBlockFile(
    BlockFilePtr file) {
  std::shared_ptr<Segment> seg(new Segment());
  seg->file_ = std::move(file);
  seg->data_ = seg->file_->data();
  MLFS_RETURN_IF_ERROR(seg->Parse());
  return std::shared_ptr<const Segment>(std::move(seg));
}

StatusOr<std::shared_ptr<const Segment>> Segment::FromBytes(
    std::string bytes) {
  MLFS_ASSIGN_OR_RETURN(BlockFilePtr file,
                        BlockFile::FromBytes(kSegmentMagic, kSegmentVersion,
                                             std::move(bytes), "segment"));
  return FromBlockFile(std::move(file));
}

StatusOr<std::shared_ptr<const Segment>> Segment::FromFile(
    std::string path, bool remove_file_on_destroy) {
  MLFS_FAILPOINT("segment.open");
  MLFS_ASSIGN_OR_RETURN(
      BlockFilePtr file,
      BlockFile::Map(kSegmentMagic, kSegmentVersion, std::move(path),
                     remove_file_on_destroy, "segment"));
  return FromBlockFile(std::move(file));
}

StatusOr<std::shared_ptr<const Segment>> Segment::SpillToFile(
    const Segment& seg, std::string path, bool remove_file_on_destroy) {
  // Same fault surface as FromFile: a spill ends in a (re)open, and the
  // fault suite arms "segment.open" to fail that reopen.
  MLFS_FAILPOINT("segment.open");
  MLFS_ASSIGN_OR_RETURN(
      BlockFilePtr file,
      BlockFile::Spill(kSegmentMagic, kSegmentVersion, seg.encoded(),
                       std::move(path), remove_file_on_destroy, "segment"));
  return FromBlockFile(std::move(file));
}

size_t Segment::resident_bytes() const {
  size_t total = spilled() ? 0 : data_.size();
  for (const std::vector<Timestamp>& d : delta_cols_) {
    total += d.size() * sizeof(Timestamp);
  }
  return total;
}

bool Segment::is_null(size_t col, size_t row) const {
  MLFS_DCHECK(col < cols_.size() && row < num_rows_);
  return NullBit(cols_[col], row);
}

Value Segment::value(size_t col, size_t row) const {
  MLFS_DCHECK(col < cols_.size() && row < num_rows_);
  const Column& c = cols_[col];
  if (NullBit(c, row)) return Value::Null();
  switch (c.enc) {
    case ColumnEncoding::kNullOnly:
      return Value::Null();
    case ColumnEncoding::kRaw64: {
      const uint64_t bits = LoadU64(c.data + 8 * row);
      if (schema_->field(col).type == FeatureType::kInt64) {
        return Value::Int64(static_cast<int64_t>(bits));
      }
      double d;
      std::memcpy(&d, &bits, 8);
      return Value::Double(d);
    }
    case ColumnEncoding::kBool:
      return Value::Bool(c.data[row] != 0);
    case ColumnEncoding::kDeltaTimestamp:
      return Value::Time(delta_cols_[col][row]);
    case ColumnEncoding::kDictionary: {
      const uint32_t code = LoadU32(c.codes + 4 * row);
      const uint32_t beg = LoadU32(c.dict_offsets + 4 * code);
      const uint32_t end = LoadU32(c.dict_offsets + 4 * (code + 1));
      return Value::String(
          std::string(reinterpret_cast<const char*>(c.dict_blob) + beg,
                      end - beg));
    }
    case ColumnEncoding::kFloatList: {
      const uint64_t beg = LoadU64(c.fences + 8 * row);
      const uint64_t end = LoadU64(c.fences + 8 * row + 8);
      std::vector<float> floats(end - beg);
      std::memcpy(floats.data(), c.floats + 4 * beg, 4 * (end - beg));
      return Value::Embedding(std::move(floats));
    }
  }
  return Value::Null();
}

void Segment::AppendProjected(size_t row, std::span<const int> cols,
                              std::vector<Value>* out) const {
  for (int c : cols) out->push_back(value(static_cast<size_t>(c), row));
}

void Segment::LoadColumn(size_t col, std::span<const uint32_t> rows,
                         ColumnVector* out) const {
  MLFS_DCHECK(col < cols_.size());
  const Column& c = cols_[col];
  const FeatureType type = schema_->field(col).type;
  const size_t n = rows.size();
  out->Reset(type, n);
  switch (c.enc) {
    case ColumnEncoding::kNullOnly:
      break;  // Reset(kNull) already marked every cell NULL.
    case ColumnEncoding::kRaw64: {
      if (type == FeatureType::kInt64) {
        int64_t* o = out->i64();
        for (size_t i = 0; i < n; ++i) {
          o[i] = static_cast<int64_t>(LoadU64(c.data + 8 * rows[i]));
        }
      } else {
        double* o = out->f64();
        for (size_t i = 0; i < n; ++i) {
          const uint64_t bits = LoadU64(c.data + 8 * rows[i]);
          std::memcpy(&o[i], &bits, 8);
        }
      }
      break;
    }
    case ColumnEncoding::kBool: {
      uint8_t* o = out->b8();
      for (size_t i = 0; i < n; ++i) o[i] = c.data[rows[i]] != 0;
      break;
    }
    case ColumnEncoding::kDeltaTimestamp: {
      const std::vector<Timestamp>& ts = delta_cols_[col];
      int64_t* o = out->i64();
      for (size_t i = 0; i < n; ++i) o[i] = ts[rows[i]];
      break;
    }
    case ColumnEncoding::kDictionary: {
      // Hand the VM a dictionary *view* — 4 bytes of code per row plus
      // borrowed dictionary buffers (the segment outlives the scan) —
      // instead of copying every string. String predicates then evaluate
      // once per distinct code; per-cell reads go through StringAt
      // transparently.
      out->ResetDictionary(n, c.dict_count, c.dict_offsets, c.dict_blob);
      uint32_t* codes = out->codes();
      for (size_t i = 0; i < n; ++i) codes[i] = LoadU32(c.codes + 4 * rows[i]);
      break;  // Null bits from the shared bitmap loop below.
    }
    case ColumnEncoding::kFloatList: {
      for (size_t i = 0; i < n; ++i) {
        if (NullBit(c, rows[i])) {
          out->AppendNullCell();
          continue;
        }
        const uint64_t beg = LoadU64(c.fences + 8 * rows[i]);
        const uint64_t end = LoadU64(c.fences + 8 * rows[i] + 8);
        out->AppendEmbeddingBytes(c.floats + 4 * beg, end - beg);
      }
      return;
    }
  }
  if (c.nulls != nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if (NullBit(c, rows[i])) out->SetNull(i);
    }
  }
}

}  // namespace mlfs
