#ifndef MLFS_STORAGE_SEGMENT_BATCH_H_
#define MLFS_STORAGE_SEGMENT_BATCH_H_

#include <span>

#include "expr/column_batch.h"
#include "storage/segment.h"

namespace mlfs {

/// BatchSource over a subset of one sealed segment's rows: column loads go
/// straight from the encoded (possibly memory-mapped) column buffers into
/// the VM's typed registers, so expressions evaluate over sealed data with
/// no Row or Value materialization. `rows` lists segment-local row indices
/// (e.g. the survivors of a time-range filter) and must outlive the source.
class SegmentBatchSource final : public BatchSource {
 public:
  SegmentBatchSource(const Segment* segment, std::span<const uint32_t> rows)
      : segment_(segment), rows_(rows) {}

  size_t num_rows() const override { return rows_.size(); }

  Status LoadColumn(int col, ColumnVector* out) const override {
    if (col < 0 ||
        static_cast<size_t>(col) >= segment_->schema()->num_fields()) {
      return Status::InvalidArgument("batch column index out of range");
    }
    segment_->LoadColumn(static_cast<size_t>(col), rows_, out);
    return Status::OK();
  }

 private:
  const Segment* segment_;
  std::span<const uint32_t> rows_;
};

}  // namespace mlfs

#endif  // MLFS_STORAGE_SEGMENT_BATCH_H_
