#ifndef MLFS_STORAGE_CELL_MAP_H_
#define MLFS_STORAGE_CELL_MAP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "common/logging.h"
#include "common/row.h"
#include "common/timestamp.h"

namespace mlfs {

/// One online-store cell: the latest feature row for a (view, entity) pair.
struct OnlineCell {
  Row row;
  Timestamp event_time = 0;
  Timestamp write_time = 0;
  Timestamp expires_at = 0;  // kMaxTimestamp when no TTL.
};

/// Open-addressing hash map from composed cell key ("view\x1fentity") to
/// OnlineCell, specialized for the online-store read path:
///
///  - Callers pass the 64-bit key hash explicitly, so a hash computed once
///    per batched lookup is never recomputed inside the table (a
///    std::unordered_map would rehash the key on every find).
///  - Probing walks a dense array of 8-byte hash tags (8 per cache line)
///    with linear probing; the wide slot array is touched only to confirm
///    the key on a tag match, so a miss costs one cache line.
///  - PrefetchBucket() / PrefetchCandidate() issue software prefetches so a
///    batched caller (OnlineStore::MultiGet) can overlap the memory latency
///    of many probes instead of paying each miss chain serially.
///
/// Erase leaves a tombstone; the table rehashes in place once tombstones
/// plus live entries pass 7/8 occupancy (doubling when live entries alone
/// justify it). Not thread-safe: the owning shard's lock provides exclusion.
class CellMap {
 public:
  CellMap() = default;
  CellMap(CellMap&&) = default;
  CellMap& operator=(CellMap&&) = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Returns the cell for `key` (whose hash is `hash`), or nullptr.
  const OnlineCell* Find(uint64_t hash, std::string_view key) const {
    if (size_ == 0) return nullptr;
    const uint64_t tag = HashToTag(hash);
    const size_t mask = hashes_.size() - 1;
    for (size_t i = tag & mask;; i = (i + 1) & mask) {
      const uint64_t t = hashes_[i];
      if (t == kEmptyTag) return nullptr;
      if (t == tag && slots_[i].key == key) return &slots_[i].cell;
    }
  }
  OnlineCell* Find(uint64_t hash, std::string_view key) {
    return const_cast<OnlineCell*>(
        static_cast<const CellMap*>(this)->Find(hash, key));
  }

  /// Inserts (key, cell) if absent. Returns the resident cell and whether
  /// it was newly inserted; an existing cell is left untouched.
  std::pair<OnlineCell*, bool> Insert(uint64_t hash, std::string_view key,
                                      OnlineCell cell) {
    MaybeGrow();
    const uint64_t tag = HashToTag(hash);
    const size_t mask = hashes_.size() - 1;
    size_t reuse = kNoSlot;
    for (size_t i = tag & mask;; i = (i + 1) & mask) {
      const uint64_t t = hashes_[i];
      if (t == kEmptyTag) {
        const size_t dst = (reuse != kNoSlot) ? reuse : i;
        if (dst == i) ++used_;  // Tombstone reuse does not raise occupancy.
        hashes_[dst] = tag;
        slots_[dst].key.assign(key);
        slots_[dst].cell = std::move(cell);
        ++size_;
        return {&slots_[dst].cell, true};
      }
      if (t == kTombstoneTag) {
        if (reuse == kNoSlot) reuse = i;
        continue;
      }
      if (t == tag && slots_[i].key == key) return {&slots_[i].cell, false};
    }
  }

  /// Removes `key` if present; returns whether a cell was removed.
  bool Erase(uint64_t hash, std::string_view key) {
    if (size_ == 0) return false;
    const uint64_t tag = HashToTag(hash);
    const size_t mask = hashes_.size() - 1;
    for (size_t i = tag & mask;; i = (i + 1) & mask) {
      const uint64_t t = hashes_[i];
      if (t == kEmptyTag) return false;
      if (t == tag && slots_[i].key == key) {
        EraseSlot(i);
        return true;
      }
    }
  }

  /// Calls f(key, cell) for every live entry (unspecified order).
  template <typename F>
  void ForEach(F&& f) const {
    for (size_t i = 0; i < hashes_.size(); ++i) {
      if (hashes_[i] >= kFirstRealTag) f(slots_[i].key, slots_[i].cell);
    }
  }

  /// Removes every entry for which f(key, cell) returns true; returns how
  /// many were removed. f may inspect the cell (e.g. to account bytes).
  template <typename F>
  size_t EraseIf(F&& f) {
    size_t erased = 0;
    for (size_t i = 0; i < hashes_.size(); ++i) {
      if (hashes_[i] >= kFirstRealTag && f(slots_[i].key, slots_[i].cell)) {
        EraseSlot(i);
        ++erased;
      }
    }
    return erased;
  }

  /// Prefetches the probe window for `hash` (the dense tag array).
  void PrefetchBucket(uint64_t hash) const {
    if (hashes_.empty()) return;
    Prefetch(&hashes_[HashToTag(hash) & (hashes_.size() - 1)]);
  }

  /// Walks the (already prefetched) tag array, prefetches the slot of the
  /// first tag match, and returns its index — or kNoCandidate when the
  /// probe chain ends at an empty slot first (a definitive miss). Key
  /// confirmation is deferred to FindFrom: a false positive only costs a
  /// prefetch of a colliding slot.
  static constexpr int64_t kNoCandidate = -1;
  int64_t PrefetchCandidate(uint64_t hash) const {
    if (size_ == 0) return kNoCandidate;
    const uint64_t tag = HashToTag(hash);
    const size_t mask = hashes_.size() - 1;
    for (size_t i = tag & mask;; i = (i + 1) & mask) {
      const uint64_t t = hashes_[i];
      if (t == kEmptyTag) return kNoCandidate;
      if (t == tag) {
        const char* p = reinterpret_cast<const char*>(&slots_[i]);
        Prefetch(p);
        Prefetch(p + 64);  // Slot{string key; OnlineCell} spans two lines.
        return static_cast<int64_t>(i);
      }
    }
  }

  /// Prefetches the heap payloads behind a candidate slot: the key bytes
  /// when they spill out of the small-string buffer (read by the key
  /// confirmation), and the row's shared value buffer, whose reference
  /// count the copy-on-write Row copy bumps. Only ADDRESSES already
  /// resident in the slot are read here — dereferencing the payload (even
  /// to test emptiness) would stall this stage on the very line it is
  /// supposed to prefetch.
  void PrefetchRowAt(int64_t slot) const {
    if (slot < 0) return;
    const Slot& s = slots_[static_cast<size_t>(slot)];
    Prefetch(s.key.data());
    Prefetch(s.cell.row.payload_address());
  }

  /// Find() resuming at a PrefetchCandidate() result; kNoCandidate is a
  /// miss. Continues down the probe chain on a hash-tag false positive.
  const OnlineCell* FindFrom(int64_t slot, uint64_t hash,
                             std::string_view key) const {
    if (slot < 0) return nullptr;
    const uint64_t tag = HashToTag(hash);
    const size_t mask = hashes_.size() - 1;
    for (size_t i = static_cast<size_t>(slot);; i = (i + 1) & mask) {
      const uint64_t t = hashes_[i];
      if (t == kEmptyTag) return nullptr;
      if (t == tag && slots_[i].key == key) return &slots_[i].cell;
    }
  }

 private:
  struct Slot {
    std::string key;
    OnlineCell cell;
  };

  static constexpr uint64_t kEmptyTag = 0;
  static constexpr uint64_t kTombstoneTag = 1;
  static constexpr uint64_t kFirstRealTag = 2;
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);
  static constexpr size_t kInitialCapacity = 16;

  /// Tags 0 and 1 are reserved; remap the (vanishingly rare) colliding
  /// hashes. The tag doubles as the probe start, so insert and find must
  /// derive the home index from the same remapped value.
  static uint64_t HashToTag(uint64_t h) { return h < kFirstRealTag ? h + kFirstRealTag : h; }

  /// Highest-locality prefetch (into L1): a batched caller consumes the
  /// line within a few dozen probes (~8KB in flight), and a lower hint
  /// would leave the consuming stage paying an L2/L3 hit per line anyway.
  static void Prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
    (void)p;
#endif
  }

  void EraseSlot(size_t i) {
    hashes_[i] = kTombstoneTag;
    slots_[i] = Slot{};  // Frees the key and the row payload eagerly.
    --size_;
  }

  /// Keeps at least one empty slot so probe loops always terminate.
  void MaybeGrow() {
    const size_t cap = hashes_.size();
    if (cap == 0) {
      Rehash(kInitialCapacity);
      return;
    }
    if ((used_ + 1) * 8 >= cap * 7) {
      // Double when live entries drove the occupancy; a same-size rehash
      // just sweeps tombstones left by heavy eviction.
      Rehash(size_ * 2 >= cap ? cap * 2 : cap);
    }
  }

  /// Asks the kernel to back a large, not-yet-touched allocation with
  /// transparent huge pages. Embedding-scale tables span hundreds of MB;
  /// 4K pages would make nearly every cold probe pay a TLB walk on top of
  /// its DRAM miss (and walks defeat the software prefetch pipeline).
  /// Must run between the allocation and the first touch, while the pages
  /// are still unfaulted.
  static void AdviseHugePages(void* p, size_t bytes) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
    constexpr size_t kMinBytes = 1 << 21;  // One 2MB huge page.
    if (p == nullptr || bytes < kMinBytes) return;
    const uintptr_t addr = reinterpret_cast<uintptr_t>(p);
    const uintptr_t first = (addr + kMinBytes - 1) & ~(kMinBytes - 1);
    const uintptr_t last = (addr + bytes) & ~(kMinBytes - 1);
    if (last > first) {
      madvise(reinterpret_cast<void*>(first), last - first, MADV_HUGEPAGE);
    }
#else
    (void)p;
    (void)bytes;
#endif
  }

  void Rehash(size_t new_cap) {
    MLFS_DCHECK((new_cap & (new_cap - 1)) == 0);
    std::vector<uint64_t> old_hashes = std::move(hashes_);
    std::vector<Slot> old_slots = std::move(slots_);
    hashes_.reserve(new_cap);
    AdviseHugePages(hashes_.data(), new_cap * sizeof(uint64_t));
    hashes_.assign(new_cap, kEmptyTag);
    slots_.clear();
    slots_.shrink_to_fit();  // Drop the old buffer before the fresh one.
    slots_.reserve(new_cap);
    AdviseHugePages(slots_.data(), new_cap * sizeof(Slot));
    slots_.resize(new_cap);
    const size_t mask = new_cap - 1;
    for (size_t i = 0; i < old_hashes.size(); ++i) {
      const uint64_t tag = old_hashes[i];
      if (tag < kFirstRealTag) continue;
      size_t j = tag & mask;
      while (hashes_[j] != kEmptyTag) j = (j + 1) & mask;
      hashes_[j] = tag;
      slots_[j] = std::move(old_slots[i]);
    }
    used_ = size_;
  }

  std::vector<uint64_t> hashes_;  // Dense probe array; parallel to slots_.
  std::vector<Slot> slots_;
  size_t size_ = 0;  // Live entries.
  size_t used_ = 0;  // Live entries + tombstones (occupied probe slots).
};

}  // namespace mlfs

#endif  // MLFS_STORAGE_CELL_MAP_H_
