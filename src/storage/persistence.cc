#include "storage/persistence.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/failpoint.h"

namespace mlfs {
namespace {

namespace fs = std::filesystem;

constexpr char kOfflineSuffix[] = ".offline.mlfs";

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  MLFS_FAILPOINT("persistence.write");
  std::error_code ec;
  fs::path target(path);
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
      return Status::Internal("create_directories failed: " + ec.message());
    }
  }
  fs::path temp = target;
  temp += ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open '" + temp.string() +
                              "' for writing");
    }
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) {
      return Status::Internal("short write to '" + temp.string() + "'");
    }
  }
  fs::rename(temp, target, ec);
  if (ec) {
    return Status::Internal("rename failed: " + ec.message());
  }
  return Status::OK();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  MLFS_FAILPOINT("persistence.read");
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::Internal("read failed for '" + path + "'");
  }
  return data;
}

StatusOr<std::vector<std::string>> CheckpointOfflineStore(
    const OfflineStore& store, const std::string& dir) {
  std::vector<std::string> written;
  for (const std::string& name : store.TableNames()) {
    MLFS_ASSIGN_OR_RETURN(OfflineTable * table, store.GetTable(name));
    std::string file = name + kOfflineSuffix;
    MLFS_RETURN_IF_ERROR(
        WriteFileAtomic((fs::path(dir) / file).string(), table->Snapshot()));
    written.push_back(std::move(file));
  }
  return written;
}

Status RestoreOfflineStore(OfflineStore* store, const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::NotFound("cannot list '" + dir + "': " + ec.message());
  }
  for (const auto& entry : it) {
    const std::string file = entry.path().filename().string();
    if (file.size() < sizeof(kOfflineSuffix) ||
        file.compare(file.size() - (sizeof(kOfflineSuffix) - 1),
                     std::string::npos, kOfflineSuffix) != 0) {
      continue;
    }
    MLFS_ASSIGN_OR_RETURN(std::string data, ReadFile(entry.path().string()));
    MLFS_ASSIGN_OR_RETURN(auto table, OfflineTable::FromSnapshot(data));
    MLFS_RETURN_IF_ERROR(store->AdoptTable(std::move(table)));
  }
  return Status::OK();
}

Status CheckpointOnlineStore(const OnlineStore& store,
                             const std::string& dir) {
  return WriteFileAtomic((fs::path(dir) / "online.mlfs").string(),
                         store.Snapshot());
}

Status RestoreOnlineStore(OnlineStore* store, const std::string& dir) {
  MLFS_ASSIGN_OR_RETURN(std::string data,
                        ReadFile((fs::path(dir) / "online.mlfs").string()));
  return store->Restore(data);
}

}  // namespace mlfs
