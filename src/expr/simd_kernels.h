#ifndef MLFS_EXPR_SIMD_KERNELS_H_
#define MLFS_EXPR_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mlfs {
namespace vmsimd {

/// Comparison predicate for the vectorized compare kernels. The operand
/// order matches the VM's three-way compare: the predicate is applied to
/// sign(x <=> y), with NaN comparing "equal" (neither < nor >), exactly
/// like the scalar runtime.
enum class CmpPred : uint8_t { kEq = 0, kNe, kLt, kLe, kGt, kGe };

// Runtime-dispatched kernel pointers for the bytecode VM's hottest typed
// loops (expr/bytecode.cc) and the null-bitmap word ops in ColumnVector.
// Same pattern as embedding/distance.cc: the pointers are
// constant-initialized to the scalar reference kernels and upgraded once,
// at static-initialization time, to the best ISA available (AVX2+FMA on
// x86, NEON on aarch64). Every variant is bit-identical to its scalar
// reference — not merely close: arithmetic is per-lane, compares reproduce
// the NaN-compares-equal three-way logic, and the masked reduction fixes
// the accumulation shape (four stride-4 partial sums, combined as
// (s0+s2)+(s1+s3)) so scalar and vector variants associate identically.
// One caveat on the reduction: when two NaNs with *different* payloads
// meet in an add (possible once an accumulator holds the hardware default
// NaN from inf + -inf and an input NaN joins), the surviving payload
// depends on operand order, which the compiler may swap for a commutative
// FP add — values and NaN-ness stay identical, NaN payload bits may not.

/// o[i] = x[i] op y[i]; null handling is the caller's (bitmap OR).
using BinF64Fn = void (*)(const double* x, const double* y, double* o,
                          size_t n);
/// Wrapping two's-complement arithmetic (matches the scalar runtime).
using BinI64Fn = void (*)(const int64_t* x, const int64_t* y, int64_t* o,
                          size_t n);
/// SQL division: o[i] = x[i]/y[i], except y[i] == 0.0 yields o[i] = 0.0
/// and sets bit i of `null_words` (x/0 is NULL).
using DivF64Fn = void (*)(const double* x, const double* y, double* o,
                          uint64_t* null_words, size_t n);
/// o[i] = pred(sign(x[i] <=> y[i])) as 0/1 bytes; NaN compares "equal".
using CmpF64Fn = void (*)(CmpPred pred, const double* x, const double* y,
                          uint8_t* o, size_t n);
using CmpI64Fn = void (*)(CmpPred pred, const int64_t* x, const int64_t* y,
                          uint8_t* o, size_t n);
/// o[w] = a[w] | b[w] for `words` 64-bit bitmap words.
using OrWordsFn = void (*)(const uint64_t* a, const uint64_t* b, uint64_t* o,
                           size_t words);
/// Null-bitmap-aware sum reduction: lanes whose null bit is set contribute
/// +0.0. Deterministic accumulation order shared by every dispatch level.
using SumF64MaskedFn = double (*)(const double* x, const uint64_t* null_words,
                                  size_t n);

extern BinF64Fn add_f64;
extern BinF64Fn sub_f64;
extern BinF64Fn mul_f64;
extern DivF64Fn div_f64;
extern BinI64Fn add_i64;
extern BinI64Fn sub_i64;
extern CmpF64Fn cmp_f64;
extern CmpI64Fn cmp_i64;
extern OrWordsFn or_words;
extern SumF64MaskedFn sum_f64_masked;

// Scalar reference kernels — the semantic ground truth the dispatched
// pointers must agree with bit-for-bit (differential tests and the
// SIMD-vs-scalar benchmarks call these directly).
void AddF64Scalar(const double* x, const double* y, double* o, size_t n);
void SubF64Scalar(const double* x, const double* y, double* o, size_t n);
void MulF64Scalar(const double* x, const double* y, double* o, size_t n);
void DivF64Scalar(const double* x, const double* y, double* o,
                  uint64_t* null_words, size_t n);
void AddI64Scalar(const int64_t* x, const int64_t* y, int64_t* o, size_t n);
void SubI64Scalar(const int64_t* x, const int64_t* y, int64_t* o, size_t n);
void CmpF64Scalar(CmpPred pred, const double* x, const double* y, uint8_t* o,
                  size_t n);
void CmpI64Scalar(CmpPred pred, const int64_t* x, const int64_t* y,
                  uint8_t* o, size_t n);
void OrWordsScalar(const uint64_t* a, const uint64_t* b, uint64_t* o,
                   size_t words);
double SumF64MaskedScalar(const double* x, const uint64_t* null_words,
                          size_t n);

/// Valid (non-null) lanes among the first `n` rows of a null bitmap.
size_t CountNotNull(const uint64_t* null_words, size_t n);

/// Dispatch level the VM kernels run at: "scalar", "avx2+fma", or "neon".
std::string_view LevelName();

}  // namespace vmsimd
}  // namespace mlfs

#endif  // MLFS_EXPR_SIMD_KERNELS_H_
