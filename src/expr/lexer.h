#ifndef MLFS_EXPR_LEXER_H_
#define MLFS_EXPR_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mlfs {

enum class TokenType : uint8_t {
  kIdentifier,   // foo, trips_7d
  kIntLiteral,   // 42
  kDoubleLiteral,  // 3.5, 1e-3
  kStringLiteral,  // 'abc' or "abc"
  kOperator,     // + - * / % == != < <= > >=
  kLParen,
  kRParen,
  kComma,
  kKeywordAnd,
  kKeywordOr,
  kKeywordNot,
  kKeywordTrue,
  kKeywordFalse,
  kKeywordNull,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;       // Raw text (unescaped for strings).
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;    // Byte offset in the source, for error messages.
};

/// Tokenizes one feature-definition expression. Returns InvalidArgument on
/// malformed input (bad number, unterminated string, unknown character).
/// The token stream always ends with a kEnd token.
StatusOr<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace mlfs

#endif  // MLFS_EXPR_LEXER_H_
