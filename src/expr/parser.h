#ifndef MLFS_EXPR_PARSER_H_
#define MLFS_EXPR_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "expr/ast.h"

namespace mlfs {

/// Parses a feature-definition expression into an AST.
///
/// Grammar (precedence climbing, loosest first):
///   or_expr   := and_expr ( "or" and_expr )*
///   and_expr  := not_expr ( "and" not_expr )*
///   not_expr  := "not" not_expr | cmp_expr
///   cmp_expr  := add_expr ( ("=="|"!="|"<"|"<="|">"|">=") add_expr )?
///   add_expr  := mul_expr ( ("+"|"-") mul_expr )*
///   mul_expr  := unary ( ("*"|"/"|"%") unary )*
///   unary     := "-" unary | primary
///   primary   := literal | identifier | identifier "(" args ")" |
///                "(" or_expr ")"
///
/// Examples: "trips_7d / (trips_30d + 1)",
///           "coalesce(rating, 4.0) >= 4.5 and not is_closed".
StatusOr<ExprPtr> ParseExpr(std::string_view source);

}  // namespace mlfs

#endif  // MLFS_EXPR_PARSER_H_
