#ifndef MLFS_EXPR_BYTECODE_H_
#define MLFS_EXPR_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "expr/ast.h"
#include "expr/column_batch.h"

namespace mlfs {

namespace expr_internal {
struct FunctionSpec;
}  // namespace expr_internal

/// Shape of an instruction — what the row path (and the VM's generic
/// per-row kernels) dispatch on. Each shape re-applies the same shared
/// runtime (ApplyUnary/ApplyBinary/ApplyCall) the tree-walking interpreter
/// uses, which is what keeps the compiled paths bit-identical with it.
enum class OpKind : uint8_t {
  kLoadCol,    // dst = row[aux]
  kLoadConst,  // dst = const_pool[aux]
  kCastF64,    // dst = double(a); NULL passes through (compiler-inserted)
  kUnary,      // dst = uop(a)
  kBinary,     // dst = bop(a, b)
  kCall,       // dst = fn(args)
};

/// Batch kernel resolved at compile time from operand register types —
/// what the vector path dispatches on. kGeneric is the always-correct
/// fallback (per-row Values through the shared runtime); everything else
/// is a tight loop over the typed payloads.
enum class VecKernel : uint8_t {
  kGeneric = 0,
  kNullFill,  // result is statically NULL for every row
  kLoadCol,
  kLoadConst,
  kCastI64F64,
  kCastBoolF64,
  kNegI64,
  kNegF64,
  kNotBool,
  kAddI64,  // also TIMESTAMP ± INT64 / TIMESTAMP - TIMESTAMP via out_type
  kSubI64,
  kMulI64,
  kAddF64,
  kSubF64,
  kMulF64,
  kDivF64,  // x/0 -> NULL
  kModI64,  // x%0 -> NULL
  kCmpF64,  // bop in [kEq..kGe]; all numeric comparisons go through double
  kCmpStr,
  kCmpTs,
  kEqEmb,     // embedding (in)equality, elementwise float ==
  kEqHetero,  // different type families: Eq false / Ne true, NULL-prop
  kAndBool,   // three-valued logic
  kOrBool,
  kAbsI64,
  kMathF64,   // aux = MathFn
  kPowF64,
  kMinMaxI64,  // aux: 0 min, 1 max
  kMinMaxF64,
  kClampF64,  // lo > hi errors (after NULL propagation)
  kCoalesce,  // args share one payload type
  kIfSelect,  // branches share one payload type
  kIsNull,
  kLenStr,
  kTsField,  // aux: 0 hour, 1 day
  kDimEmb,
  kNormEmb,
  kAtEmb,      // index out of range errors
  kDotCosEmb,  // aux: 0 dot, 1 cosine; dim mismatch errors
};

/// Unary double->double builtins fused into kMathF64 (aux).
enum class MathFn : uint8_t {
  kAbs = 0,
  kLog,
  kLog2,
  kExp,
  kSqrt,
  kFloor,
  kCeil,
  kRound,
};

/// One three-address instruction. dst registers are in SSA form: register
/// i is written exactly by instruction i (value numbering reuses an
/// earlier register instead of re-emitting, which is how repeated column
/// loads and common subexpressions evaluate once).
struct Instr {
  OpKind kind = OpKind::kLoadConst;
  VecKernel kernel = VecKernel::kGeneric;
  uint16_t dst = 0;
  uint16_t a = 0;  // unary/cast/binary lhs
  uint16_t b = 0;  // binary rhs
  // kLoadCol: schema column index; kLoadConst: const pool index; otherwise
  // kernel-specific immediate (MathFn, min/max, hour/day, dot/cosine,
  // eq/ne flags).
  uint32_t aux = 0;
  UnaryOp uop = UnaryOp::kNeg;
  BinaryOp bop = BinaryOp::kAdd;
  const expr_internal::FunctionSpec* fn = nullptr;  // kCall only
  uint32_t arg_begin = 0;  // kCall operands: args_pool[arg_begin, +arg_count)
  uint32_t arg_count = 0;
  // Register *runtime* tag: the dynamic type every non-NULL cell of the
  // register is guaranteed to have (kNull = every cell NULL). Kernels are
  // selected from these, so they differ from the static type where the
  // static type over-approximates (e.g. a folded `1/0` is tagged kNull
  // even though its static type is DOUBLE).
  FeatureType out_type = FeatureType::kNull;
  bool out_variant = false;  // per-row dynamic type; see ColumnVector
};

/// Reusable per-caller evaluation scratch: VM registers for the batch path
/// and value slots for the row path. Passing the same scratch to repeated
/// EvalBatch calls reuses every buffer allocation-free. A scratch must not
/// be shared across threads.
class ExprScratch {
 public:
  ExprScratch() = default;
  ExprScratch(const ExprScratch&) = delete;
  ExprScratch& operator=(const ExprScratch&) = delete;

  /// Forces string comparisons against dictionary-coded columns down the
  /// per-row path even when the once-per-distinct-code table would apply.
  /// Only benchmarks and differential tests set this.
  void set_disable_dict_fastpath(bool v) { disable_dict_fastpath_ = v; }

 private:
  friend class Program;
  const void* program_ = nullptr;
  std::vector<ColumnVector> regs_;
  std::vector<Value> slots_;
  std::vector<Value> call_args_;
  std::vector<uint8_t> dict_table_;  // code -> comparison result, reused
  bool disable_dict_fastpath_ = false;
};

/// A type-checked expression lowered to flat register bytecode, executable
/// either row-at-a-time (EvalRow) or a column batch at a time (EvalBatch).
/// Lowering constant-folds literal-only subtrees (unless folding would
/// raise — those keep their runtime error) and value-numbers instructions
/// so repeated column loads and common subexpressions evaluate once.
class Program {
 public:
  /// Type-checks `expr` against `schema` (identical acceptance to
  /// InferType) and lowers it.
  static StatusOr<std::shared_ptr<const Program>> Lower(const Expr& expr,
                                                        SchemaPtr schema);

  FeatureType output_type() const { return output_type_; }
  const SchemaPtr& schema() const { return schema_; }
  const std::vector<Instr>& instrs() const { return instrs_; }
  const std::vector<Value>& const_pool() const { return const_pool_; }

  /// Evaluates one row (a batch of 1, through the shared scalar runtime).
  StatusOr<Value> EvalRow(const Row& row, ExprScratch* scratch) const;

  /// Evaluates every row of `src` in one pass over the bytecode. On
  /// success `*out` points at the result column (owned by `scratch`,
  /// valid until its next use). On error, returns the error of the first
  /// failing row (ties broken by evaluation order within the row) —
  /// exactly what a row-at-a-time loop would have reported first.
  Status EvalBatch(const BatchSource& src, ExprScratch* scratch,
                   const ColumnVector** out) const;

 private:
  friend class ProgramBuilder;
  Program() = default;

  std::vector<Instr> instrs_;
  std::vector<Value> const_pool_;
  std::vector<uint16_t> args_pool_;
  uint16_t out_reg_ = 0;
  FeatureType output_type_ = FeatureType::kNull;
  SchemaPtr schema_;
};

}  // namespace mlfs

#endif  // MLFS_EXPR_BYTECODE_H_
