#include "expr/column_batch.h"

#include <cstring>

#include "expr/simd_kernels.h"

namespace mlfs {

namespace {
size_t NullWords(size_t n) { return (n + 63) / 64; }
}  // namespace

void ColumnVector::Reset(FeatureType type, size_t n) {
  type_ = type;
  variant_ = false;
  n_ = n;
  codes_.clear();
  dict_count_ = 0;
  dict_offsets_ = nullptr;
  dict_blob_ = nullptr;
  nulls_.assign(NullWords(n),
                type == FeatureType::kNull ? ~uint64_t{0} : uint64_t{0});
  i64_.clear();
  f64_.clear();
  b8_.clear();
  str_blob_.clear();
  str_offsets_.clear();
  emb_blob_.clear();
  emb_fences_.clear();
  values_.clear();
  switch (type) {
    case FeatureType::kNull:
      break;
    case FeatureType::kBool:
      b8_.assign(n, 0);
      break;
    case FeatureType::kInt64:
    case FeatureType::kTimestamp:
      i64_.assign(n, 0);
      break;
    case FeatureType::kDouble:
      f64_.assign(n, 0.0);
      break;
    case FeatureType::kString:
      str_offsets_.reserve(n + 1);
      str_offsets_.push_back(0);
      break;
    case FeatureType::kEmbedding:
      emb_fences_.reserve(n + 1);
      emb_fences_.push_back(0);
      break;
  }
}

void ColumnVector::ResetVariant(size_t n) {
  Reset(FeatureType::kNull, n);
  variant_ = true;
  values_.assign(n, Value::Null());
}

void ColumnVector::ResetDictionary(size_t n, uint32_t dict_count,
                                   const unsigned char* dict_offsets,
                                   const unsigned char* dict_blob) {
  Reset(FeatureType::kString, n);
  codes_.assign(n, 0);
  dict_count_ = dict_count;
  dict_offsets_ = dict_offsets;
  dict_blob_ = dict_blob;
}

std::string_view ColumnVector::DictString(uint32_t code) const {
  if (code >= dict_count_) return std::string_view();
  uint32_t beg, end;
  std::memcpy(&beg, dict_offsets_ + 4 * code, 4);
  std::memcpy(&end, dict_offsets_ + 4 * (code + 1), 4);
  return std::string_view(reinterpret_cast<const char*>(dict_blob_) + beg,
                          end - beg);
}

void ColumnVector::OrNullWords(const ColumnVector& a, const ColumnVector& b) {
  vmsimd::or_words(a.nulls_.data(), b.nulls_.data(), nulls_.data(),
                   nulls_.size());
}

void ColumnVector::CopyNullWords(const ColumnVector& a) {
  std::memcpy(nulls_.data(), a.nulls_.data(),
              nulls_.size() * sizeof(uint64_t));
}

void ColumnVector::AppendString(std::string_view s) {
  str_blob_.insert(str_blob_.end(), s.begin(), s.end());
  str_offsets_.push_back(static_cast<uint32_t>(str_blob_.size()));
}

void ColumnVector::AppendEmbedding(std::span<const float> e) {
  emb_blob_.insert(emb_blob_.end(), e.begin(), e.end());
  emb_fences_.push_back(emb_blob_.size());
}

void ColumnVector::AppendEmbeddingBytes(const void* data, size_t num_floats) {
  const size_t old = emb_blob_.size();
  emb_blob_.resize(old + num_floats);
  std::memcpy(emb_blob_.data() + old, data, num_floats * sizeof(float));
  emb_fences_.push_back(emb_blob_.size());
}

void ColumnVector::ReserveBlob(size_t bytes) {
  if (type_ == FeatureType::kString) {
    str_blob_.reserve(bytes);
  } else if (type_ == FeatureType::kEmbedding) {
    emb_blob_.reserve(bytes / sizeof(float));
  }
}

void ColumnVector::AppendNullCell() {
  if (type_ == FeatureType::kString) {
    str_offsets_.push_back(static_cast<uint32_t>(str_blob_.size()));
    SetNull(str_offsets_.size() - 2);
  } else if (type_ == FeatureType::kEmbedding) {
    emb_fences_.push_back(emb_blob_.size());
    SetNull(emb_fences_.size() - 2);
  }
}

Value ColumnVector::GetValue(size_t row) const {
  if (variant_) return values_[row];
  if (IsNull(row)) return Value::Null();
  switch (type_) {
    case FeatureType::kNull:
      return Value::Null();
    case FeatureType::kBool:
      return Value::Bool(b8_[row] != 0);
    case FeatureType::kInt64:
      return Value::Int64(i64_[row]);
    case FeatureType::kTimestamp:
      return Value::Time(i64_[row]);
    case FeatureType::kDouble:
      return Value::Double(f64_[row]);
    case FeatureType::kString:
      return Value::String(std::string(StringAt(row)));
    case FeatureType::kEmbedding: {
      auto e = EmbeddingAt(row);
      return Value::Embedding(std::vector<float>(e.begin(), e.end()));
    }
  }
  return Value::Null();
}

namespace expr_internal {

void LoadRowCell(const Value& v, FeatureType type, size_t row,
                 ColumnVector* out) {
  if (v.is_null()) {
    if (type == FeatureType::kString || type == FeatureType::kEmbedding) {
      out->AppendNullCell();
    } else {
      out->SetNull(row);
    }
    return;
  }
  switch (type) {
    case FeatureType::kNull:
      break;
    case FeatureType::kBool:
      out->b8()[row] = v.bool_value() ? 1 : 0;
      break;
    case FeatureType::kInt64:
      out->i64()[row] = v.int64_value();
      break;
    case FeatureType::kTimestamp:
      out->i64()[row] = v.time_value();
      break;
    case FeatureType::kDouble:
      out->f64()[row] = v.double_value();
      break;
    case FeatureType::kString:
      out->AppendString(v.string_value());
      break;
    case FeatureType::kEmbedding:
      out->AppendEmbedding(v.embedding_value());
      break;
  }
}

}  // namespace expr_internal

namespace {

template <typename GetRow>
Status LoadFromRows(const Schema& schema, size_t n, int col,
                    const GetRow& get_row, ColumnVector* out) {
  if (col < 0 || static_cast<size_t>(col) >= schema.num_fields()) {
    return Status::InvalidArgument("batch column index out of range");
  }
  const FeatureType type = schema.field(static_cast<size_t>(col)).type;
  out->Reset(type, n);
  for (size_t r = 0; r < n; ++r) {
    expr_internal::LoadRowCell(get_row(r).value(static_cast<size_t>(col)),
                               type, r, out);
  }
  return Status::OK();
}

}  // namespace

Status RowPtrBatchSource::LoadColumn(int col, ColumnVector* out) const {
  return LoadFromRows(
      *schema_, rows_.size(), col,
      [this](size_t r) -> const Row& { return *rows_[r]; }, out);
}

Status RowBatchSource::LoadColumn(int col, ColumnVector* out) const {
  return LoadFromRows(
      *schema_, rows_.size(), col,
      [this](size_t r) -> const Row& { return rows_[r]; }, out);
}

}  // namespace mlfs
