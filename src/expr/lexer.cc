#include "expr/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace mlfs {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Status LexError(std::string_view source, size_t pos, const std::string& msg) {
  return Status::InvalidArgument("lex error at offset " + std::to_string(pos) +
                                 " in '" + std::string(source) + "': " + msg);
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = source.size();
  while (i < n) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(source[i])) ++i;
      tok.text = std::string(source.substr(start, i - start));
      std::string lower = ToLower(tok.text);
      if (lower == "and") {
        tok.type = TokenType::kKeywordAnd;
      } else if (lower == "or") {
        tok.type = TokenType::kKeywordOr;
      } else if (lower == "not") {
        tok.type = TokenType::kKeywordNot;
      } else if (lower == "true") {
        tok.type = TokenType::kKeywordTrue;
      } else if (lower == "false") {
        tok.type = TokenType::kKeywordFalse;
      } else if (lower == "null") {
        tok.type = TokenType::kKeywordNull;
      } else {
        tok.type = TokenType::kIdentifier;
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      if (i < n && source[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i])))
          ++i;
      }
      if (i < n && (source[i] == 'e' || source[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (source[i] == '+' || source[i] == '-')) ++i;
        if (i >= n || !std::isdigit(static_cast<unsigned char>(source[i]))) {
          return LexError(source, start, "malformed exponent");
        }
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i])))
          ++i;
      }
      tok.text = std::string(source.substr(start, i - start));
      if (is_double) {
        tok.type = TokenType::kDoubleLiteral;
        tok.double_value = std::strtod(tok.text.c_str(), nullptr);
      } else {
        tok.type = TokenType::kIntLiteral;
        errno = 0;
        char* end = nullptr;
        long long v = std::strtoll(tok.text.c_str(), &end, 10);
        if (errno == ERANGE) {
          return LexError(source, start, "integer literal out of range");
        }
        tok.int_value = v;
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (source[i] == '\\' && i + 1 < n) {
          char esc = source[i + 1];
          switch (esc) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case '\\': text.push_back('\\'); break;
            case '\'': text.push_back('\''); break;
            case '"': text.push_back('"'); break;
            default:
              return LexError(source, i, "unknown escape");
          }
          i += 2;
          continue;
        }
        if (source[i] == quote) {
          closed = true;
          ++i;
          break;
        }
        text.push_back(source[i]);
        ++i;
      }
      if (!closed) return LexError(source, tok.position, "unterminated string");
      tok.type = TokenType::kStringLiteral;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    switch (c) {
      case '(':
        tok.type = TokenType::kLParen;
        tok.text = "(";
        ++i;
        break;
      case ')':
        tok.type = TokenType::kRParen;
        tok.text = ")";
        ++i;
        break;
      case ',':
        tok.type = TokenType::kComma;
        tok.text = ",";
        ++i;
        break;
      case '+':
      case '-':
      case '*':
      case '/':
      case '%':
        tok.type = TokenType::kOperator;
        tok.text = std::string(1, c);
        ++i;
        break;
      case '=':
        if (i + 1 < n && source[i + 1] == '=') {
          tok.type = TokenType::kOperator;
          tok.text = "==";
          i += 2;
        } else {
          return LexError(source, i, "use '==' for equality");
        }
        break;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') {
          tok.type = TokenType::kOperator;
          tok.text = "!=";
          i += 2;
        } else {
          return LexError(source, i, "use 'not' for negation");
        }
        break;
      case '<':
        if (i + 1 < n && source[i + 1] == '=') {
          tok.type = TokenType::kOperator;
          tok.text = "<=";
          i += 2;
        } else {
          tok.type = TokenType::kOperator;
          tok.text = "<";
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') {
          tok.type = TokenType::kOperator;
          tok.text = ">=";
          i += 2;
        } else {
          tok.type = TokenType::kOperator;
          tok.text = ">";
          ++i;
        }
        break;
      default:
        return LexError(source, i, std::string("unexpected character '") +
                                        c + "'");
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace mlfs
