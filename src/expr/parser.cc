#include "expr/parser.h"

#include "expr/lexer.h"

namespace mlfs {
namespace {

class Parser {
 public:
  Parser(std::string_view source, std::vector<Token> tokens)
      : source_(source), tokens_(std::move(tokens)) {}

  StatusOr<ExprPtr> Parse() {
    MLFS_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return e;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Take() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(
        "parse error at offset " + std::to_string(Peek().position) + " in '" +
        std::string(source_) + "': " + msg);
  }

  StatusOr<ExprPtr> ParseOr() {
    MLFS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Peek().type == TokenType::kKeywordOr) {
      Take();
      MLFS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAnd() {
    MLFS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Peek().type == TokenType::kKeywordAnd) {
      Take();
      MLFS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseNot() {
    if (Peek().type == TokenType::kKeywordNot) {
      Take();
      MLFS_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParseCmp();
  }

  StatusOr<ExprPtr> ParseCmp() {
    MLFS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdd());
    if (Peek().type == TokenType::kOperator) {
      const std::string& op = Peek().text;
      BinaryOp bop;
      if (op == "==") {
        bop = BinaryOp::kEq;
      } else if (op == "!=") {
        bop = BinaryOp::kNe;
      } else if (op == "<") {
        bop = BinaryOp::kLt;
      } else if (op == "<=") {
        bop = BinaryOp::kLe;
      } else if (op == ">") {
        bop = BinaryOp::kGt;
      } else if (op == ">=") {
        bop = BinaryOp::kGe;
      } else {
        return lhs;
      }
      Take();
      MLFS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdd());
      return Expr::Binary(bop, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAdd() {
    MLFS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMul());
    while (Peek().type == TokenType::kOperator &&
           (Peek().text == "+" || Peek().text == "-")) {
      BinaryOp op = Take().text == "+" ? BinaryOp::kAdd : BinaryOp::kSub;
      MLFS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMul());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseMul() {
    MLFS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (Peek().type == TokenType::kOperator &&
           (Peek().text == "*" || Peek().text == "/" || Peek().text == "%")) {
      std::string op = Take().text;
      MLFS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      BinaryOp bop = op == "*"   ? BinaryOp::kMul
                     : op == "/" ? BinaryOp::kDiv
                                 : BinaryOp::kMod;
      lhs = Expr::Binary(bop, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseUnary() {
    if (Peek().type == TokenType::kOperator && Peek().text == "-") {
      Take();
      MLFS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  StatusOr<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kIntLiteral:
        return Expr::Literal(Value::Int64(Take().int_value));
      case TokenType::kDoubleLiteral:
        return Expr::Literal(Value::Double(Take().double_value));
      case TokenType::kStringLiteral:
        return Expr::Literal(Value::String(Take().text));
      case TokenType::kKeywordTrue:
        Take();
        return Expr::Literal(Value::Bool(true));
      case TokenType::kKeywordFalse:
        Take();
        return Expr::Literal(Value::Bool(false));
      case TokenType::kKeywordNull:
        Take();
        return Expr::Literal(Value::Null());
      case TokenType::kLParen: {
        Take();
        MLFS_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
        if (Peek().type != TokenType::kRParen) {
          return Error("expected ')'");
        }
        Take();
        return inner;
      }
      case TokenType::kIdentifier: {
        Token ident = Take();
        if (Peek().type == TokenType::kLParen) {
          Take();
          std::vector<ExprPtr> args;
          if (Peek().type != TokenType::kRParen) {
            for (;;) {
              MLFS_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr());
              args.push_back(std::move(arg));
              if (Peek().type == TokenType::kComma) {
                Take();
                continue;
              }
              break;
            }
          }
          if (Peek().type != TokenType::kRParen) {
            return Error("expected ')' after call arguments");
          }
          Take();
          return Expr::Call(ident.text, std::move(args));
        }
        return Expr::Column(ident.text);
      }
      default:
        return Error("expected expression");
    }
  }

  std::string_view source_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<ExprPtr> ParseExpr(std::string_view source) {
  MLFS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(source, std::move(tokens));
  return parser.Parse();
}

}  // namespace mlfs
