#ifndef MLFS_EXPR_COLUMN_BATCH_H_
#define MLFS_EXPR_COLUMN_BATCH_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace mlfs {

/// One column of a batch: a contiguous typed vector plus a null bitmap
/// (bit set => NULL). This is the register format of the bytecode VM — a
/// ColumnVector is reset and refilled for every batch, so its buffers are
/// reused allocation-free across batches.
///
/// Storage by type:
///  - BOOL            -> b8 (one byte per row, 0/1)
///  - INT64/TIMESTAMP -> i64
///  - DOUBLE          -> f64
///  - STRING          -> flat char blob + n+1 offsets (sequential append)
///  - EMBEDDING       -> flat float blob + n+1 fences (sequential append)
///  - NULL            -> no data (every cell NULL)
///
/// NULL cells hold a defined zero/empty payload so vector kernels can
/// compute every lane unconditionally and let the bitmap decide validity.
///
/// A ColumnVector can also be *variant*: per-row dynamically typed `Value`
/// cells. Variant registers appear when an expression's dynamic result type
/// can differ per row (mixed-type `coalesce`/`if` and anything computed
/// from them); kernels downstream of a variant operand fall back to per-row
/// evaluation, which keeps the VM bit-identical with the tree-walking
/// interpreter even on those expressions.
class ColumnVector {
 public:
  ColumnVector() = default;

  /// Resets to `n` rows of `type` with no nulls and zeroed payloads.
  /// STRING/EMBEDDING columns are reset empty: their cells must then be
  /// appended in row order (AppendString/AppendEmbedding/AppendNullCell).
  /// `type == kNull` marks every row NULL.
  void Reset(FeatureType type, size_t n);

  /// Resets to `n` NULL `Value` cells of dynamic per-row type.
  void ResetVariant(size_t n);

  /// Resets to an `n`-row dictionary-coded STRING view: per-row u32 codes
  /// (owned; fill via codes()) indexing a *borrowed* dictionary of
  /// `dict_count` strings laid out as a flat char blob plus `dict_count+1`
  /// little-endian u32 offsets — exactly a sealed segment's dictionary
  /// buffers, so loading a dictionary column copies 4 bytes per row
  /// instead of every string. The dictionary must outlive every read of
  /// this vector (segments are pinned for the duration of a scan); any
  /// Reset drops the view. StringAt stays transparent, and the VM's
  /// string-predicate kernel evaluates once per code instead of per row.
  void ResetDictionary(size_t n, uint32_t dict_count,
                       const unsigned char* dict_offsets,
                       const unsigned char* dict_blob);

  FeatureType type() const { return type_; }
  bool is_variant() const { return variant_; }
  size_t size() const { return n_; }

  // --- Null bitmap ---------------------------------------------------------
  bool IsNull(size_t row) const {
    if (variant_) return values_[row].is_null();
    if (type_ == FeatureType::kNull) return true;
    return (nulls_[row >> 6] >> (row & 63)) & 1;
  }
  void SetNull(size_t row) { nulls_[row >> 6] |= uint64_t{1} << (row & 63); }
  uint64_t* null_words() { return nulls_.data(); }
  const uint64_t* null_words() const { return nulls_.data(); }
  size_t num_null_words() const { return nulls_.size(); }
  /// out.nulls = a.nulls | b.nulls, word at a time.
  void OrNullWords(const ColumnVector& a, const ColumnVector& b);
  void CopyNullWords(const ColumnVector& a);

  // --- Typed payloads ------------------------------------------------------
  int64_t* i64() { return i64_.data(); }
  const int64_t* i64() const { return i64_.data(); }
  double* f64() { return f64_.data(); }
  const double* f64() const { return f64_.data(); }
  uint8_t* b8() { return b8_.data(); }
  const uint8_t* b8() const { return b8_.data(); }

  /// Sequential builders for STRING/EMBEDDING columns (call exactly once
  /// per row, in row order). AppendNullCell appends an empty payload and
  /// sets the row's null bit.
  void AppendString(std::string_view s);
  void AppendEmbedding(std::span<const float> e);
  /// As AppendEmbedding, from a possibly-unaligned raw float buffer (e.g.
  /// a memory-mapped segment column).
  void AppendEmbeddingBytes(const void* data, size_t num_floats);
  /// Reserves blob space ahead of a bulk string/embedding fill.
  void ReserveBlob(size_t bytes);
  void AppendNullCell();

  std::string_view StringAt(size_t row) const {
    if (dict_offsets_ != nullptr) return DictString(codes_[row]);
    return std::string_view(str_blob_.data() + str_offsets_[row],
                            str_offsets_[row + 1] - str_offsets_[row]);
  }

  // --- Dictionary view -----------------------------------------------------
  bool is_dictionary() const { return dict_offsets_ != nullptr; }
  uint32_t dict_count() const { return dict_count_; }
  uint32_t* codes() { return codes_.data(); }
  const uint32_t* codes() const { return codes_.data(); }
  /// Dictionary entry `code`. NULL rows of a segment column carry code 0,
  /// so an all-NULL column (empty dictionary) reads as "" rather than
  /// indexing past the dictionary.
  std::string_view DictString(uint32_t code) const;
  std::span<const float> EmbeddingAt(size_t row) const {
    return std::span<const float>(emb_blob_.data() + emb_fences_[row],
                                  emb_fences_[row + 1] - emb_fences_[row]);
  }

  // --- Variant payload -----------------------------------------------------
  Value* values() { return values_.data(); }
  const Value* values() const { return values_.data(); }

  /// Materializes one cell as a Value (allocates for STRING/EMBEDDING).
  Value GetValue(size_t row) const;

  /// Tri-state read of a BOOL-or-NULL cell: -1 NULL, 0 false, 1 true.
  /// Valid on BOOL, NULL and variant columns (the forms a predicate result
  /// can take).
  int TriBool(size_t row) const {
    if (IsNull(row)) return -1;
    if (variant_) return values_[row].bool_value() ? 1 : 0;
    return b8_[row] ? 1 : 0;
  }

 private:
  FeatureType type_ = FeatureType::kNull;
  bool variant_ = false;
  size_t n_ = 0;
  std::vector<uint64_t> nulls_;  // bit set => NULL
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<uint8_t> b8_;
  std::vector<char> str_blob_;
  std::vector<uint32_t> str_offsets_;  // n+1 once fully appended
  // Dictionary view (is_dictionary()): owned codes, borrowed dictionary.
  std::vector<uint32_t> codes_;
  uint32_t dict_count_ = 0;
  const unsigned char* dict_offsets_ = nullptr;  // dict_count+1 LE u32s.
  const unsigned char* dict_blob_ = nullptr;
  std::vector<float> emb_blob_;
  std::vector<uint64_t> emb_fences_;  // n+1 once fully appended
  std::vector<Value> values_;
};

/// A batch of rows the VM can load columns from. Implementations exist over
/// in-memory Row spans (here) and directly over sealed segment column
/// buffers (storage/segment.h), which is what lets materialization and
/// predicate pushdown skip row materialization entirely.
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  virtual size_t num_rows() const = 0;

  /// Fills `out` (including Reset) with schema column `col` of every row.
  /// `out` must present cells that are NULL or exactly the schema type.
  virtual Status LoadColumn(int col, ColumnVector* out) const = 0;
};

/// BatchSource over a span of row pointers (scatter/filter results).
class RowPtrBatchSource final : public BatchSource {
 public:
  RowPtrBatchSource(SchemaPtr schema, std::span<const Row* const> rows)
      : schema_(std::move(schema)), rows_(rows) {}

  size_t num_rows() const override { return rows_.size(); }
  Status LoadColumn(int col, ColumnVector* out) const override;

 private:
  SchemaPtr schema_;
  std::span<const Row* const> rows_;
};

/// BatchSource over a contiguous span of rows.
class RowBatchSource final : public BatchSource {
 public:
  RowBatchSource(SchemaPtr schema, std::span<const Row> rows)
      : schema_(std::move(schema)), rows_(rows) {}

  size_t num_rows() const override { return rows_.size(); }
  Status LoadColumn(int col, ColumnVector* out) const override;

 private:
  SchemaPtr schema_;
  std::span<const Row> rows_;
};

namespace expr_internal {
/// Shared cell loader for the Row-backed sources.
void LoadRowCell(const Value& v, FeatureType type, size_t row,
                 ColumnVector* out);
}  // namespace expr_internal

}  // namespace mlfs

#endif  // MLFS_EXPR_COLUMN_BATCH_H_
