#ifndef MLFS_EXPR_EVALUATOR_H_
#define MLFS_EXPR_EVALUATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "expr/ast.h"
#include "expr/bytecode.h"
#include "expr/column_batch.h"

namespace mlfs {

/// Static type of `expr` when evaluated against rows of `schema`.
/// Fails on unknown columns, unknown functions, arity errors, and type
/// mismatches — this is how the registry validates a feature definition at
/// publish time instead of at serving time.
///
/// Semantics summary:
///  - NULLs propagate through arithmetic, comparisons and most functions
///    (SQL-style); `and`/`or` use three-valued logic; `coalesce`, `if`
///    and `is_null` handle NULL explicitly.
///  - `+ - * %` on two INT64 yield INT64; any DOUBLE operand promotes the
///    result to DOUBLE; `/` always yields DOUBLE. `%` by zero yields NULL.
///  - Embeddings are first-class: `dot(a,b)`, `cosine(a,b)`, `norm(a)`,
///    `dim(a)`, `at(a,i)` operate on EMBEDDING values.
StatusOr<FeatureType> InferType(const Expr& expr, const Schema& schema);

/// Interprets `expr` against `row`, resolving columns by name. This is the
/// reference implementation (and the differential oracle for the compiled
/// engine); prefer CompiledExpr on hot paths.
StatusOr<Value> EvalExpr(const Expr& expr, const Row& row);

/// An expression type-checked against a schema and lowered to flat register
/// bytecode (expr/bytecode.h): column references are resolved to indices,
/// literal-only subtrees are constant-folded, and repeated column loads /
/// common subexpressions are deduplicated. Evaluate row-at-a-time with
/// Eval, or a column batch at a time with EvalBatch — the vectorized path
/// used by materialization, windowed aggregation, slice monitoring and
/// columnar scan pushdown.
class CompiledExpr {
 public:
  /// Type-checks `expr` against `schema` and lowers it to bytecode.
  static StatusOr<CompiledExpr> Compile(const Expr& expr, SchemaPtr schema);

  /// Convenience: parse + compile.
  static StatusOr<CompiledExpr> Compile(std::string_view source,
                                        SchemaPtr schema);

  /// Evaluates against a row of the bound schema.
  StatusOr<Value> Eval(const Row& row) const;

  /// As above, with caller-owned scratch (avoids the thread-local).
  StatusOr<Value> Eval(const Row& row, ExprScratch* scratch) const {
    return program_->EvalRow(row, scratch);
  }

  /// Evaluates every row of `src` in one vectorized pass; see
  /// Program::EvalBatch for the result/error contract.
  Status EvalBatch(const BatchSource& src, ExprScratch* scratch,
                   const ColumnVector** out) const {
    return program_->EvalBatch(src, scratch, out);
  }

  FeatureType output_type() const { return program_->output_type(); }
  const SchemaPtr& schema() const { return program_->schema(); }
  const std::shared_ptr<const Program>& program() const { return program_; }

 private:
  explicit CompiledExpr(std::shared_ptr<const Program> program)
      : program_(std::move(program)) {}

  std::shared_ptr<const Program> program_;
};

/// Names of all builtin functions (for documentation/introspection).
std::vector<std::string> BuiltinFunctionNames();

}  // namespace mlfs

#endif  // MLFS_EXPR_EVALUATOR_H_
