#ifndef MLFS_EXPR_EVALUATOR_H_
#define MLFS_EXPR_EVALUATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "expr/ast.h"

namespace mlfs {

/// Static type of `expr` when evaluated against rows of `schema`.
/// Fails on unknown columns, unknown functions, arity errors, and type
/// mismatches — this is how the registry validates a feature definition at
/// publish time instead of at serving time.
///
/// Semantics summary:
///  - NULLs propagate through arithmetic, comparisons and most functions
///    (SQL-style); `and`/`or` use three-valued logic; `coalesce`, `if`
///    and `is_null` handle NULL explicitly.
///  - `+ - * %` on two INT64 yield INT64; any DOUBLE operand promotes the
///    result to DOUBLE; `/` always yields DOUBLE. `%` by zero yields NULL.
///  - Embeddings are first-class: `dot(a,b)`, `cosine(a,b)`, `norm(a)`,
///    `dim(a)`, `at(a,i)` operate on EMBEDDING values.
StatusOr<FeatureType> InferType(const Expr& expr, const Schema& schema);

/// Interprets `expr` against `row`, resolving columns by name.
/// Prefer CompiledExpr on hot paths.
StatusOr<Value> EvalExpr(const Expr& expr, const Row& row);

/// An expression type-checked and bound to a schema: column references are
/// resolved to indices once, so per-row evaluation does no name lookups.
class CompiledExpr {
 public:
  using EvalFn = std::function<StatusOr<Value>(const Row&)>;

  /// Type-checks `expr` against `schema` and binds column indices.
  static StatusOr<CompiledExpr> Compile(const Expr& expr, SchemaPtr schema);

  /// Convenience: parse + compile.
  static StatusOr<CompiledExpr> Compile(std::string_view source,
                                        SchemaPtr schema);

  /// Evaluates against a row of the bound schema.
  StatusOr<Value> Eval(const Row& row) const { return fn_(row); }

  FeatureType output_type() const { return output_type_; }
  const SchemaPtr& schema() const { return schema_; }

 private:
  CompiledExpr(EvalFn fn, FeatureType output_type, SchemaPtr schema)
      : fn_(std::move(fn)),
        output_type_(output_type),
        schema_(std::move(schema)) {}

  EvalFn fn_;
  FeatureType output_type_;
  SchemaPtr schema_;
};

/// Names of all builtin functions (for documentation/introspection).
std::vector<std::string> BuiltinFunctionNames();

}  // namespace mlfs

#endif  // MLFS_EXPR_EVALUATOR_H_
