#include "expr/bytecode.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>

#include "common/string_util.h"
#include "common/timestamp.h"
#include "expr/evaluator.h"
#include "expr/fn_runtime.h"
#include "expr/simd_kernels.h"

namespace mlfs {

using expr_internal::ApplyBinary;
using expr_internal::ApplyCall;
using expr_internal::ApplyUnary;
using expr_internal::FunctionSpec;
using expr_internal::LookupFunction;

namespace {

// Wrapping signed arithmetic (matches the scalar runtime, which also wraps
// on overflow so both engines are defined and bit-identical everywhere).
inline int64_t WrapAdd(int64_t x, int64_t y) {
  return static_cast<int64_t>(static_cast<uint64_t>(x) +
                              static_cast<uint64_t>(y));
}
inline int64_t WrapSub(int64_t x, int64_t y) {
  return static_cast<int64_t>(static_cast<uint64_t>(x) -
                              static_cast<uint64_t>(y));
}
inline int64_t WrapMul(int64_t x, int64_t y) {
  return static_cast<int64_t>(static_cast<uint64_t>(x) *
                              static_cast<uint64_t>(y));
}
inline int64_t WrapNeg(int64_t x) {
  return static_cast<int64_t>(uint64_t{0} - static_cast<uint64_t>(x));
}

void AppendRaw(std::string* key, const void* p, size_t n) {
  key->append(reinterpret_cast<const char*>(p), n);
}

}  // namespace

// ---------------------------------------------------------------------------
// Lowering: AST -> flat SSA bytecode with constant folding + value numbering.
// ---------------------------------------------------------------------------

class ProgramBuilder {
 public:
  ProgramBuilder(const Expr& expr, SchemaPtr schema)
      : expr_(expr), schema_(std::move(schema)) {}

  StatusOr<std::shared_ptr<const Program>> Build() {
    // Acceptance is exactly InferType's: validate up front, then lowering
    // only has to handle well-typed trees.
    MLFS_ASSIGN_OR_RETURN(FeatureType out_type, InferType(expr_, *schema_));
    auto program = std::shared_ptr<Program>(new Program());
    p_ = program.get();
    p_->schema_ = schema_;
    p_->output_type_ = out_type;
    MLFS_ASSIGN_OR_RETURN(p_->out_reg_, LowerNode(expr_));
    return std::shared_ptr<const Program>(std::move(program));
  }

 private:
  FeatureType Tag(uint16_t r) const { return p_->instrs_[r].out_type; }
  bool Var(uint16_t r) const { return p_->instrs_[r].out_variant; }
  bool IsConst(uint16_t r) const {
    return p_->instrs_[r].kind == OpKind::kLoadConst;
  }
  const Value& ConstVal(uint16_t r) const {
    return p_->const_pool_[p_->instrs_[r].aux];
  }

  // Value-numbering key: every field that distinguishes an instruction's
  // result. Kernel/out_type are pure functions of these, so they can stay
  // out of the key.
  static std::string Key(const Instr& ins, std::span<const uint16_t> args) {
    std::string k;
    k.push_back(static_cast<char>(ins.kind));
    k.push_back(static_cast<char>(ins.uop));
    k.push_back(static_cast<char>(ins.bop));
    AppendRaw(&k, &ins.fn, sizeof(ins.fn));
    AppendRaw(&k, &ins.a, sizeof(ins.a));
    AppendRaw(&k, &ins.b, sizeof(ins.b));
    AppendRaw(&k, &ins.aux, sizeof(ins.aux));
    for (uint16_t r : args) AppendRaw(&k, &r, sizeof(r));
    return k;
  }

  StatusOr<uint16_t> Emit(Instr ins, std::span<const uint16_t> args = {}) {
    std::string key = Key(ins, args);
    auto it = cse_.find(key);
    if (it != cse_.end()) return it->second;
    if (p_->instrs_.size() >= UINT16_MAX) {
      return Status::InvalidArgument("expression too large to compile");
    }
    ins.dst = static_cast<uint16_t>(p_->instrs_.size());
    ins.arg_begin = static_cast<uint32_t>(p_->args_pool_.size());
    ins.arg_count = static_cast<uint32_t>(args.size());
    p_->args_pool_.insert(p_->args_pool_.end(), args.begin(), args.end());
    p_->instrs_.push_back(ins);
    cse_.emplace(std::move(key), ins.dst);
    return ins.dst;
  }

  // Pool dedup must be bit-exact, not Value::operator== — value equality
  // would intern +0.0 as an earlier -0.0 (and misses NaN), silently
  // changing folded results.
  static bool BitIdentical(const Value& a, const Value& b) {
    if (a.type() != b.type()) return false;
    switch (a.type()) {
      case FeatureType::kNull:
        return true;
      case FeatureType::kBool:
        return a.bool_value() == b.bool_value();
      case FeatureType::kInt64:
        return a.int64_value() == b.int64_value();
      case FeatureType::kTimestamp:
        return a.time_value() == b.time_value();
      case FeatureType::kDouble: {
        double x = a.double_value(), y = b.double_value();
        return std::memcmp(&x, &y, sizeof(x)) == 0;
      }
      case FeatureType::kString:
        return a.string_value() == b.string_value();
      case FeatureType::kEmbedding: {
        const auto& x = a.embedding_value();
        const auto& y = b.embedding_value();
        return x.size() == y.size() &&
               std::memcmp(x.data(), y.data(), x.size() * sizeof(float)) == 0;
      }
    }
    return false;
  }

  StatusOr<uint16_t> EmitConst(Value v) {
    uint32_t idx = 0;
    for (; idx < p_->const_pool_.size(); ++idx) {
      if (BitIdentical(p_->const_pool_[idx], v)) break;
    }
    if (idx == p_->const_pool_.size()) p_->const_pool_.push_back(std::move(v));
    Instr ins;
    ins.kind = OpKind::kLoadConst;
    ins.kernel = VecKernel::kLoadConst;
    ins.aux = idx;
    ins.out_type = p_->const_pool_[idx].type();
    return Emit(ins);
  }

  // Result register is NULL for every row; the row path still re-applies
  // the generic op so both paths stay trivially identical.
  Instr NullFill(Instr ins) {
    ins.kernel = VecKernel::kNullFill;
    ins.out_type = FeatureType::kNull;
    ins.out_variant = false;
    return ins;
  }

  StatusOr<uint16_t> EnsureF64(uint16_t r) {
    FeatureType t = Tag(r);
    if (t == FeatureType::kDouble) return r;
    if (IsConst(r)) {
      return EmitConst(Value::Double(ConstVal(r).AsDouble().value()));
    }
    Instr ins;
    ins.kind = OpKind::kCastF64;
    ins.kernel = t == FeatureType::kInt64 ? VecKernel::kCastI64F64
                                          : VecKernel::kCastBoolF64;
    ins.a = r;
    ins.out_type = FeatureType::kDouble;
    return Emit(ins);
  }

  StatusOr<uint16_t> LowerNode(const Expr& e) {
    switch (e.kind()) {
      case Expr::Kind::kLiteral:
        return EmitConst(e.literal());
      case Expr::Kind::kColumn: {
        int idx = schema_->FieldIndex(e.name());
        if (idx < 0) {
          return Status::NotFound("unknown column '" + e.name() + "'");
        }
        Instr ins;
        ins.kind = OpKind::kLoadCol;
        ins.kernel = VecKernel::kLoadCol;
        ins.aux = static_cast<uint32_t>(idx);
        ins.out_type = schema_->field(static_cast<size_t>(idx)).type;
        return Emit(ins);
      }
      case Expr::Kind::kUnary:
        return LowerUnary(e);
      case Expr::Kind::kBinary:
        return LowerBinary(e);
      case Expr::Kind::kCall:
        return LowerCall(e);
    }
    return Status::Internal("bad expr kind");
  }

  StatusOr<uint16_t> LowerUnary(const Expr& e) {
    MLFS_ASSIGN_OR_RETURN(uint16_t a, LowerNode(*e.args()[0]));
    UnaryOp op = e.unary_op();
    if (IsConst(a)) {
      auto folded = ApplyUnary(op, ConstVal(a));
      if (folded.ok()) return EmitConst(std::move(folded).value());
    }
    Instr ins;
    ins.kind = OpKind::kUnary;
    ins.uop = op;
    ins.a = a;
    if (Var(a)) {
      ins.out_variant = true;
      return Emit(ins);
    }
    FeatureType t = Tag(a);
    if (t == FeatureType::kNull) return Emit(NullFill(ins));
    if (op == UnaryOp::kNeg) {
      if (t == FeatureType::kInt64) {
        ins.kernel = VecKernel::kNegI64;
        ins.out_type = FeatureType::kInt64;
      } else if (t == FeatureType::kDouble) {
        ins.kernel = VecKernel::kNegF64;
        ins.out_type = FeatureType::kDouble;
      } else {
        // -BOOL type-checks but always errors at runtime; let the generic
        // kernel reproduce that.
        ins.out_variant = true;
      }
    } else {
      if (t == FeatureType::kBool) {
        ins.kernel = VecKernel::kNotBool;
        ins.out_type = FeatureType::kBool;
      } else {
        ins.out_variant = true;
      }
    }
    return Emit(ins);
  }

  StatusOr<uint16_t> LowerBinary(const Expr& e) {
    MLFS_ASSIGN_OR_RETURN(uint16_t a, LowerNode(*e.args()[0]));
    MLFS_ASSIGN_OR_RETURN(uint16_t b, LowerNode(*e.args()[1]));
    BinaryOp op = e.binary_op();
    if (IsConst(a) && IsConst(b)) {
      auto folded = ApplyBinary(op, ConstVal(a), ConstVal(b));
      if (folded.ok()) return EmitConst(std::move(folded).value());
    }
    Instr ins;
    ins.kind = OpKind::kBinary;
    ins.bop = op;
    ins.a = a;
    ins.b = b;
    if (Var(a) || Var(b)) {
      ins.out_variant = true;
      return Emit(ins);
    }
    const FeatureType ta = Tag(a), tb = Tag(b);
    const bool numeric = IsNumeric(ta) && IsNumeric(tb);
    switch (op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul: {
        if (ta == FeatureType::kNull || tb == FeatureType::kNull) {
          return Emit(NullFill(ins));
        }
        if (ta == FeatureType::kString) {  // string + string
          ins.out_type = FeatureType::kString;
          return Emit(ins);  // generic kernel
        }
        if (ta == FeatureType::kTimestamp || tb == FeatureType::kTimestamp) {
          // ts ± i64, i64 + ts, ts - ts: plain i64 lanes, retyped result.
          ins.kernel = op == BinaryOp::kAdd ? VecKernel::kAddI64
                                            : VecKernel::kSubI64;
          ins.out_type = (ta == FeatureType::kTimestamp &&
                          tb == FeatureType::kTimestamp)
                             ? FeatureType::kInt64
                             : FeatureType::kTimestamp;
          return Emit(ins);
        }
        if (ta == FeatureType::kInt64 && tb == FeatureType::kInt64) {
          ins.kernel = op == BinaryOp::kAdd   ? VecKernel::kAddI64
                       : op == BinaryOp::kSub ? VecKernel::kSubI64
                                              : VecKernel::kMulI64;
          ins.out_type = FeatureType::kInt64;
          return Emit(ins);
        }
        MLFS_ASSIGN_OR_RETURN(ins.a, EnsureF64(a));
        MLFS_ASSIGN_OR_RETURN(ins.b, EnsureF64(b));
        ins.kernel = op == BinaryOp::kAdd   ? VecKernel::kAddF64
                     : op == BinaryOp::kSub ? VecKernel::kSubF64
                                            : VecKernel::kMulF64;
        ins.out_type = FeatureType::kDouble;
        return Emit(ins);
      }
      case BinaryOp::kDiv: {
        if (ta == FeatureType::kNull || tb == FeatureType::kNull) {
          return Emit(NullFill(ins));
        }
        MLFS_ASSIGN_OR_RETURN(ins.a, EnsureF64(a));
        MLFS_ASSIGN_OR_RETURN(ins.b, EnsureF64(b));
        ins.kernel = VecKernel::kDivF64;
        ins.out_type = FeatureType::kDouble;
        return Emit(ins);
      }
      case BinaryOp::kMod: {
        if (ta == FeatureType::kNull || tb == FeatureType::kNull) {
          return Emit(NullFill(ins));
        }
        ins.kernel = VecKernel::kModI64;
        ins.out_type = FeatureType::kInt64;
        return Emit(ins);
      }
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe: {
        if (ta == FeatureType::kNull || tb == FeatureType::kNull) {
          return Emit(NullFill(ins));
        }
        ins.out_type = FeatureType::kBool;
        if (numeric) {
          MLFS_ASSIGN_OR_RETURN(ins.a, EnsureF64(a));
          MLFS_ASSIGN_OR_RETURN(ins.b, EnsureF64(b));
          ins.kernel = VecKernel::kCmpF64;
        } else if (ta == FeatureType::kString && tb == FeatureType::kString) {
          ins.kernel = VecKernel::kCmpStr;
        } else if (ta == FeatureType::kTimestamp &&
                   tb == FeatureType::kTimestamp) {
          ins.kernel = VecKernel::kCmpTs;
        } else if (ta == FeatureType::kEmbedding &&
                   tb == FeatureType::kEmbedding) {
          ins.kernel = VecKernel::kEqEmb;
          ins.aux = op == BinaryOp::kNe;
        } else {
          // Different type families: only Eq/Ne type-check, and they don't
          // look at the payload at all.
          ins.kernel = VecKernel::kEqHetero;
          ins.aux = op == BinaryOp::kNe;
        }
        return Emit(ins);
      }
      case BinaryOp::kAnd:
      case BinaryOp::kOr:
        ins.kernel =
            op == BinaryOp::kAnd ? VecKernel::kAndBool : VecKernel::kOrBool;
        ins.out_type = FeatureType::kBool;
        return Emit(ins);
    }
    return Status::Internal("bad binary op");
  }

  StatusOr<uint16_t> LowerCall(const Expr& e) {
    std::vector<uint16_t> args;
    args.reserve(e.args().size());
    for (const auto& arg : e.args()) {
      MLFS_ASSIGN_OR_RETURN(uint16_t r, LowerNode(*arg));
      args.push_back(r);
    }
    MLFS_ASSIGN_OR_RETURN(const FunctionSpec* spec,
                          LookupFunction(e.name(), args.size()));
    const std::string name = ToLower(e.name());

    bool any_variant = false, all_const = true;
    for (uint16_t r : args) {
      any_variant = any_variant || Var(r);
      all_const = all_const && IsConst(r);
    }
    if (!any_variant && all_const) {
      std::vector<Value> vals;
      vals.reserve(args.size());
      for (uint16_t r : args) vals.push_back(ConstVal(r));
      auto folded = ApplyCall(*spec, vals);
      if (folded.ok()) return EmitConst(std::move(folded).value());
    }

    Instr ins;
    ins.kind = OpKind::kCall;
    ins.fn = spec;

    if (name == "coalesce") {
      std::vector<uint16_t> kept;
      for (uint16_t r : args) {
        if (Var(r) || Tag(r) != FeatureType::kNull) kept.push_back(r);
      }
      if (kept.empty()) return Emit(NullFill(ins), args);
      if (kept.size() == 1) return kept[0];  // coalesce(x) == x
      bool kept_variant = false, same = true;
      for (uint16_t r : kept) {
        kept_variant = kept_variant || Var(r);
        same = same && Tag(r) == Tag(kept[0]);
      }
      if (kept_variant || !same) {
        ins.out_variant = true;  // mixed dynamic result type
        return Emit(ins, kept);
      }
      ins.kernel = VecKernel::kCoalesce;
      ins.out_type = Tag(kept[0]);
      return Emit(ins, kept);
    }

    if (name == "if") {
      const FeatureType tc = Tag(args[0]);
      const FeatureType t1 = Tag(args[1]), t2 = Tag(args[2]);
      if (!Var(args[0]) && tc == FeatureType::kNull) {
        return Emit(NullFill(ins), args);
      }
      if (Var(args[0]) || Var(args[1]) || Var(args[2])) {
        ins.out_variant = true;
        return Emit(ins, args);
      }
      if (t1 == FeatureType::kNull && t2 == FeatureType::kNull) {
        return Emit(NullFill(ins), args);
      }
      if (t1 == t2 || t1 == FeatureType::kNull || t2 == FeatureType::kNull) {
        ins.kernel = VecKernel::kIfSelect;
        ins.out_type = t1 == FeatureType::kNull ? t2 : t1;
        return Emit(ins, args);
      }
      ins.out_variant = true;  // mixed-type branches pick per row
      return Emit(ins, args);
    }

    if (name == "is_null") {
      if (Var(args[0])) {
        ins.out_type = FeatureType::kBool;  // generic, but always BOOL
        return Emit(ins, args);
      }
      if (Tag(args[0]) == FeatureType::kNull) return EmitConst(Value::Bool(true));
      ins.kernel = VecKernel::kIsNull;
      ins.out_type = FeatureType::kBool;
      return Emit(ins, args);
    }

    if (any_variant) {
      ins.out_variant = true;
      return Emit(ins, args);
    }
    // All remaining builtins propagate NULLs: a statically-NULL argument
    // makes the whole call statically NULL.
    for (uint16_t r : args) {
      if (Tag(r) == FeatureType::kNull) return Emit(NullFill(ins), args);
    }

    auto math1 = [&](MathFn fn) -> StatusOr<uint16_t> {
      MLFS_ASSIGN_OR_RETURN(args[0], EnsureF64(args[0]));
      ins.kernel = VecKernel::kMathF64;
      ins.aux = static_cast<uint32_t>(fn);
      ins.out_type = FeatureType::kDouble;
      return Emit(ins, args);
    };

    if (name == "abs") {
      if (Tag(args[0]) == FeatureType::kInt64) {
        ins.kernel = VecKernel::kAbsI64;
        ins.out_type = FeatureType::kInt64;
        return Emit(ins, args);
      }
      return math1(MathFn::kAbs);
    }
    if (name == "log") return math1(MathFn::kLog);
    if (name == "log2") return math1(MathFn::kLog2);
    if (name == "exp") return math1(MathFn::kExp);
    if (name == "sqrt") return math1(MathFn::kSqrt);
    if (name == "floor") return math1(MathFn::kFloor);
    if (name == "ceil") return math1(MathFn::kCeil);
    if (name == "round") return math1(MathFn::kRound);
    if (name == "pow") {
      MLFS_ASSIGN_OR_RETURN(args[0], EnsureF64(args[0]));
      MLFS_ASSIGN_OR_RETURN(args[1], EnsureF64(args[1]));
      ins.kernel = VecKernel::kPowF64;
      ins.out_type = FeatureType::kDouble;
      return Emit(ins, args);
    }
    if (name == "min" || name == "max") {
      ins.aux = name == "max";
      if (Tag(args[0]) == FeatureType::kInt64 &&
          Tag(args[1]) == FeatureType::kInt64) {
        ins.kernel = VecKernel::kMinMaxI64;
        ins.out_type = FeatureType::kInt64;
        return Emit(ins, args);
      }
      MLFS_ASSIGN_OR_RETURN(args[0], EnsureF64(args[0]));
      MLFS_ASSIGN_OR_RETURN(args[1], EnsureF64(args[1]));
      ins.kernel = VecKernel::kMinMaxF64;
      ins.out_type = FeatureType::kDouble;
      return Emit(ins, args);
    }
    if (name == "clamp") {
      for (size_t i = 0; i < 3; ++i) {
        MLFS_ASSIGN_OR_RETURN(args[i], EnsureF64(args[i]));
      }
      ins.kernel = VecKernel::kClampF64;
      ins.out_type = FeatureType::kDouble;
      return Emit(ins, args);
    }
    if (name == "len") {
      ins.kernel = VecKernel::kLenStr;
      ins.out_type = FeatureType::kInt64;
      return Emit(ins, args);
    }
    if (name == "hour" || name == "day") {
      ins.kernel = VecKernel::kTsField;
      ins.aux = name == "day";
      ins.out_type = FeatureType::kInt64;
      return Emit(ins, args);
    }
    if (name == "dim") {
      ins.kernel = VecKernel::kDimEmb;
      ins.out_type = FeatureType::kInt64;
      return Emit(ins, args);
    }
    if (name == "norm") {
      ins.kernel = VecKernel::kNormEmb;
      ins.out_type = FeatureType::kDouble;
      return Emit(ins, args);
    }
    if (name == "at") {
      ins.kernel = VecKernel::kAtEmb;
      ins.out_type = FeatureType::kDouble;
      return Emit(ins, args);
    }
    if (name == "dot" || name == "cosine") {
      ins.kernel = VecKernel::kDotCosEmb;
      ins.aux = name == "cosine";
      ins.out_type = FeatureType::kDouble;
      return Emit(ins, args);
    }
    // concat / lower / upper / hash: generic per-row kernel with a fixed
    // result type.
    ins.out_type = name == "hash" ? FeatureType::kInt64 : FeatureType::kString;
    return Emit(ins, args);
  }

  const Expr& expr_;
  SchemaPtr schema_;
  Program* p_ = nullptr;
  std::map<std::string, uint16_t> cse_;
};

StatusOr<std::shared_ptr<const Program>> Program::Lower(const Expr& expr,
                                                        SchemaPtr schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("CompiledExpr needs a schema");
  }
  return ProgramBuilder(expr, std::move(schema)).Build();
}

// ---------------------------------------------------------------------------
// Row path: a batch of 1 through the shared scalar runtime.
// ---------------------------------------------------------------------------

StatusOr<Value> Program::EvalRow(const Row& row, ExprScratch* scratch) const {
  std::vector<Value>& slots = scratch->slots_;
  slots.resize(instrs_.size());
  for (const Instr& ins : instrs_) {
    switch (ins.kind) {
      case OpKind::kLoadCol:
        slots[ins.dst] = row.value(ins.aux);
        break;
      case OpKind::kLoadConst:
        slots[ins.dst] = const_pool_[ins.aux];
        break;
      case OpKind::kCastF64: {
        const Value& v = slots[ins.a];
        slots[ins.dst] =
            v.is_null() ? Value::Null() : Value::Double(v.AsDouble().value());
        break;
      }
      case OpKind::kUnary: {
        MLFS_ASSIGN_OR_RETURN(slots[ins.dst],
                              ApplyUnary(ins.uop, slots[ins.a]));
        break;
      }
      case OpKind::kBinary: {
        MLFS_ASSIGN_OR_RETURN(
            slots[ins.dst], ApplyBinary(ins.bop, slots[ins.a], slots[ins.b]));
        break;
      }
      case OpKind::kCall: {
        std::vector<Value>& argv = scratch->call_args_;
        argv.clear();
        for (uint32_t i = 0; i < ins.arg_count; ++i) {
          argv.push_back(slots[args_pool_[ins.arg_begin + i]]);
        }
        MLFS_ASSIGN_OR_RETURN(slots[ins.dst], ApplyCall(*ins.fn, argv));
        break;
      }
    }
  }
  return slots[out_reg_];
}

// ---------------------------------------------------------------------------
// Vector path.
// ---------------------------------------------------------------------------

namespace {

// Appends/sets a NULL cell for row `r` of `out` (typed columns only).
inline void NullCell(ColumnVector* out, size_t r) {
  if (out->type() == FeatureType::kString ||
      out->type() == FeatureType::kEmbedding) {
    out->AppendNullCell();
  } else {
    out->SetNull(r);
  }
}

inline vmsimd::CmpPred CmpPredOf(BinaryOp bop) {
  switch (bop) {
    case BinaryOp::kEq:
      return vmsimd::CmpPred::kEq;
    case BinaryOp::kNe:
      return vmsimd::CmpPred::kNe;
    case BinaryOp::kLt:
      return vmsimd::CmpPred::kLt;
    case BinaryOp::kLe:
      return vmsimd::CmpPred::kLe;
    case BinaryOp::kGt:
      return vmsimd::CmpPred::kGt;
    default:
      return vmsimd::CmpPred::kGe;
  }
}

// Copies the (non-NULL) payload of src[r] into out[r]; `t` is out's type.
inline void CopyCell(FeatureType t, const ColumnVector& src, size_t r,
                     ColumnVector* out) {
  switch (t) {
    case FeatureType::kNull:
      break;
    case FeatureType::kBool:
      out->b8()[r] = src.b8()[r];
      break;
    case FeatureType::kInt64:
    case FeatureType::kTimestamp:
      out->i64()[r] = src.i64()[r];
      break;
    case FeatureType::kDouble:
      out->f64()[r] = src.f64()[r];
      break;
    case FeatureType::kString:
      out->AppendString(src.StringAt(r));
      break;
    case FeatureType::kEmbedding:
      out->AppendEmbedding(src.EmbeddingAt(r));
      break;
  }
}

}  // namespace

Status Program::EvalBatch(const BatchSource& src, ExprScratch* scratch,
                          const ColumnVector** result) const {
  const size_t n = src.num_rows();
  if (scratch->program_ != this) {
    scratch->program_ = this;
    scratch->regs_.clear();
  }
  scratch->regs_.resize(instrs_.size());
  std::vector<ColumnVector>& regs = scratch->regs_;

  // First failing row (ties broken by instruction order, which is
  // evaluation order) — exactly the error a row-at-a-time loop reports.
  size_t err_row = SIZE_MAX;
  Status err = Status::OK();
  auto record = [&](size_t r, Status s) {
    if (r < err_row) {
      err_row = r;
      err = std::move(s);
    }
  };

  for (const Instr& ins : instrs_) {
    ColumnVector& out = regs[ins.dst];
    const ColumnVector& A = regs[ins.a];
    const ColumnVector& B = regs[ins.b];
    switch (ins.kernel) {
      case VecKernel::kLoadCol:
        MLFS_RETURN_IF_ERROR(
            src.LoadColumn(static_cast<int>(ins.aux), &out));
        break;
      case VecKernel::kLoadConst: {
        const Value& v = const_pool_[ins.aux];
        out.Reset(v.type(), n);
        switch (v.type()) {
          case FeatureType::kNull:
            break;
          case FeatureType::kBool:
            std::fill(out.b8(), out.b8() + n, uint8_t(v.bool_value()));
            break;
          case FeatureType::kInt64:
            std::fill(out.i64(), out.i64() + n, v.int64_value());
            break;
          case FeatureType::kTimestamp:
            std::fill(out.i64(), out.i64() + n, v.time_value());
            break;
          case FeatureType::kDouble:
            std::fill(out.f64(), out.f64() + n, v.double_value());
            break;
          case FeatureType::kString:
            out.ReserveBlob(n * v.string_value().size());
            for (size_t r = 0; r < n; ++r) out.AppendString(v.string_value());
            break;
          case FeatureType::kEmbedding:
            out.ReserveBlob(n * v.embedding_value().size() * sizeof(float));
            for (size_t r = 0; r < n; ++r) {
              out.AppendEmbedding(v.embedding_value());
            }
            break;
        }
        break;
      }
      case VecKernel::kNullFill:
        out.Reset(FeatureType::kNull, n);
        break;
      case VecKernel::kCastI64F64: {
        out.Reset(FeatureType::kDouble, n);
        out.CopyNullWords(A);
        const int64_t* x = A.i64();
        double* o = out.f64();
        for (size_t i = 0; i < n; ++i) o[i] = static_cast<double>(x[i]);
        break;
      }
      case VecKernel::kCastBoolF64: {
        out.Reset(FeatureType::kDouble, n);
        out.CopyNullWords(A);
        const uint8_t* x = A.b8();
        double* o = out.f64();
        for (size_t i = 0; i < n; ++i) o[i] = x[i] ? 1.0 : 0.0;
        break;
      }
      case VecKernel::kNegI64: {
        out.Reset(FeatureType::kInt64, n);
        out.CopyNullWords(A);
        const int64_t* x = A.i64();
        int64_t* o = out.i64();
        for (size_t i = 0; i < n; ++i) o[i] = WrapNeg(x[i]);
        break;
      }
      case VecKernel::kNegF64: {
        out.Reset(FeatureType::kDouble, n);
        out.CopyNullWords(A);
        const double* x = A.f64();
        double* o = out.f64();
        for (size_t i = 0; i < n; ++i) o[i] = -x[i];
        break;
      }
      case VecKernel::kNotBool: {
        out.Reset(FeatureType::kBool, n);
        out.CopyNullWords(A);
        const uint8_t* x = A.b8();
        uint8_t* o = out.b8();
        for (size_t i = 0; i < n; ++i) o[i] = x[i] ? 0 : 1;
        break;
      }
      case VecKernel::kAddI64:
      case VecKernel::kSubI64:
      case VecKernel::kMulI64: {
        out.Reset(ins.out_type, n);
        out.OrNullWords(A, B);
        const int64_t* x = A.i64();
        const int64_t* y = B.i64();
        int64_t* o = out.i64();
        if (ins.kernel == VecKernel::kAddI64) {
          vmsimd::add_i64(x, y, o, n);
        } else if (ins.kernel == VecKernel::kSubI64) {
          vmsimd::sub_i64(x, y, o, n);
        } else {
          // No 64-bit vector multiply below AVX-512; the scalar loop it is.
          for (size_t i = 0; i < n; ++i) o[i] = WrapMul(x[i], y[i]);
        }
        break;
      }
      case VecKernel::kAddF64:
      case VecKernel::kSubF64:
      case VecKernel::kMulF64: {
        out.Reset(FeatureType::kDouble, n);
        out.OrNullWords(A, B);
        const double* x = A.f64();
        const double* y = B.f64();
        double* o = out.f64();
        if (ins.kernel == VecKernel::kAddF64) {
          vmsimd::add_f64(x, y, o, n);
        } else if (ins.kernel == VecKernel::kSubF64) {
          vmsimd::sub_f64(x, y, o, n);
        } else {
          vmsimd::mul_f64(x, y, o, n);
        }
        break;
      }
      case VecKernel::kDivF64: {
        out.Reset(FeatureType::kDouble, n);
        out.OrNullWords(A, B);
        // SQL-style x/0 -> NULL: the kernel blends 0.0 into zero-divisor
        // lanes and sets their null bits directly.
        vmsimd::div_f64(A.f64(), B.f64(), out.f64(), out.null_words(), n);
        break;
      }
      case VecKernel::kModI64: {
        out.Reset(FeatureType::kInt64, n);
        out.OrNullWords(A, B);
        const int64_t* x = A.i64();
        const int64_t* y = B.i64();
        int64_t* o = out.i64();
        for (size_t i = 0; i < n; ++i) {
          if (y[i] == 0) {
            o[i] = 0;
            out.SetNull(i);  // x % 0 is NULL
          } else if (y[i] == -1) {
            o[i] = 0;  // avoids INT64_MIN % -1
          } else {
            o[i] = x[i] % y[i];
          }
        }
        break;
      }
      case VecKernel::kCmpF64:
      case VecKernel::kCmpTs: {
        out.Reset(FeatureType::kBool, n);
        out.OrNullWords(A, B);
        // The dispatched kernels reproduce the scalar runtime's three-way
        // compare, including NaN comparing "equal".
        const vmsimd::CmpPred pred = CmpPredOf(ins.bop);
        if (ins.kernel == VecKernel::kCmpF64) {
          vmsimd::cmp_f64(pred, A.f64(), B.f64(), out.b8(), n);
        } else {
          vmsimd::cmp_i64(pred, A.i64(), B.i64(), out.b8(), n);
        }
        break;
      }
      case VecKernel::kCmpStr: {
        out.Reset(FeatureType::kBool, n);
        out.OrNullWords(A, B);
        uint8_t* o = out.b8();
        auto cmp_byte = [&ins](int cr) -> uint8_t {
          const int c = (cr < 0) ? -1 : (cr > 0) ? 1 : 0;
          switch (ins.bop) {
            case BinaryOp::kEq: return c == 0;
            case BinaryOp::kNe: return c != 0;
            case BinaryOp::kLt: return c < 0;
            case BinaryOp::kLe: return c <= 0;
            case BinaryOp::kGt: return c > 0;
            case BinaryOp::kGe: return c >= 0;
            default: return 0;
          }
        };
        // Dictionary-aware fast path: when one operand is a dictionary
        // view (a sealed segment's string column) and the other a string
        // constant, decide the comparison once per distinct dictionary
        // code into a code->0/1 table and reduce per-row work to a table
        // gather. The table is rebuilt per EvalBatch call (dict_count
        // compares per <=1024-row batch) rather than cached across calls:
        // a freed segment's buffers can be reused at the same address, so
        // a pointer-keyed cache could silently go stale.
        const ColumnVector* dict = nullptr;
        bool dict_is_lhs = false;
        if (!scratch->disable_dict_fastpath_) {
          if (A.is_dictionary() && instrs_[ins.b].kind == OpKind::kLoadConst &&
              B.type() == FeatureType::kString && !B.is_variant()) {
            dict = &A;
            dict_is_lhs = true;
          } else if (B.is_dictionary() &&
                     instrs_[ins.a].kind == OpKind::kLoadConst &&
                     A.type() == FeatureType::kString && !A.is_variant()) {
            dict = &B;
          }
        }
        // An empty dictionary means every row is NULL (codes all 0 with no
        // table entry to index); the per-row path handles it via the
        // DictString bounds guard.
        if (dict != nullptr && dict->dict_count() > 0 && n > 0) {
          const std::string_view cv =
              dict_is_lhs ? B.StringAt(0) : A.StringAt(0);
          std::vector<uint8_t>& table = scratch->dict_table_;
          table.resize(dict->dict_count());
          for (uint32_t code = 0; code < dict->dict_count(); ++code) {
            const std::string_view ds = dict->DictString(code);
            table[code] =
                cmp_byte(dict_is_lhs ? ds.compare(cv) : cv.compare(ds));
          }
          const uint32_t* codes = dict->codes();
          for (size_t i = 0; i < n; ++i) o[i] = table[codes[i]];
          break;
        }
        for (size_t i = 0; i < n; ++i) {
          o[i] = cmp_byte(A.StringAt(i).compare(B.StringAt(i)));
        }
        break;
      }
      case VecKernel::kEqEmb: {
        out.Reset(FeatureType::kBool, n);
        out.OrNullWords(A, B);
        uint8_t* o = out.b8();
        for (size_t i = 0; i < n; ++i) {
          if (out.IsNull(i)) continue;
          auto x = A.EmbeddingAt(i);
          auto y = B.EmbeddingAt(i);
          bool eq =
              x.size() == y.size() && std::equal(x.begin(), x.end(), y.begin());
          o[i] = ins.aux ? !eq : eq;
        }
        break;
      }
      case VecKernel::kEqHetero: {
        out.Reset(FeatureType::kBool, n);
        out.OrNullWords(A, B);
        std::fill(out.b8(), out.b8() + n, uint8_t(ins.aux ? 1 : 0));
        break;
      }
      case VecKernel::kAndBool:
      case VecKernel::kOrBool: {
        out.Reset(FeatureType::kBool, n);
        const bool is_and = ins.kernel == VecKernel::kAndBool;
        uint8_t* o = out.b8();
        for (size_t i = 0; i < n; ++i) {
          int x = A.TriBool(i);
          int y = B.TriBool(i);
          if (is_and) {
            if (x == 0 || y == 0) {
              o[i] = 0;
            } else if (x == -1 || y == -1) {
              out.SetNull(i);
            } else {
              o[i] = 1;
            }
          } else {
            if (x == 1 || y == 1) {
              o[i] = 1;
            } else if (x == -1 || y == -1) {
              out.SetNull(i);
            } else {
              o[i] = 0;
            }
          }
        }
        break;
      }
      case VecKernel::kAbsI64: {
        const ColumnVector& X = regs[args_pool_[ins.arg_begin]];
        out.Reset(FeatureType::kInt64, n);
        out.CopyNullWords(X);
        const int64_t* x = X.i64();
        int64_t* o = out.i64();
        for (size_t i = 0; i < n; ++i) o[i] = x[i] < 0 ? WrapNeg(x[i]) : x[i];
        break;
      }
      case VecKernel::kMathF64: {
        const ColumnVector& X = regs[args_pool_[ins.arg_begin]];
        out.Reset(FeatureType::kDouble, n);
        out.CopyNullWords(X);
        const double* x = X.f64();
        double* o = out.f64();
        switch (static_cast<MathFn>(ins.aux)) {
          case MathFn::kAbs:
            for (size_t i = 0; i < n; ++i) o[i] = std::abs(x[i]);
            break;
          case MathFn::kLog:
            for (size_t i = 0; i < n; ++i) o[i] = std::log(x[i]);
            break;
          case MathFn::kLog2:
            for (size_t i = 0; i < n; ++i) o[i] = std::log2(x[i]);
            break;
          case MathFn::kExp:
            for (size_t i = 0; i < n; ++i) o[i] = std::exp(x[i]);
            break;
          case MathFn::kSqrt:
            for (size_t i = 0; i < n; ++i) o[i] = std::sqrt(x[i]);
            break;
          case MathFn::kFloor:
            for (size_t i = 0; i < n; ++i) o[i] = std::floor(x[i]);
            break;
          case MathFn::kCeil:
            for (size_t i = 0; i < n; ++i) o[i] = std::ceil(x[i]);
            break;
          case MathFn::kRound:
            for (size_t i = 0; i < n; ++i) o[i] = std::round(x[i]);
            break;
        }
        break;
      }
      case VecKernel::kPowF64: {
        const ColumnVector& X = regs[args_pool_[ins.arg_begin]];
        const ColumnVector& Y = regs[args_pool_[ins.arg_begin + 1]];
        out.Reset(FeatureType::kDouble, n);
        out.OrNullWords(X, Y);
        const double* x = X.f64();
        const double* y = Y.f64();
        double* o = out.f64();
        for (size_t i = 0; i < n; ++i) o[i] = std::pow(x[i], y[i]);
        break;
      }
      case VecKernel::kMinMaxI64: {
        const ColumnVector& X = regs[args_pool_[ins.arg_begin]];
        const ColumnVector& Y = regs[args_pool_[ins.arg_begin + 1]];
        out.Reset(FeatureType::kInt64, n);
        out.OrNullWords(X, Y);
        const int64_t* x = X.i64();
        const int64_t* y = Y.i64();
        int64_t* o = out.i64();
        if (ins.aux) {
          for (size_t i = 0; i < n; ++i) o[i] = std::max(x[i], y[i]);
        } else {
          for (size_t i = 0; i < n; ++i) o[i] = std::min(x[i], y[i]);
        }
        break;
      }
      case VecKernel::kMinMaxF64: {
        const ColumnVector& X = regs[args_pool_[ins.arg_begin]];
        const ColumnVector& Y = regs[args_pool_[ins.arg_begin + 1]];
        out.Reset(FeatureType::kDouble, n);
        out.OrNullWords(X, Y);
        const double* x = X.f64();
        const double* y = Y.f64();
        double* o = out.f64();
        if (ins.aux) {
          for (size_t i = 0; i < n; ++i) o[i] = std::max(x[i], y[i]);
        } else {
          for (size_t i = 0; i < n; ++i) o[i] = std::min(x[i], y[i]);
        }
        break;
      }
      case VecKernel::kClampF64: {
        const ColumnVector& X = regs[args_pool_[ins.arg_begin]];
        const ColumnVector& L = regs[args_pool_[ins.arg_begin + 1]];
        const ColumnVector& H = regs[args_pool_[ins.arg_begin + 2]];
        out.Reset(FeatureType::kDouble, n);
        double* o = out.f64();
        for (size_t i = 0; i < n; ++i) {
          if (X.IsNull(i) || L.IsNull(i) || H.IsNull(i)) {
            out.SetNull(i);
            continue;
          }
          double lo = L.f64()[i], hi = H.f64()[i];
          if (lo > hi) {
            record(i, Status::InvalidArgument("clamp: lo > hi"));
            out.SetNull(i);
            continue;
          }
          o[i] = std::clamp(X.f64()[i], lo, hi);
        }
        break;
      }
      case VecKernel::kCoalesce: {
        out.Reset(ins.out_type, n);
        for (size_t r = 0; r < n; ++r) {
          const ColumnVector* hit = nullptr;
          for (uint32_t i = 0; i < ins.arg_count; ++i) {
            const ColumnVector& arg = regs[args_pool_[ins.arg_begin + i]];
            if (!arg.IsNull(r)) {
              hit = &arg;
              break;
            }
          }
          if (hit == nullptr) {
            NullCell(&out, r);
          } else {
            CopyCell(ins.out_type, *hit, r, &out);
          }
        }
        break;
      }
      case VecKernel::kIfSelect: {
        const ColumnVector& C = regs[args_pool_[ins.arg_begin]];
        const ColumnVector& T = regs[args_pool_[ins.arg_begin + 1]];
        const ColumnVector& F = regs[args_pool_[ins.arg_begin + 2]];
        out.Reset(ins.out_type, n);
        for (size_t r = 0; r < n; ++r) {
          int c = C.TriBool(r);
          const ColumnVector& pick = c == 1 ? T : F;
          if (c == -1 || pick.IsNull(r)) {
            NullCell(&out, r);
          } else {
            CopyCell(ins.out_type, pick, r, &out);
          }
        }
        break;
      }
      case VecKernel::kIsNull: {
        const ColumnVector& X = regs[args_pool_[ins.arg_begin]];
        out.Reset(FeatureType::kBool, n);
        uint8_t* o = out.b8();
        for (size_t i = 0; i < n; ++i) o[i] = X.IsNull(i);
        break;
      }
      case VecKernel::kLenStr: {
        const ColumnVector& X = regs[args_pool_[ins.arg_begin]];
        out.Reset(FeatureType::kInt64, n);
        out.CopyNullWords(X);
        int64_t* o = out.i64();
        for (size_t i = 0; i < n; ++i) {
          o[i] = static_cast<int64_t>(X.StringAt(i).size());
        }
        break;
      }
      case VecKernel::kTsField: {
        const ColumnVector& X = regs[args_pool_[ins.arg_begin]];
        out.Reset(FeatureType::kInt64, n);
        out.CopyNullWords(X);
        const int64_t* x = X.i64();
        int64_t* o = out.i64();
        if (ins.aux) {
          for (size_t i = 0; i < n; ++i) o[i] = x[i] / kMicrosPerDay;
        } else {
          for (size_t i = 0; i < n; ++i) {
            o[i] = (x[i] % kMicrosPerDay) / kMicrosPerHour;
          }
        }
        break;
      }
      case VecKernel::kDimEmb: {
        const ColumnVector& X = regs[args_pool_[ins.arg_begin]];
        out.Reset(FeatureType::kInt64, n);
        out.CopyNullWords(X);
        int64_t* o = out.i64();
        for (size_t i = 0; i < n; ++i) {
          o[i] = static_cast<int64_t>(X.EmbeddingAt(i).size());
        }
        break;
      }
      case VecKernel::kNormEmb: {
        const ColumnVector& X = regs[args_pool_[ins.arg_begin]];
        out.Reset(FeatureType::kDouble, n);
        out.CopyNullWords(X);
        double* o = out.f64();
        for (size_t i = 0; i < n; ++i) {
          double s = 0;
          for (float f : X.EmbeddingAt(i)) s += double(f) * f;
          o[i] = std::sqrt(s);
        }
        break;
      }
      case VecKernel::kAtEmb: {
        const ColumnVector& E = regs[args_pool_[ins.arg_begin]];
        const ColumnVector& I = regs[args_pool_[ins.arg_begin + 1]];
        out.Reset(FeatureType::kDouble, n);
        out.OrNullWords(E, I);
        double* o = out.f64();
        for (size_t r = 0; r < n; ++r) {
          if (out.IsNull(r)) continue;
          auto e = E.EmbeddingAt(r);
          int64_t i = I.i64()[r];
          if (i < 0 || static_cast<size_t>(i) >= e.size()) {
            record(r, Status::OutOfRange(
                          "at(): index " + std::to_string(i) +
                          " out of range for dim " + std::to_string(e.size())));
            out.SetNull(r);
            continue;
          }
          o[r] = e[static_cast<size_t>(i)];
        }
        break;
      }
      case VecKernel::kDotCosEmb: {
        const ColumnVector& X = regs[args_pool_[ins.arg_begin]];
        const ColumnVector& Y = regs[args_pool_[ins.arg_begin + 1]];
        out.Reset(FeatureType::kDouble, n);
        out.OrNullWords(X, Y);
        double* o = out.f64();
        for (size_t r = 0; r < n; ++r) {
          if (out.IsNull(r)) continue;
          auto a = X.EmbeddingAt(r);
          auto b = Y.EmbeddingAt(r);
          if (a.size() != b.size()) {
            record(r, Status::InvalidArgument(
                          "embedding dims differ: " + std::to_string(a.size()) +
                          " vs " + std::to_string(b.size())));
            out.SetNull(r);
            continue;
          }
          if (ins.aux == 0) {
            double dot = 0;
            for (size_t i = 0; i < a.size(); ++i) dot += double(a[i]) * b[i];
            o[r] = dot;
          } else {
            double dot = 0, na = 0, nb = 0;
            for (size_t i = 0; i < a.size(); ++i) {
              dot += double(a[i]) * b[i];
              na += double(a[i]) * a[i];
              nb += double(b[i]) * b[i];
            }
            double denom = std::sqrt(na) * std::sqrt(nb);
            if (denom == 0) {
              out.SetNull(r);
            } else {
              o[r] = dot / denom;
            }
          }
        }
        break;
      }
      case VecKernel::kGeneric: {
        // Always-correct per-row fallback through the shared scalar
        // runtime (used for string builtins, mixed-type coalesce/if and
        // anything downstream of a variant register).
        if (ins.out_variant) {
          out.ResetVariant(n);
        } else {
          out.Reset(ins.out_type, n);
        }
        std::vector<Value>& argv = scratch->call_args_;
        for (size_t r = 0; r < n; ++r) {
          StatusOr<Value> res = Value::Null();
          switch (ins.kind) {
            case OpKind::kUnary:
              res = ApplyUnary(ins.uop, A.GetValue(r));
              break;
            case OpKind::kBinary:
              res = ApplyBinary(ins.bop, A.GetValue(r), B.GetValue(r));
              break;
            case OpKind::kCall: {
              argv.clear();
              for (uint32_t i = 0; i < ins.arg_count; ++i) {
                argv.push_back(
                    regs[args_pool_[ins.arg_begin + i]].GetValue(r));
              }
              res = ApplyCall(*ins.fn, argv);
              break;
            }
            default:
              res = Status::Internal("generic kernel on non-op instruction");
              break;
          }
          if (!res.ok()) {
            record(r, res.status());
            if (ins.out_variant) {
              out.values()[r] = Value::Null();
            } else {
              NullCell(&out, r);
            }
            continue;
          }
          Value v = std::move(res).value();
          if (ins.out_variant) {
            out.values()[r] = std::move(v);
          } else {
            expr_internal::LoadRowCell(v, ins.out_type, r, &out);
          }
        }
        break;
      }
    }
  }
  if (err_row != SIZE_MAX) return err;
  *result = &regs[out_reg_];
  return Status::OK();
}

}  // namespace mlfs
