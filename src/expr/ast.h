#ifndef MLFS_EXPR_AST_H_
#define MLFS_EXPR_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace mlfs {

/// Binary operators of the feature-definition expression language.
enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnaryOp : uint8_t {
  kNeg,
  kNot,
};

std::string_view BinaryOpToString(BinaryOp op);
std::string_view UnaryOpToString(UnaryOp op);

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One node of a parsed feature-definition expression. Feature stores let
/// users author features as small transformation expressions over source
/// columns ("definition SQL query", paper §2.2.1); this AST is MLFS's
/// representation of those definitions.
class Expr {
 public:
  enum class Kind : uint8_t { kLiteral, kColumn, kUnary, kBinary, kCall };

  static ExprPtr Literal(Value v) {
    ExprPtr e(new Expr(Kind::kLiteral));
    e->literal_ = std::move(v);
    return e;
  }
  static ExprPtr Column(std::string name) {
    ExprPtr e(new Expr(Kind::kColumn));
    e->name_ = std::move(name);
    return e;
  }
  static ExprPtr Unary(UnaryOp op, ExprPtr operand) {
    ExprPtr e(new Expr(Kind::kUnary));
    e->unary_op_ = op;
    e->args_.push_back(std::move(operand));
    return e;
  }
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
    ExprPtr e(new Expr(Kind::kBinary));
    e->binary_op_ = op;
    e->args_.push_back(std::move(lhs));
    e->args_.push_back(std::move(rhs));
    return e;
  }
  static ExprPtr Call(std::string name, std::vector<ExprPtr> args) {
    ExprPtr e(new Expr(Kind::kCall));
    e->name_ = std::move(name);
    e->args_ = std::move(args);
    return e;
  }

  Kind kind() const { return kind_; }
  const Value& literal() const { return literal_; }
  const std::string& name() const { return name_; }
  UnaryOp unary_op() const { return unary_op_; }
  BinaryOp binary_op() const { return binary_op_; }
  const std::vector<ExprPtr>& args() const { return args_; }

  /// Column names referenced anywhere in the tree (deduplicated).
  std::vector<std::string> ReferencedColumns() const;

  /// Parenthesized rendering that re-parses to an equivalent tree.
  std::string ToString() const;

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  Kind kind_;
  Value literal_;
  std::string name_;
  UnaryOp unary_op_ = UnaryOp::kNeg;
  BinaryOp binary_op_ = BinaryOp::kAdd;
  std::vector<ExprPtr> args_;
};

}  // namespace mlfs

#endif  // MLFS_EXPR_AST_H_
