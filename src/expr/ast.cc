#include "expr/ast.h"

#include <algorithm>
#include <cstdio>

namespace mlfs {

std::string_view BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "and";
    case BinaryOp::kOr: return "or";
  }
  return "?";
}

std::string_view UnaryOpToString(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kNot: return "not";
  }
  return "?";
}

namespace {

void CollectColumns(const Expr& e, std::vector<std::string>* out) {
  if (e.kind() == Expr::Kind::kColumn) out->push_back(e.name());
  for (const auto& arg : e.args()) CollectColumns(*arg, out);
}

}  // namespace

std::vector<std::string> Expr::ReferencedColumns() const {
  std::vector<std::string> out;
  CollectColumns(*this, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kLiteral:
      if (literal_.type() == FeatureType::kDouble) {
        // Round-trip-safe: keep a decimal marker so "1.0" does not
        // re-parse as the INT64 literal 1.
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", literal_.double_value());
        std::string text(buf);
        if (text.find_first_of(".eE") == std::string::npos) text += ".0";
        return text;
      }
      return literal_.ToString();
    case Kind::kColumn:
      return name_;
    case Kind::kUnary: {
      std::string op(UnaryOpToString(unary_op_));
      std::string sep = (unary_op_ == UnaryOp::kNot) ? " " : "";
      return "(" + op + sep + args_[0]->ToString() + ")";
    }
    case Kind::kBinary:
      return "(" + args_[0]->ToString() + " " +
             std::string(BinaryOpToString(binary_op_)) + " " +
             args_[1]->ToString() + ")";
    case Kind::kCall: {
      std::string out = name_ + "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i) out += ", ";
        out += args_[i]->ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace mlfs
