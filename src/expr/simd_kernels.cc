// Runtime-dispatched typed kernels for the bytecode VM. Unlike the
// distance kernels (which tolerate re-association error), every variant
// here must be BIT-IDENTICAL to its scalar reference: the VM's contract is
// byte-identity with the tree-walking oracle, so a dispatched kernel may
// not change a single result bit. That constrains the designs:
//  - arithmetic/compare kernels are purely per-lane (no re-association);
//  - the compare kernels rebuild the scalar three-way logic from ordered
//    (quiet) masks so NaN still compares "equal";
//  - the masked sum fixes one accumulation shape — four stride-4 partial
//    sums combined as (s0+s2)+(s1+s3), null lanes contributing +0.0 —
//    implemented identically at every dispatch level.
//
// Dispatch happens once, at static-initialization time, into plain
// function pointers (the distance.cc pattern): constant-initialized to the
// scalar kernels, upgraded by a dynamic initializer, so callers running
// before this TU's initializers still get correct results.

#include "expr/simd_kernels.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define MLFS_VMSIMD_X86 1
#endif

#if defined(__aarch64__)
#include <arm_neon.h>
#define MLFS_VMSIMD_NEON 1
#endif

namespace mlfs {
namespace vmsimd {

// ---------------------------------------------------------------------------
// Scalar references (semantic ground truth).
// ---------------------------------------------------------------------------

void AddF64Scalar(const double* x, const double* y, double* o, size_t n) {
  for (size_t i = 0; i < n; ++i) o[i] = x[i] + y[i];
}

void SubF64Scalar(const double* x, const double* y, double* o, size_t n) {
  for (size_t i = 0; i < n; ++i) o[i] = x[i] - y[i];
}

void MulF64Scalar(const double* x, const double* y, double* o, size_t n) {
  for (size_t i = 0; i < n; ++i) o[i] = x[i] * y[i];
}

void DivF64Scalar(const double* x, const double* y, double* o,
                  uint64_t* null_words, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (y[i] == 0.0) {
      o[i] = 0.0;
      null_words[i >> 6] |= uint64_t{1} << (i & 63);
    } else {
      o[i] = x[i] / y[i];
    }
  }
}

void AddI64Scalar(const int64_t* x, const int64_t* y, int64_t* o, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    o[i] = static_cast<int64_t>(static_cast<uint64_t>(x[i]) +
                                static_cast<uint64_t>(y[i]));
  }
}

void SubI64Scalar(const int64_t* x, const int64_t* y, int64_t* o, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    o[i] = static_cast<int64_t>(static_cast<uint64_t>(x[i]) -
                                static_cast<uint64_t>(y[i]));
  }
}

namespace {

template <typename T, typename Pred>
inline void CmpScalarLoop(const T* x, const T* y, uint8_t* o, size_t n,
                          Pred pred) {
  for (size_t i = 0; i < n; ++i) {
    int c = (x[i] < y[i]) ? -1 : (x[i] > y[i]) ? 1 : 0;
    o[i] = pred(c);
  }
}

template <typename T>
inline void CmpScalarImpl(CmpPred pred, const T* x, const T* y, uint8_t* o,
                          size_t n) {
  switch (pred) {
    case CmpPred::kEq:
      CmpScalarLoop(x, y, o, n, [](int c) { return uint8_t(c == 0); });
      break;
    case CmpPred::kNe:
      CmpScalarLoop(x, y, o, n, [](int c) { return uint8_t(c != 0); });
      break;
    case CmpPred::kLt:
      CmpScalarLoop(x, y, o, n, [](int c) { return uint8_t(c < 0); });
      break;
    case CmpPred::kLe:
      CmpScalarLoop(x, y, o, n, [](int c) { return uint8_t(c <= 0); });
      break;
    case CmpPred::kGt:
      CmpScalarLoop(x, y, o, n, [](int c) { return uint8_t(c > 0); });
      break;
    case CmpPred::kGe:
      CmpScalarLoop(x, y, o, n, [](int c) { return uint8_t(c >= 0); });
      break;
  }
}

}  // namespace

void CmpF64Scalar(CmpPred pred, const double* x, const double* y, uint8_t* o,
                  size_t n) {
  CmpScalarImpl(pred, x, y, o, n);
}

void CmpI64Scalar(CmpPred pred, const int64_t* x, const int64_t* y,
                  uint8_t* o, size_t n) {
  CmpScalarImpl(pred, x, y, o, n);
}

void OrWordsScalar(const uint64_t* a, const uint64_t* b, uint64_t* o,
                   size_t words) {
  for (size_t i = 0; i < words; ++i) o[i] = a[i] | b[i];
}

double SumF64MaskedScalar(const double* x, const uint64_t* null_words,
                          size_t n) {
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64_t w = null_words[i >> 6] >> (i & 63);
    s0 += (w & 1) ? 0.0 : x[i];
    s1 += (w & 2) ? 0.0 : x[i + 1];
    s2 += (w & 4) ? 0.0 : x[i + 2];
    s3 += (w & 8) ? 0.0 : x[i + 3];
  }
  double sum = (s0 + s2) + (s1 + s3);
  for (; i < n; ++i) {
    sum += ((null_words[i >> 6] >> (i & 63)) & 1) ? 0.0 : x[i];
  }
  return sum;
}

size_t CountNotNull(const uint64_t* null_words, size_t n) {
  size_t nulls = 0;
  size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    nulls += static_cast<size_t>(__builtin_popcountll(null_words[i >> 6]));
  }
  if (i < n) {
    const uint64_t mask = (uint64_t{1} << (n - i)) - 1;
    nulls += static_cast<size_t>(__builtin_popcountll(null_words[i >> 6] &
                                                      mask));
  }
  return n - nulls;
}

namespace {

#if MLFS_VMSIMD_X86

__attribute__((target("avx2,fma"))) void AddF64Avx2(const double* x,
                                                    const double* y,
                                                    double* o, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(o + i, _mm256_add_pd(_mm256_loadu_pd(x + i),
                                          _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(o + i + 4, _mm256_add_pd(_mm256_loadu_pd(x + i + 4),
                                              _mm256_loadu_pd(y + i + 4)));
  }
  for (; i < n; ++i) o[i] = x[i] + y[i];
}

__attribute__((target("avx2,fma"))) void SubF64Avx2(const double* x,
                                                    const double* y,
                                                    double* o, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(o + i, _mm256_sub_pd(_mm256_loadu_pd(x + i),
                                          _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(o + i + 4, _mm256_sub_pd(_mm256_loadu_pd(x + i + 4),
                                              _mm256_loadu_pd(y + i + 4)));
  }
  for (; i < n; ++i) o[i] = x[i] - y[i];
}

__attribute__((target("avx2,fma"))) void MulF64Avx2(const double* x,
                                                    const double* y,
                                                    double* o, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(o + i, _mm256_mul_pd(_mm256_loadu_pd(x + i),
                                          _mm256_loadu_pd(y + i)));
    _mm256_storeu_pd(o + i + 4, _mm256_mul_pd(_mm256_loadu_pd(x + i + 4),
                                              _mm256_loadu_pd(y + i + 4)));
  }
  for (; i < n; ++i) o[i] = x[i] * y[i];
}

__attribute__((target("avx2,fma"))) void DivF64Avx2(const double* x,
                                                    const double* y,
                                                    double* o,
                                                    uint64_t* null_words,
                                                    size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  // Four-lane groups never straddle a bitmap word (64 % 4 == 0), so each
  // group's null bits OR into a single word.
  for (; i + 4 <= n; i += 4) {
    const __m256d vy = _mm256_loadu_pd(y + i);
    const __m256d by_zero = _mm256_cmp_pd(vy, zero, _CMP_EQ_OQ);
    const __m256d q = _mm256_div_pd(_mm256_loadu_pd(x + i), vy);
    _mm256_storeu_pd(o + i, _mm256_andnot_pd(by_zero, q));
    const int m = _mm256_movemask_pd(by_zero);
    if (m != 0) null_words[i >> 6] |= static_cast<uint64_t>(m) << (i & 63);
  }
  for (; i < n; ++i) {
    if (y[i] == 0.0) {
      o[i] = 0.0;
      null_words[i >> 6] |= uint64_t{1} << (i & 63);
    } else {
      o[i] = x[i] / y[i];
    }
  }
}

__attribute__((target("avx2"))) void AddI64Avx2(const int64_t* x,
                                                const int64_t* y, int64_t* o,
                                                size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(o + i),
        _mm256_add_epi64(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i))));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(o + i + 4),
        _mm256_add_epi64(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i + 4)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i + 4))));
  }
  for (; i < n; ++i) {
    o[i] = static_cast<int64_t>(static_cast<uint64_t>(x[i]) +
                                static_cast<uint64_t>(y[i]));
  }
}

__attribute__((target("avx2"))) void SubI64Avx2(const int64_t* x,
                                                const int64_t* y, int64_t* o,
                                                size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(o + i),
        _mm256_sub_epi64(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i))));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(o + i + 4),
        _mm256_sub_epi64(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i + 4)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i + 4))));
  }
  for (; i < n; ++i) {
    o[i] = static_cast<int64_t>(static_cast<uint64_t>(x[i]) -
                                static_cast<uint64_t>(y[i]));
  }
}

// Per-predicate bit masks from the (lt, gt) pair; `ne` is lt|gt and `eq`
// its 4-bit complement, which is exactly the scalar runtime's three-way
// logic (NaN sets neither lt nor gt, so it lands on "equal").
__attribute__((target("avx2"))) inline int PredMask(CmpPred pred, int mlt,
                                                    int mgt) {
  switch (pred) {
    case CmpPred::kEq:
      return ~(mlt | mgt) & 15;
    case CmpPred::kNe:
      return mlt | mgt;
    case CmpPred::kLt:
      return mlt;
    case CmpPred::kLe:
      return ~mgt & 15;
    case CmpPred::kGt:
      return mgt;
    case CmpPred::kGe:
      return ~mlt & 15;
  }
  return 0;
}

__attribute__((target("avx2"))) void CmpF64Avx2(CmpPred pred, const double* x,
                                                const double* y, uint8_t* o,
                                                size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    const int mlt = _mm256_movemask_pd(_mm256_cmp_pd(vx, vy, _CMP_LT_OQ));
    const int mgt = _mm256_movemask_pd(_mm256_cmp_pd(vx, vy, _CMP_GT_OQ));
    const int m = PredMask(pred, mlt, mgt);
    o[i] = m & 1;
    o[i + 1] = (m >> 1) & 1;
    o[i + 2] = (m >> 2) & 1;
    o[i + 3] = (m >> 3) & 1;
  }
  if (i < n) CmpF64Scalar(pred, x + i, y + i, o + i, n - i);
}

__attribute__((target("avx2"))) void CmpI64Avx2(CmpPred pred,
                                                const int64_t* x,
                                                const int64_t* y, uint8_t* o,
                                                size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    const int mlt =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(vy, vx)));
    const int mgt =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(vx, vy)));
    const int m = PredMask(pred, mlt, mgt);
    o[i] = m & 1;
    o[i + 1] = (m >> 1) & 1;
    o[i + 2] = (m >> 2) & 1;
    o[i + 3] = (m >> 3) & 1;
  }
  if (i < n) CmpI64Scalar(pred, x + i, y + i, o + i, n - i);
}

__attribute__((target("avx2"))) void OrWordsAvx2(const uint64_t* a,
                                                 const uint64_t* b,
                                                 uint64_t* o, size_t words) {
  size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(o + i),
        _mm256_or_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
  }
  for (; i < words; ++i) o[i] = a[i] | b[i];
}

__attribute__((target("avx2"))) double SumF64MaskedAvx2(
    const double* x, const uint64_t* null_words, size_t n) {
  // One 4-lane accumulator == the scalar reference's four stride-4 partial
  // sums; the horizontal reduce below reproduces (s0+s2)+(s1+s3) exactly.
  __m256d acc = _mm256_setzero_pd();
  const __m256i lane_bit = _mm256_setr_epi64x(1, 2, 4, 8);
  const __m256i izero = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint64_t w = (null_words[i >> 6] >> (i & 63)) & 15;
    const __m256i bits = _mm256_set1_epi64x(static_cast<long long>(w));
    const __m256i valid =
        _mm256_cmpeq_epi64(_mm256_and_si256(bits, lane_bit), izero);
    const __m256d vx =
        _mm256_and_pd(_mm256_loadu_pd(x + i), _mm256_castsi256_pd(valid));
    acc = _mm256_add_pd(acc, vx);
  }
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);  // [s0+s2, s1+s3]
  double sum =
      _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (; i < n; ++i) {
    sum += ((null_words[i >> 6] >> (i & 63)) & 1) ? 0.0 : x[i];
  }
  return sum;
}

bool CpuHasAvx2Fma() {
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#endif  // MLFS_VMSIMD_X86

#if MLFS_VMSIMD_NEON

// NEON upgrades the arithmetic kernels (per-lane ops, trivially
// bit-identical); compares and the masked reduction stay on the scalar
// reference pending aarch64 hardware to measure on.

void AddF64Neon(const double* x, const double* y, double* o, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f64(o + i, vaddq_f64(vld1q_f64(x + i), vld1q_f64(y + i)));
    vst1q_f64(o + i + 2, vaddq_f64(vld1q_f64(x + i + 2), vld1q_f64(y + i + 2)));
  }
  for (; i < n; ++i) o[i] = x[i] + y[i];
}

void SubF64Neon(const double* x, const double* y, double* o, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f64(o + i, vsubq_f64(vld1q_f64(x + i), vld1q_f64(y + i)));
    vst1q_f64(o + i + 2, vsubq_f64(vld1q_f64(x + i + 2), vld1q_f64(y + i + 2)));
  }
  for (; i < n; ++i) o[i] = x[i] - y[i];
}

void MulF64Neon(const double* x, const double* y, double* o, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f64(o + i, vmulq_f64(vld1q_f64(x + i), vld1q_f64(y + i)));
    vst1q_f64(o + i + 2, vmulq_f64(vld1q_f64(x + i + 2), vld1q_f64(y + i + 2)));
  }
  for (; i < n; ++i) o[i] = x[i] * y[i];
}

void AddI64Neon(const int64_t* x, const int64_t* y, int64_t* o, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_s64(o + i, vaddq_s64(vld1q_s64(x + i), vld1q_s64(y + i)));
    vst1q_s64(o + i + 2, vaddq_s64(vld1q_s64(x + i + 2), vld1q_s64(y + i + 2)));
  }
  for (; i < n; ++i) {
    o[i] = static_cast<int64_t>(static_cast<uint64_t>(x[i]) +
                                static_cast<uint64_t>(y[i]));
  }
}

void SubI64Neon(const int64_t* x, const int64_t* y, int64_t* o, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_s64(o + i, vsubq_s64(vld1q_s64(x + i), vld1q_s64(y + i)));
    vst1q_s64(o + i + 2, vsubq_s64(vld1q_s64(x + i + 2), vld1q_s64(y + i + 2)));
  }
  for (; i < n; ++i) {
    o[i] = static_cast<int64_t>(static_cast<uint64_t>(x[i]) -
                                static_cast<uint64_t>(y[i]));
  }
}

void OrWordsNeon(const uint64_t* a, const uint64_t* b, uint64_t* o,
                 size_t words) {
  size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    vst1q_u64(o + i, vorrq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
  }
  for (; i < words; ++i) o[i] = a[i] | b[i];
}

#endif  // MLFS_VMSIMD_NEON

std::string_view g_level = "scalar";

}  // namespace

BinF64Fn add_f64 = AddF64Scalar;
BinF64Fn sub_f64 = SubF64Scalar;
BinF64Fn mul_f64 = MulF64Scalar;
DivF64Fn div_f64 = DivF64Scalar;
BinI64Fn add_i64 = AddI64Scalar;
BinI64Fn sub_i64 = SubI64Scalar;
CmpF64Fn cmp_f64 = CmpF64Scalar;
CmpI64Fn cmp_i64 = CmpI64Scalar;
OrWordsFn or_words = OrWordsScalar;
SumF64MaskedFn sum_f64_masked = SumF64MaskedScalar;

namespace {

const bool g_dispatched = [] {
#if MLFS_VMSIMD_X86
  if (CpuHasAvx2Fma()) {
    add_f64 = AddF64Avx2;
    sub_f64 = SubF64Avx2;
    mul_f64 = MulF64Avx2;
    div_f64 = DivF64Avx2;
    add_i64 = AddI64Avx2;
    sub_i64 = SubI64Avx2;
    cmp_f64 = CmpF64Avx2;
    cmp_i64 = CmpI64Avx2;
    or_words = OrWordsAvx2;
    sum_f64_masked = SumF64MaskedAvx2;
    g_level = "avx2+fma";
  }
#elif MLFS_VMSIMD_NEON
  add_f64 = AddF64Neon;
  sub_f64 = SubF64Neon;
  mul_f64 = MulF64Neon;
  add_i64 = AddI64Neon;
  sub_i64 = SubI64Neon;
  or_words = OrWordsNeon;
  g_level = "neon";
#endif
  return true;
}();

}  // namespace

std::string_view LevelName() { return g_level; }

}  // namespace vmsimd
}  // namespace mlfs
