#include "expr/evaluator.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>

#include "common/hash.h"
#include "common/string_util.h"
#include "expr/fn_runtime.h"
#include "expr/parser.h"

namespace mlfs {
namespace expr_internal {
namespace {

bool IsNumericType(FeatureType t) { return IsNumeric(t); }

// Signed arithmetic wraps on overflow (two's complement, like the
// vectorized kernels) so results are defined — and identical across both
// engines — for every input.
int64_t WrapAdd(int64_t x, int64_t y) {
  return static_cast<int64_t>(static_cast<uint64_t>(x) +
                              static_cast<uint64_t>(y));
}
int64_t WrapSub(int64_t x, int64_t y) {
  return static_cast<int64_t>(static_cast<uint64_t>(x) -
                              static_cast<uint64_t>(y));
}
int64_t WrapMul(int64_t x, int64_t y) {
  return static_cast<int64_t>(static_cast<uint64_t>(x) *
                              static_cast<uint64_t>(y));
}
int64_t WrapNeg(int64_t x) {
  return static_cast<int64_t>(uint64_t{0} - static_cast<uint64_t>(x));
}

}  // namespace

// ---------------------------------------------------------------------------
// Runtime operator application — the single implementation shared by the
// tree-walking interpreter, the compiled row path and the VM's generic
// kernels.
// ---------------------------------------------------------------------------

StatusOr<Value> ApplyUnary(UnaryOp op, const Value& v) {
  switch (op) {
    case UnaryOp::kNeg:
      if (v.is_null()) return Value::Null();
      if (v.type() == FeatureType::kInt64) {
        return Value::Int64(WrapNeg(v.int64_value()));
      }
      if (v.type() == FeatureType::kDouble)
        return Value::Double(-v.double_value());
      return Status::InvalidArgument("operator '-' needs a numeric operand");
    case UnaryOp::kNot:
      if (v.is_null()) return Value::Null();
      if (v.type() == FeatureType::kBool) return Value::Bool(!v.bool_value());
      return Status::InvalidArgument("operator 'not' needs a BOOL operand");
  }
  return Status::Internal("bad unary op");
}

namespace {

StatusOr<Value> ApplyArithmetic(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!IsNumericType(a.type()) || !IsNumericType(b.type())) {
    // String concatenation via '+'.
    if (op == BinaryOp::kAdd && a.type() == FeatureType::kString &&
        b.type() == FeatureType::kString) {
      return Value::String(a.string_value() + b.string_value());
    }
    // Timestamp arithmetic: ts ± micros, micros + ts, ts - ts.
    if (a.type() == FeatureType::kTimestamp &&
        b.type() == FeatureType::kInt64 &&
        (op == BinaryOp::kAdd || op == BinaryOp::kSub)) {
      int64_t delta = b.int64_value();
      return Value::Time(op == BinaryOp::kAdd
                             ? WrapAdd(a.time_value(), delta)
                             : WrapSub(a.time_value(), delta));
    }
    if (a.type() == FeatureType::kInt64 &&
        b.type() == FeatureType::kTimestamp && op == BinaryOp::kAdd) {
      return Value::Time(WrapAdd(a.int64_value(), b.time_value()));
    }
    if (a.type() == FeatureType::kTimestamp &&
        b.type() == FeatureType::kTimestamp && op == BinaryOp::kSub) {
      return Value::Int64(WrapSub(a.time_value(), b.time_value()));
    }
    return Status::InvalidArgument(
        std::string("operator '") + std::string(BinaryOpToString(op)) +
        "' needs numeric operands, got " +
        std::string(FeatureTypeToString(a.type())) + " and " +
        std::string(FeatureTypeToString(b.type())));
  }
  const bool both_int = a.type() == FeatureType::kInt64 &&
                        b.type() == FeatureType::kInt64;
  if (op == BinaryOp::kDiv) {
    double da = a.AsDouble().value();
    double db = b.AsDouble().value();
    if (db == 0.0) return Value::Null();  // SQL-style: x/0 is NULL.
    return Value::Double(da / db);
  }
  if (op == BinaryOp::kMod) {
    if (!both_int) {
      return Status::InvalidArgument("operator '%' needs INT64 operands");
    }
    if (b.int64_value() == 0) return Value::Null();
    if (b.int64_value() == -1) return Value::Int64(0);  // INT64_MIN % -1
    return Value::Int64(a.int64_value() % b.int64_value());
  }
  if (both_int) {
    int64_t x = a.int64_value();
    int64_t y = b.int64_value();
    switch (op) {
      case BinaryOp::kAdd: return Value::Int64(WrapAdd(x, y));
      case BinaryOp::kSub: return Value::Int64(WrapSub(x, y));
      case BinaryOp::kMul: return Value::Int64(WrapMul(x, y));
      default: break;
    }
  }
  double x = a.AsDouble().value();
  double y = b.AsDouble().value();
  switch (op) {
    case BinaryOp::kAdd: return Value::Double(x + y);
    case BinaryOp::kSub: return Value::Double(x - y);
    case BinaryOp::kMul: return Value::Double(x * y);
    default: break;
  }
  return Status::Internal("bad arithmetic op");
}

StatusOr<Value> ApplyComparison(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  int cmp = 0;
  if (IsNumericType(a.type()) && IsNumericType(b.type())) {
    double x = a.AsDouble().value();
    double y = b.AsDouble().value();
    cmp = (x < y) ? -1 : (x > y) ? 1 : 0;
  } else if (a.type() == FeatureType::kString &&
             b.type() == FeatureType::kString) {
    cmp = a.string_value().compare(b.string_value());
    cmp = (cmp < 0) ? -1 : (cmp > 0) ? 1 : 0;
  } else if (a.type() == FeatureType::kTimestamp &&
             b.type() == FeatureType::kTimestamp) {
    Timestamp x = a.time_value(), y = b.time_value();
    cmp = (x < y) ? -1 : (x > y) ? 1 : 0;
  } else if (a.type() == FeatureType::kBool &&
             b.type() == FeatureType::kBool) {
    cmp = static_cast<int>(a.bool_value()) - static_cast<int>(b.bool_value());
  } else if (op == BinaryOp::kEq || op == BinaryOp::kNe) {
    // Heterogeneous equality: values of different type families are unequal.
    bool eq = (a == b);
    return Value::Bool(op == BinaryOp::kEq ? eq : !eq);
  } else {
    return Status::InvalidArgument(
        "cannot order " + std::string(FeatureTypeToString(a.type())) +
        " against " + std::string(FeatureTypeToString(b.type())));
  }
  switch (op) {
    case BinaryOp::kEq: return Value::Bool(cmp == 0);
    case BinaryOp::kNe: return Value::Bool(cmp != 0);
    case BinaryOp::kLt: return Value::Bool(cmp < 0);
    case BinaryOp::kLe: return Value::Bool(cmp <= 0);
    case BinaryOp::kGt: return Value::Bool(cmp > 0);
    case BinaryOp::kGe: return Value::Bool(cmp >= 0);
    default: break;
  }
  return Status::Internal("bad comparison op");
}

// Three-valued logic for and/or.
StatusOr<Value> ApplyLogical(BinaryOp op, const Value& a, const Value& b) {
  auto as_tri = [](const Value& v) -> StatusOr<int> {
    if (v.is_null()) return -1;  // Unknown.
    if (v.type() != FeatureType::kBool) {
      return Status::InvalidArgument("'and'/'or' need BOOL operands");
    }
    return v.bool_value() ? 1 : 0;
  };
  MLFS_ASSIGN_OR_RETURN(int x, as_tri(a));
  MLFS_ASSIGN_OR_RETURN(int y, as_tri(b));
  if (op == BinaryOp::kAnd) {
    if (x == 0 || y == 0) return Value::Bool(false);
    if (x == -1 || y == -1) return Value::Null();
    return Value::Bool(true);
  }
  if (x == 1 || y == 1) return Value::Bool(true);
  if (x == -1 || y == -1) return Value::Null();
  return Value::Bool(false);
}

}  // namespace

StatusOr<Value> ApplyBinary(BinaryOp op, const Value& a, const Value& b) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return ApplyArithmetic(op, a, b);
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return ApplyComparison(op, a, b);
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return ApplyLogical(op, a, b);
  }
  return Status::Internal("bad binary op");
}

// ---------------------------------------------------------------------------
// Builtin functions.
// ---------------------------------------------------------------------------

namespace {

Status NeedNumeric(const std::string& fn, FeatureType t) {
  if (!IsNumericType(t)) {
    return Status::InvalidArgument(fn + "() needs a numeric argument, got " +
                                   std::string(FeatureTypeToString(t)));
  }
  return Status::OK();
}

double UnaryMath(const std::string& name, double x) {
  if (name == "log") return std::log(x);
  if (name == "log2") return std::log2(x);
  if (name == "exp") return std::exp(x);
  if (name == "sqrt") return std::sqrt(x);
  if (name == "floor") return std::floor(x);
  if (name == "ceil") return std::ceil(x);
  if (name == "round") return std::round(x);
  return std::nan("");
}

const std::map<std::string, FunctionSpec>& FunctionTable() {
  static const auto* table = [] {
    auto* t = new std::map<std::string, FunctionSpec>();

    // --- Numeric ---------------------------------------------------------
    (*t)["abs"] = FunctionSpec{
        1, 1,
        [](const std::vector<FeatureType>& a) -> StatusOr<FeatureType> {
          MLFS_RETURN_IF_ERROR(NeedNumeric("abs", a[0]));
          return a[0] == FeatureType::kInt64 ? FeatureType::kInt64
                                             : FeatureType::kDouble;
        },
        [](const std::vector<Value>& v) -> StatusOr<Value> {
          if (v[0].type() == FeatureType::kInt64) {
            int64_t x = v[0].int64_value();
            return Value::Int64(x < 0 ? WrapNeg(x) : x);
          }
          return Value::Double(std::abs(v[0].AsDouble().value()));
        }};
    for (const char* name :
         {"log", "log2", "exp", "sqrt", "floor", "ceil", "round"}) {
      (*t)[name] = FunctionSpec{
          1, 1,
          [name](const std::vector<FeatureType>& a) -> StatusOr<FeatureType> {
            MLFS_RETURN_IF_ERROR(NeedNumeric(name, a[0]));
            return FeatureType::kDouble;
          },
          [name](const std::vector<Value>& v) -> StatusOr<Value> {
            return Value::Double(UnaryMath(name, v[0].AsDouble().value()));
          }};
    }
    (*t)["pow"] = FunctionSpec{
        2, 2,
        [](const std::vector<FeatureType>& a) -> StatusOr<FeatureType> {
          MLFS_RETURN_IF_ERROR(NeedNumeric("pow", a[0]));
          MLFS_RETURN_IF_ERROR(NeedNumeric("pow", a[1]));
          return FeatureType::kDouble;
        },
        [](const std::vector<Value>& v) -> StatusOr<Value> {
          return Value::Double(
              std::pow(v[0].AsDouble().value(), v[1].AsDouble().value()));
        }};
    for (const char* name : {"min", "max"}) {
      (*t)[name] = FunctionSpec{
          2, 2,
          [name](const std::vector<FeatureType>& a) -> StatusOr<FeatureType> {
            MLFS_RETURN_IF_ERROR(NeedNumeric(name, a[0]));
            MLFS_RETURN_IF_ERROR(NeedNumeric(name, a[1]));
            if (a[0] == FeatureType::kInt64 && a[1] == FeatureType::kInt64) {
              return FeatureType::kInt64;
            }
            return FeatureType::kDouble;
          },
          [name](const std::vector<Value>& v) -> StatusOr<Value> {
            bool want_min = std::string_view(name) == "min";
            if (v[0].type() == FeatureType::kInt64 &&
                v[1].type() == FeatureType::kInt64) {
              int64_t a = v[0].int64_value(), b = v[1].int64_value();
              return Value::Int64(want_min ? std::min(a, b) : std::max(a, b));
            }
            double a = v[0].AsDouble().value(), b = v[1].AsDouble().value();
            return Value::Double(want_min ? std::min(a, b) : std::max(a, b));
          }};
    }
    (*t)["clamp"] = FunctionSpec{
        3, 3,
        [](const std::vector<FeatureType>& a) -> StatusOr<FeatureType> {
          for (auto ty : a) MLFS_RETURN_IF_ERROR(NeedNumeric("clamp", ty));
          return FeatureType::kDouble;
        },
        [](const std::vector<Value>& v) -> StatusOr<Value> {
          double x = v[0].AsDouble().value();
          double lo = v[1].AsDouble().value();
          double hi = v[2].AsDouble().value();
          if (lo > hi) return Status::InvalidArgument("clamp: lo > hi");
          return Value::Double(std::clamp(x, lo, hi));
        }};

    // --- NULL handling ----------------------------------------------------
    (*t)["coalesce"] = FunctionSpec{
        1, SIZE_MAX,
        [](const std::vector<FeatureType>& a) -> StatusOr<FeatureType> {
          FeatureType out = FeatureType::kNull;
          for (auto ty : a) {
            MLFS_ASSIGN_OR_RETURN(out, CommonType(out, ty));
          }
          return out;
        },
        [](const std::vector<Value>& v) -> StatusOr<Value> {
          for (const auto& x : v) {
            if (!x.is_null()) return x;
          }
          return Value::Null();
        },
        /*propagate_nulls=*/false};
    (*t)["is_null"] = FunctionSpec{
        1, 1,
        [](const std::vector<FeatureType>&) -> StatusOr<FeatureType> {
          return FeatureType::kBool;
        },
        [](const std::vector<Value>& v) -> StatusOr<Value> {
          return Value::Bool(v[0].is_null());
        },
        /*propagate_nulls=*/false};
    (*t)["if"] = FunctionSpec{
        3, 3,
        [](const std::vector<FeatureType>& a) -> StatusOr<FeatureType> {
          if (a[0] != FeatureType::kBool && a[0] != FeatureType::kNull) {
            return Status::InvalidArgument("if() condition must be BOOL");
          }
          return CommonType(a[1], a[2]);
        },
        [](const std::vector<Value>& v) -> StatusOr<Value> {
          if (v[0].is_null()) return Value::Null();
          return v[0].bool_value() ? v[1] : v[2];
        },
        /*propagate_nulls=*/false};

    // --- Strings ----------------------------------------------------------
    (*t)["len"] = FunctionSpec{
        1, 1,
        [](const std::vector<FeatureType>& a) -> StatusOr<FeatureType> {
          if (a[0] != FeatureType::kString) {
            return Status::InvalidArgument("len() needs a STRING");
          }
          return FeatureType::kInt64;
        },
        [](const std::vector<Value>& v) -> StatusOr<Value> {
          return Value::Int64(static_cast<int64_t>(v[0].string_value().size()));
        }};
    (*t)["concat"] = FunctionSpec{
        2, SIZE_MAX,
        [](const std::vector<FeatureType>& a) -> StatusOr<FeatureType> {
          for (auto ty : a) {
            if (ty != FeatureType::kString) {
              return Status::InvalidArgument("concat() needs STRINGs");
            }
          }
          return FeatureType::kString;
        },
        [](const std::vector<Value>& v) -> StatusOr<Value> {
          std::string out;
          for (const auto& x : v) out += x.string_value();
          return Value::String(std::move(out));
        }};
    for (const char* name : {"lower", "upper"}) {
      (*t)[name] = FunctionSpec{
          1, 1,
          [name](const std::vector<FeatureType>& a) -> StatusOr<FeatureType> {
            if (a[0] != FeatureType::kString) {
              return Status::InvalidArgument(std::string(name) +
                                             "() needs a STRING");
            }
            return FeatureType::kString;
          },
          [name](const std::vector<Value>& v) -> StatusOr<Value> {
            std::string out = v[0].string_value();
            bool to_lower = std::string_view(name) == "lower";
            for (auto& c : out) {
              c = to_lower
                      ? static_cast<char>(std::tolower(
                            static_cast<unsigned char>(c)))
                      : static_cast<char>(std::toupper(
                            static_cast<unsigned char>(c)));
            }
            return Value::String(std::move(out));
          }};
    }

    // --- Timestamps -------------------------------------------------------
    for (const char* name : {"hour", "day"}) {
      (*t)[name] = FunctionSpec{
          1, 1,
          [name](const std::vector<FeatureType>& a) -> StatusOr<FeatureType> {
            if (a[0] != FeatureType::kTimestamp) {
              return Status::InvalidArgument(std::string(name) +
                                             "() needs a TIMESTAMP");
            }
            return FeatureType::kInt64;
          },
          [name](const std::vector<Value>& v) -> StatusOr<Value> {
            Timestamp ts = v[0].time_value();
            if (std::string_view(name) == "day") {
              return Value::Int64(ts / kMicrosPerDay);
            }
            return Value::Int64((ts % kMicrosPerDay) / kMicrosPerHour);
          }};
    }

    // --- Misc --------------------------------------------------------------
    (*t)["hash"] = FunctionSpec{
        1, 1,
        [](const std::vector<FeatureType>&) -> StatusOr<FeatureType> {
          return FeatureType::kInt64;
        },
        [](const std::vector<Value>& v) -> StatusOr<Value> {
          return Value::Int64(static_cast<int64_t>(HashValue(v[0])));
        }};

    // --- Embeddings (first-class citizens, paper §3) ------------------------
    (*t)["dim"] = FunctionSpec{
        1, 1,
        [](const std::vector<FeatureType>& a) -> StatusOr<FeatureType> {
          if (a[0] != FeatureType::kEmbedding) {
            return Status::InvalidArgument("dim() needs an EMBEDDING");
          }
          return FeatureType::kInt64;
        },
        [](const std::vector<Value>& v) -> StatusOr<Value> {
          return Value::Int64(
              static_cast<int64_t>(v[0].embedding_value().size()));
        }};
    (*t)["norm"] = FunctionSpec{
        1, 1,
        [](const std::vector<FeatureType>& a) -> StatusOr<FeatureType> {
          if (a[0] != FeatureType::kEmbedding) {
            return Status::InvalidArgument("norm() needs an EMBEDDING");
          }
          return FeatureType::kDouble;
        },
        [](const std::vector<Value>& v) -> StatusOr<Value> {
          double s = 0;
          for (float f : v[0].embedding_value()) s += double(f) * f;
          return Value::Double(std::sqrt(s));
        }};
    (*t)["at"] = FunctionSpec{
        2, 2,
        [](const std::vector<FeatureType>& a) -> StatusOr<FeatureType> {
          if (a[0] != FeatureType::kEmbedding ||
              a[1] != FeatureType::kInt64) {
            return Status::InvalidArgument("at() needs (EMBEDDING, INT64)");
          }
          return FeatureType::kDouble;
        },
        [](const std::vector<Value>& v) -> StatusOr<Value> {
          const auto& e = v[0].embedding_value();
          int64_t i = v[1].int64_value();
          if (i < 0 || static_cast<size_t>(i) >= e.size()) {
            return Status::OutOfRange("at(): index " + std::to_string(i) +
                                      " out of range for dim " +
                                      std::to_string(e.size()));
          }
          return Value::Double(e[static_cast<size_t>(i)]);
        }};
    for (const char* name : {"dot", "cosine"}) {
      (*t)[name] = FunctionSpec{
          2, 2,
          [name](const std::vector<FeatureType>& a) -> StatusOr<FeatureType> {
            if (a[0] != FeatureType::kEmbedding ||
                a[1] != FeatureType::kEmbedding) {
              return Status::InvalidArgument(std::string(name) +
                                             "() needs two EMBEDDINGs");
            }
            return FeatureType::kDouble;
          },
          [name](const std::vector<Value>& v) -> StatusOr<Value> {
            const auto& a = v[0].embedding_value();
            const auto& b = v[1].embedding_value();
            if (a.size() != b.size()) {
              return Status::InvalidArgument("embedding dims differ: " +
                                             std::to_string(a.size()) + " vs " +
                                             std::to_string(b.size()));
            }
            double dot = 0, na = 0, nb = 0;
            for (size_t i = 0; i < a.size(); ++i) {
              dot += double(a[i]) * b[i];
              na += double(a[i]) * a[i];
              nb += double(b[i]) * b[i];
            }
            if (std::string_view(name) == "dot") return Value::Double(dot);
            double denom = std::sqrt(na) * std::sqrt(nb);
            if (denom == 0) return Value::Null();
            return Value::Double(dot / denom);
          }};
    }
    return t;
  }();
  return *table;
}

}  // namespace

StatusOr<FeatureType> CommonType(FeatureType a, FeatureType b) {
  if (a == b) return a;
  if (a == FeatureType::kNull) return b;
  if (b == FeatureType::kNull) return a;
  if (IsNumericType(a) && IsNumericType(b)) return FeatureType::kDouble;
  return Status::InvalidArgument(
      "no common type between " + std::string(FeatureTypeToString(a)) +
      " and " + std::string(FeatureTypeToString(b)));
}

StatusOr<const FunctionSpec*> LookupFunction(const std::string& name,
                                             size_t num_args) {
  const auto& table = FunctionTable();
  auto it = table.find(ToLower(name));
  if (it == table.end()) {
    return Status::NotFound("unknown function '" + name + "'");
  }
  const FunctionSpec& spec = it->second;
  if (num_args < spec.min_args ||
      (spec.max_args != SIZE_MAX && num_args > spec.max_args)) {
    return Status::InvalidArgument(
        name + "() takes " + std::to_string(spec.min_args) +
        (spec.max_args == SIZE_MAX
             ? "+ arguments"
             : (spec.max_args == spec.min_args
                    ? " argument(s)"
                    : ".." + std::to_string(spec.max_args) + " arguments")) +
        ", got " + std::to_string(num_args));
  }
  return &spec;
}

StatusOr<Value> ApplyCall(const FunctionSpec& spec,
                          const std::vector<Value>& args) {
  if (spec.propagate_nulls) {
    for (const auto& a : args) {
      if (a.is_null()) return Value::Null();
    }
  }
  // Re-check argument types at runtime: the interpreter path has no static
  // type checking, and apply() implementations assume validated inputs.
  std::vector<FeatureType> types;
  types.reserve(args.size());
  for (const auto& a : args) types.push_back(a.type());
  MLFS_RETURN_IF_ERROR(spec.infer(types).status());
  return spec.apply(args);
}

// ---------------------------------------------------------------------------
// Type inference.
// ---------------------------------------------------------------------------

StatusOr<FeatureType> InferNodeType(const Expr& expr,
                                    const std::vector<FeatureType>& child_types,
                                    FeatureType column_type) {
  switch (expr.kind()) {
    case Expr::Kind::kLiteral:
      return expr.literal().type();
    case Expr::Kind::kColumn:
      return column_type;
    case Expr::Kind::kUnary: {
      FeatureType t = child_types[0];
      if (expr.unary_op() == UnaryOp::kNeg) {
        if (t == FeatureType::kNull) return FeatureType::kNull;
        if (!IsNumericType(t)) {
          return Status::InvalidArgument("operator '-' needs numeric operand");
        }
        return t == FeatureType::kInt64 ? FeatureType::kInt64
                                        : FeatureType::kDouble;
      }
      if (t != FeatureType::kBool && t != FeatureType::kNull) {
        return Status::InvalidArgument("operator 'not' needs BOOL operand");
      }
      return FeatureType::kBool;
    }
    case Expr::Kind::kBinary: {
      FeatureType a = child_types[0];
      FeatureType b = child_types[1];
      BinaryOp op = expr.binary_op();
      auto numeric_or_null = [](FeatureType t) {
        return IsNumericType(t) || t == FeatureType::kNull;
      };
      switch (op) {
        case BinaryOp::kAdd:
          if (a == FeatureType::kString && b == FeatureType::kString) {
            return FeatureType::kString;
          }
          if ((a == FeatureType::kTimestamp && b == FeatureType::kInt64) ||
              (a == FeatureType::kInt64 && b == FeatureType::kTimestamp)) {
            return FeatureType::kTimestamp;
          }
          [[fallthrough]];
        case BinaryOp::kSub:
          if (op == BinaryOp::kSub) {
            if (a == FeatureType::kTimestamp && b == FeatureType::kInt64) {
              return FeatureType::kTimestamp;
            }
            if (a == FeatureType::kTimestamp &&
                b == FeatureType::kTimestamp) {
              return FeatureType::kInt64;
            }
          }
          [[fallthrough]];
        case BinaryOp::kMul:
          if (!numeric_or_null(a) || !numeric_or_null(b)) {
            return Status::InvalidArgument(
                std::string("operator '") +
                std::string(BinaryOpToString(op)) +
                "' needs numeric operands");
          }
          if (a == FeatureType::kInt64 && b == FeatureType::kInt64) {
            return FeatureType::kInt64;
          }
          return FeatureType::kDouble;
        case BinaryOp::kDiv:
          if (!numeric_or_null(a) || !numeric_or_null(b)) {
            return Status::InvalidArgument("operator '/' needs numeric");
          }
          return FeatureType::kDouble;
        case BinaryOp::kMod:
          if ((a != FeatureType::kInt64 && a != FeatureType::kNull) ||
              (b != FeatureType::kInt64 && b != FeatureType::kNull)) {
            return Status::InvalidArgument("operator '%' needs INT64");
          }
          return FeatureType::kInt64;
        case BinaryOp::kEq:
        case BinaryOp::kNe:
          return FeatureType::kBool;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          bool orderable =
              (numeric_or_null(a) && numeric_or_null(b)) ||
              a == b || a == FeatureType::kNull || b == FeatureType::kNull;
          bool not_orderable_type = a == FeatureType::kEmbedding ||
                                    b == FeatureType::kEmbedding;
          if (!orderable || not_orderable_type) {
            return Status::InvalidArgument(
                "cannot order " + std::string(FeatureTypeToString(a)) +
                " against " + std::string(FeatureTypeToString(b)));
          }
          return FeatureType::kBool;
        }
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          if ((a != FeatureType::kBool && a != FeatureType::kNull) ||
              (b != FeatureType::kBool && b != FeatureType::kNull)) {
            return Status::InvalidArgument("'and'/'or' need BOOL operands");
          }
          return FeatureType::kBool;
      }
      return Status::Internal("bad binary op");
    }
    case Expr::Kind::kCall: {
      MLFS_ASSIGN_OR_RETURN(const FunctionSpec* spec,
                            LookupFunction(expr.name(), child_types.size()));
      return spec->infer(child_types);
    }
  }
  return Status::Internal("bad expr kind");
}

}  // namespace expr_internal

namespace {

StatusOr<FeatureType> InferTypeImpl(const Expr& expr, const Schema& schema) {
  FeatureType column_type = FeatureType::kNull;
  if (expr.kind() == Expr::Kind::kColumn) {
    int idx = schema.FieldIndex(expr.name());
    if (idx < 0) {
      return Status::NotFound("unknown column '" + expr.name() + "'");
    }
    column_type = schema.field(static_cast<size_t>(idx)).type;
  }
  std::vector<FeatureType> child_types;
  child_types.reserve(expr.args().size());
  for (const auto& arg : expr.args()) {
    MLFS_ASSIGN_OR_RETURN(FeatureType t, InferTypeImpl(*arg, schema));
    child_types.push_back(t);
  }
  return expr_internal::InferNodeType(expr, child_types, column_type);
}

}  // namespace

StatusOr<FeatureType> InferType(const Expr& expr, const Schema& schema) {
  return InferTypeImpl(expr, schema);
}

StatusOr<Value> EvalExpr(const Expr& expr, const Row& row) {
  switch (expr.kind()) {
    case Expr::Kind::kLiteral:
      return expr.literal();
    case Expr::Kind::kColumn:
      return row.ValueByName(expr.name());
    case Expr::Kind::kUnary: {
      MLFS_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.args()[0], row));
      return expr_internal::ApplyUnary(expr.unary_op(), v);
    }
    case Expr::Kind::kBinary: {
      MLFS_ASSIGN_OR_RETURN(Value a, EvalExpr(*expr.args()[0], row));
      MLFS_ASSIGN_OR_RETURN(Value b, EvalExpr(*expr.args()[1], row));
      return expr_internal::ApplyBinary(expr.binary_op(), a, b);
    }
    case Expr::Kind::kCall: {
      std::vector<Value> args;
      args.reserve(expr.args().size());
      for (const auto& arg : expr.args()) {
        MLFS_ASSIGN_OR_RETURN(Value v, EvalExpr(*arg, row));
        args.push_back(std::move(v));
      }
      MLFS_ASSIGN_OR_RETURN(const expr_internal::FunctionSpec* spec,
                            expr_internal::LookupFunction(expr.name(),
                                                          args.size()));
      return expr_internal::ApplyCall(*spec, args);
    }
  }
  return Status::Internal("bad expr kind");
}

StatusOr<CompiledExpr> CompiledExpr::Compile(const Expr& expr,
                                             SchemaPtr schema) {
  MLFS_ASSIGN_OR_RETURN(auto program, Program::Lower(expr, std::move(schema)));
  return CompiledExpr(std::move(program));
}

StatusOr<CompiledExpr> CompiledExpr::Compile(std::string_view source,
                                             SchemaPtr schema) {
  MLFS_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr(source));
  return Compile(*expr, std::move(schema));
}

StatusOr<Value> CompiledExpr::Eval(const Row& row) const {
  thread_local ExprScratch scratch;
  return program_->EvalRow(row, &scratch);
}

std::vector<std::string> BuiltinFunctionNames() {
  std::vector<std::string> names;
  for (const auto& [name, spec] : expr_internal::FunctionTable()) {
    names.push_back(name);
  }
  return names;
}

}  // namespace mlfs
