#ifndef MLFS_EXPR_FN_RUNTIME_H_
#define MLFS_EXPR_FN_RUNTIME_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "expr/ast.h"

// Shared expression runtime: the single set of operator/builtin
// implementations behind the tree-walking interpreter, the compiled row
// path and the vectorized VM's generic (per-row) kernels. Keeping one
// implementation is what makes the interpreter usable as a differential
// oracle for the VM.
namespace mlfs::expr_internal {

struct FunctionSpec {
  size_t min_args;
  size_t max_args;  // SIZE_MAX for variadic.
  // Result type given argument types (validation happens here).
  std::function<StatusOr<FeatureType>(const std::vector<FeatureType>&)> infer;
  // Runtime application. NULL propagation is handled by the caller for
  // functions with propagate_nulls == true.
  std::function<StatusOr<Value>(const std::vector<Value>&)> apply;
  bool propagate_nulls = true;
};

StatusOr<const FunctionSpec*> LookupFunction(const std::string& name,
                                             size_t num_args);

StatusOr<Value> ApplyUnary(UnaryOp op, const Value& v);
StatusOr<Value> ApplyBinary(BinaryOp op, const Value& a, const Value& b);
StatusOr<Value> ApplyCall(const FunctionSpec& spec,
                          const std::vector<Value>& args);

StatusOr<FeatureType> CommonType(FeatureType a, FeatureType b);

/// Type of `node` given already-inferred child types (one entry per
/// `node.args()` element; empty for leaves). Column nodes are resolved via
/// `column_type`, the type of the referenced column (kNull-invalid never —
/// the caller resolves the index and reports unknown columns itself).
StatusOr<FeatureType> InferNodeType(const Expr& node,
                                    const std::vector<FeatureType>& child_types,
                                    FeatureType column_type);

}  // namespace mlfs::expr_internal

#endif  // MLFS_EXPR_FN_RUNTIME_H_
