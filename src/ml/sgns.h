#ifndef MLFS_ML_SGNS_H_
#define MLFS_ML_SGNS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace mlfs {

/// Hyperparameters for skip-gram-with-negative-sampling training.
struct SgnsConfig {
  size_t dim = 32;
  int window = 2;
  int negatives = 5;
  int epochs = 3;
  double learning_rate = 0.025;
  double min_learning_rate = 1e-4;
  uint64_t seed = 1;
};

/// Trained token embeddings (row `i` = vector of token id `i`).
struct TokenEmbeddings {
  size_t vocab_size = 0;
  size_t dim = 0;
  std::vector<float> vectors;  // vocab_size * dim, row-major.

  const float* row(size_t token) const { return vectors.data() + token * dim; }
  std::vector<float> Vector(size_t token) const {
    const float* r = row(token);
    return std::vector<float>(r, r + dim);
  }
};

/// Trains word2vec-style SGNS embeddings (Mikolov et al.) over a corpus of
/// token-id sequences. This is MLFS's self-supervised pre-training
/// substrate: the "embedding training data -> pretrained embeddings" stage
/// of the paper's embedding ecosystem (§3.1). Structured side-information
/// (entity types, KG relations, per Orr et al. [22]) enters by injecting
/// extra tokens into the sequences — the trainer itself is source-agnostic.
///
/// Deterministic given config.seed. Negative sampling uses the unigram
/// distribution raised to 3/4. Tokens must be in [0, vocab_size).
StatusOr<TokenEmbeddings> TrainSgns(
    const std::vector<std::vector<int>>& corpus, size_t vocab_size,
    const SgnsConfig& config = {});

/// Cosine similarity between two rows of `emb`.
double EmbeddingCosine(const TokenEmbeddings& emb, size_t a, size_t b);

/// Token ids of the `k` nearest rows to `token` by cosine (excluding
/// itself).
std::vector<size_t> NearestTokens(const TokenEmbeddings& emb, size_t token,
                                  size_t k);

}  // namespace mlfs

#endif  // MLFS_ML_SGNS_H_
