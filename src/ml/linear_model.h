#ifndef MLFS_ML_LINEAR_MODEL_H_
#define MLFS_ML_LINEAR_MODEL_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/dataset.h"

namespace mlfs {

/// Hyperparameters for SGD training.
struct TrainConfig {
  int epochs = 20;
  double learning_rate = 0.1;
  double l2 = 1e-4;
  double momentum = 0.9;
  uint64_t seed = 42;
  /// Per-example weights (oversampling hook for slice patching); empty
  /// means uniform.
  std::vector<double> example_weights;
};

/// Multinomial logistic regression (softmax) trained with mini-batch-free
/// SGD + momentum: the downstream-model workhorse used throughout the
/// embedding-quality experiments. Deterministic given config.seed.
class SoftmaxClassifier {
 public:
  /// Trains on `data` (labels in [0, k)). Returns final average
  /// cross-entropy loss.
  StatusOr<double> Fit(const Dataset& data, const TrainConfig& config = {});

  /// Continues training from current weights (fine-tuning hook).
  StatusOr<double> FitMore(const Dataset& data, const TrainConfig& config);

  /// Argmax class for example `x` (dim must match training dim).
  StatusOr<int> Predict(const float* x, size_t dim) const;

  StatusOr<std::vector<int>> PredictBatch(const Dataset& data) const;

  /// Class-probability vector for one example.
  StatusOr<std::vector<double>> PredictProba(const float* x,
                                             size_t dim) const;

  bool trained() const { return num_classes_ > 0; }
  size_t dim() const { return dim_; }
  int num_classes() const { return num_classes_; }

  /// Weight matrix (num_classes x (dim+1), last column = bias); exposed for
  /// model-store checksumming and version-skew experiments.
  const std::vector<double>& weights() const { return w_; }
  std::vector<double>& mutable_weights() { return w_; }

 private:
  Status TrainEpochs(const Dataset& data, const TrainConfig& config,
                     double* final_loss);
  void Scores(const float* x, std::vector<double>* out) const;

  size_t dim_ = 0;
  int num_classes_ = 0;
  std::vector<double> w_;  // (dim + 1) * num_classes, row-major by class.
};

}  // namespace mlfs

#endif  // MLFS_ML_LINEAR_MODEL_H_
