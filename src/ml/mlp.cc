#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

namespace mlfs {

StatusOr<double> MlpClassifier::Fit(const Dataset& data,
                                    const TrainConfig& config) {
  if (data.size() == 0 || data.dim == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  const int k = data.num_classes();
  if (k < 2) return Status::InvalidArgument("need at least 2 classes");
  if (!config.example_weights.empty() &&
      config.example_weights.size() != data.size()) {
    return Status::InvalidArgument("example_weights size mismatch");
  }
  dim_ = data.dim;
  num_classes_ = k;
  Rng rng(config.seed);
  w1_.resize(hidden_ * (dim_ + 1));
  w2_.resize(static_cast<size_t>(k) * (hidden_ + 1));
  const double scale1 = std::sqrt(2.0 / static_cast<double>(dim_));
  for (auto& w : w1_) w = rng.Gaussian() * scale1;
  const double scale2 = std::sqrt(2.0 / static_cast<double>(hidden_));
  for (auto& w : w2_) w = rng.Gaussian() * scale2;

  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> hidden_act(hidden_);
  std::vector<double> probs(k);
  std::vector<double> hidden_grad(hidden_);

  double loss = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    loss = 0.0;
    double weight_total = 0.0;
    for (size_t idx : order) {
      const float* x = data.example(idx);
      const int y = data.labels[idx];
      const double ew =
          config.example_weights.empty() ? 1.0 : config.example_weights[idx];
      if (ew == 0.0) continue;
      Forward(x, &hidden_act, &probs);
      loss += -ew * std::log(std::max(probs[y], 1e-12));
      weight_total += ew;

      const double lr = config.learning_rate;
      std::fill(hidden_grad.begin(), hidden_grad.end(), 0.0);
      for (int c = 0; c < k; ++c) {
        const double delta = ew * (probs[c] - (c == y ? 1.0 : 0.0));
        double* w2c = w2_.data() + static_cast<size_t>(c) * (hidden_ + 1);
        for (size_t h = 0; h < hidden_; ++h) {
          hidden_grad[h] += delta * w2c[h];
          w2c[h] -= lr * (delta * hidden_act[h] + config.l2 * w2c[h]);
        }
        w2c[hidden_] -= lr * delta;
      }
      for (size_t h = 0; h < hidden_; ++h) {
        if (hidden_act[h] <= 0.0) continue;  // ReLU gate.
        double* w1h = w1_.data() + h * (dim_ + 1);
        const double delta = hidden_grad[h];
        for (size_t j = 0; j < dim_; ++j) {
          w1h[j] -= lr * (delta * x[j] + config.l2 * w1h[j]);
        }
        w1h[dim_] -= lr * delta;
      }
    }
    if (weight_total > 0) loss /= weight_total;
  }
  return loss;
}

void MlpClassifier::Forward(const float* x, std::vector<double>* hidden_out,
                            std::vector<double>* probs) const {
  hidden_out->resize(hidden_);
  for (size_t h = 0; h < hidden_; ++h) {
    const double* w1h = w1_.data() + h * (dim_ + 1);
    double s = w1h[dim_];
    for (size_t j = 0; j < dim_; ++j) s += w1h[j] * x[j];
    (*hidden_out)[h] = s > 0 ? s : 0.0;
  }
  probs->resize(num_classes_);
  double max_score = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    const double* w2c = w2_.data() + static_cast<size_t>(c) * (hidden_ + 1);
    double s = w2c[hidden_];
    for (size_t h = 0; h < hidden_; ++h) s += w2c[h] * (*hidden_out)[h];
    (*probs)[c] = s;
    max_score = std::max(max_score, s);
  }
  double z = 0.0;
  for (double& p : *probs) {
    p = std::exp(p - max_score);
    z += p;
  }
  for (double& p : *probs) p /= z;
}

StatusOr<int> MlpClassifier::Predict(const float* x, size_t dim) const {
  if (!trained()) return Status::FailedPrecondition("model not trained");
  if (dim != dim_) return Status::InvalidArgument("dimension mismatch");
  std::vector<double> hidden_act, probs;
  Forward(x, &hidden_act, &probs);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

StatusOr<std::vector<int>> MlpClassifier::PredictBatch(
    const Dataset& data) const {
  std::vector<int> out;
  out.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    MLFS_ASSIGN_OR_RETURN(int y, Predict(data.example(i), data.dim));
    out.push_back(y);
  }
  return out;
}

}  // namespace mlfs
