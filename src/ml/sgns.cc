#include "ml/sgns.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace mlfs {
namespace {

inline float Sigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

// Alias-free sampler over unigram^(3/4) using a cumulative table.
class NegativeSampler {
 public:
  NegativeSampler(const std::vector<double>& counts) {
    cdf_.resize(counts.size());
    double total = 0.0;
    for (size_t i = 0; i < counts.size(); ++i) {
      total += std::pow(counts[i], 0.75);
      cdf_[i] = total;
    }
    if (total <= 0) total = 1.0;
    for (auto& c : cdf_) c /= total;
    cdf_.back() = 1.0;
  }

  size_t Sample(Rng* rng) const {
    double u = rng->UniformDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) return cdf_.size() - 1;
    return static_cast<size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

StatusOr<TokenEmbeddings> TrainSgns(
    const std::vector<std::vector<int>>& corpus, size_t vocab_size,
    const SgnsConfig& config) {
  if (vocab_size == 0) {
    return Status::InvalidArgument("vocab_size must be positive");
  }
  if (config.dim == 0 || config.window <= 0 || config.negatives <= 0 ||
      config.epochs <= 0 || config.learning_rate <= 0) {
    return Status::InvalidArgument("bad SGNS config");
  }
  std::vector<double> counts(vocab_size, 0.0);
  uint64_t total_tokens = 0;
  for (const auto& sentence : corpus) {
    for (int token : sentence) {
      if (token < 0 || static_cast<size_t>(token) >= vocab_size) {
        return Status::InvalidArgument("token id out of range: " +
                                       std::to_string(token));
      }
      ++counts[static_cast<size_t>(token)];
      ++total_tokens;
    }
  }
  if (total_tokens == 0) {
    return Status::InvalidArgument("empty corpus");
  }

  const size_t d = config.dim;
  TokenEmbeddings emb;
  emb.vocab_size = vocab_size;
  emb.dim = d;
  emb.vectors.resize(vocab_size * d);
  std::vector<float> context(vocab_size * d, 0.0f);

  Rng rng(config.seed);
  for (auto& x : emb.vectors) {
    x = static_cast<float>((rng.UniformDouble() - 0.5) /
                           static_cast<double>(d));
  }

  NegativeSampler sampler(counts);
  const uint64_t total_steps =
      static_cast<uint64_t>(config.epochs) * total_tokens;
  uint64_t step = 0;
  std::vector<float> grad(d);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (const auto& sentence : corpus) {
      const int len = static_cast<int>(sentence.size());
      for (int pos = 0; pos < len; ++pos) {
        ++step;
        const double progress =
            static_cast<double>(step) / static_cast<double>(total_steps);
        const float lr = static_cast<float>(
            std::max(config.min_learning_rate,
                     config.learning_rate * (1.0 - progress)));
        // Dynamic window (word2vec idiom): uniform in [1, window].
        const int b = 1 + static_cast<int>(rng.Uniform(
                              static_cast<uint64_t>(config.window)));
        const size_t center = static_cast<size_t>(sentence[pos]);
        float* wc = emb.vectors.data() + center * d;
        for (int off = -b; off <= b; ++off) {
          if (off == 0) continue;
          int cpos = pos + off;
          if (cpos < 0 || cpos >= len) continue;
          const size_t context_token = static_cast<size_t>(sentence[cpos]);
          std::fill(grad.begin(), grad.end(), 0.0f);
          // One positive + k negative updates on the context matrix.
          for (int neg = 0; neg < config.negatives + 1; ++neg) {
            size_t target;
            float label;
            if (neg == 0) {
              target = context_token;
              label = 1.0f;
            } else {
              target = sampler.Sample(&rng);
              if (target == context_token) continue;
              label = 0.0f;
            }
            float* ct = context.data() + target * d;
            float dot = 0.0f;
            for (size_t j = 0; j < d; ++j) dot += wc[j] * ct[j];
            const float g = (label - Sigmoid(dot)) * lr;
            for (size_t j = 0; j < d; ++j) {
              grad[j] += g * ct[j];
              ct[j] += g * wc[j];
            }
          }
          for (size_t j = 0; j < d; ++j) wc[j] += grad[j];
        }
      }
    }
  }
  return emb;
}

double EmbeddingCosine(const TokenEmbeddings& emb, size_t a, size_t b) {
  const float* va = emb.row(a);
  const float* vb = emb.row(b);
  double dot = 0, na = 0, nb = 0;
  for (size_t j = 0; j < emb.dim; ++j) {
    dot += static_cast<double>(va[j]) * vb[j];
    na += static_cast<double>(va[j]) * va[j];
    nb += static_cast<double>(vb[j]) * vb[j];
  }
  double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0 ? dot / denom : 0.0;
}

std::vector<size_t> NearestTokens(const TokenEmbeddings& emb, size_t token,
                                  size_t k) {
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(emb.vocab_size);
  for (size_t other = 0; other < emb.vocab_size; ++other) {
    if (other == token) continue;
    scored.emplace_back(EmbeddingCosine(emb, token, other), other);
  }
  size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  std::vector<size_t> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace mlfs
