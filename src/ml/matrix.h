#ifndef MLFS_ML_MATRIX_H_
#define MLFS_ML_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace mlfs {

/// Dense row-major double matrix: the minimal linear-algebra substrate for
/// embedding-quality math (Gram matrices, eigendecompositions, projections).
/// Not optimized for large n — embedding quality metrics operate on
/// d x d Gram matrices where d is the embedding dimension (<= a few
/// hundred).
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) {
    MLFS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double at(size_t r, size_t c) const {
    MLFS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }

  Matrix Transpose() const;

  /// this * other; dimension mismatch is a programming error (CHECK).
  Matrix Multiply(const Matrix& other) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Max |a_ij - b_ij|; matrices must be the same shape.
  double MaxAbsDiff(const Matrix& other) const;

  std::string ToString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Eigendecomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Descending eigenvalues.
  std::vector<double> values;
  /// Column k of `vectors` (i.e. vectors.at(i, k)) is the unit eigenvector
  /// for values[k].
  Matrix vectors;
};

/// Cyclic Jacobi eigendecomposition of symmetric `m` (validated). Accurate
/// to ~1e-10 for the small matrices used here.
StatusOr<EigenDecomposition> SymmetricEigen(const Matrix& m,
                                            int max_sweeps = 100);

/// Orthonormal basis of the column span of `m` via modified Gram-Schmidt;
/// near-zero columns are dropped. Returns an n x r matrix, r <= cols.
Matrix OrthonormalizeColumns(const Matrix& m, double tolerance = 1e-10);

/// Thin singular value decomposition m = U diag(S) V^T for an n x d matrix
/// with n >= d, computed via the eigendecomposition of m^T m (adequate for
/// the small, well-conditioned Gram matrices used here). Singular values
/// are returned descending; U is n x d, V is d x d.
struct Svd {
  Matrix u;
  std::vector<double> singular_values;
  Matrix v;
};
StatusOr<Svd> ThinSvd(const Matrix& m);

/// Orthogonal Procrustes: the rotation (d x d orthogonal matrix) R
/// minimizing ||X R - Y||_F over orthogonal R, given same-shape n x d
/// matrices X and Y. R = U V^T where X^T Y = U S V^T.
StatusOr<Matrix> OrthogonalProcrustes(const Matrix& x, const Matrix& y);

}  // namespace mlfs

#endif  // MLFS_ML_MATRIX_H_
