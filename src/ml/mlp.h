#ifndef MLFS_ML_MLP_H_
#define MLFS_ML_MLP_H_

#include <vector>

#include "common/status.h"
#include "ml/dataset.h"
#include "ml/linear_model.h"

namespace mlfs {

/// One-hidden-layer ReLU network with a softmax head: a second downstream
/// model family (beyond SoftmaxClassifier) so embedding-quality experiments
/// can show effects that hold *across* consumers, which is the point of
/// patching at the embedding layer (paper §3.1.3). Deterministic per seed.
class MlpClassifier {
 public:
  explicit MlpClassifier(size_t hidden = 32) : hidden_(hidden) {}

  /// Trains from scratch; returns final average cross-entropy.
  StatusOr<double> Fit(const Dataset& data, const TrainConfig& config = {});

  StatusOr<int> Predict(const float* x, size_t dim) const;
  StatusOr<std::vector<int>> PredictBatch(const Dataset& data) const;

  bool trained() const { return num_classes_ > 0; }
  size_t dim() const { return dim_; }

 private:
  void Forward(const float* x, std::vector<double>* hidden_out,
               std::vector<double>* probs) const;

  size_t hidden_;
  size_t dim_ = 0;
  int num_classes_ = 0;
  // Layer 1: hidden x (dim+1); layer 2: classes x (hidden+1).
  std::vector<double> w1_;
  std::vector<double> w2_;
};

}  // namespace mlfs

#endif  // MLFS_ML_MLP_H_
