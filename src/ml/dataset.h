#ifndef MLFS_ML_DATASET_H_
#define MLFS_ML_DATASET_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace mlfs {

/// Dense classification dataset: `n` examples of dimension `dim` (flat
/// row-major features) with integer labels in [0, num_classes).
struct Dataset {
  size_t dim = 0;
  std::vector<float> features;  // n * dim.
  std::vector<int> labels;

  size_t size() const { return labels.size(); }
  const float* example(size_t i) const {
    MLFS_DCHECK(i < size());
    return features.data() + i * dim;
  }
  void Add(const std::vector<float>& x, int label) {
    MLFS_DCHECK(dim == 0 || x.size() == dim);
    if (dim == 0) dim = x.size();
    features.insert(features.end(), x.begin(), x.end());
    labels.push_back(label);
  }
  int num_classes() const {
    int max_label = -1;
    for (int y : labels) max_label = y > max_label ? y : max_label;
    return max_label + 1;
  }
};

/// Deterministic shuffled split into (train, test) with `test_fraction` of
/// examples in the test set.
inline std::pair<Dataset, Dataset> TrainTestSplit(const Dataset& data,
                                                  double test_fraction,
                                                  uint64_t seed) {
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(seed);
  rng.Shuffle(&order);
  size_t test_count = static_cast<size_t>(
      test_fraction * static_cast<double>(data.size()));
  Dataset train, test;
  train.dim = test.dim = data.dim;
  for (size_t i = 0; i < order.size(); ++i) {
    const float* x = data.example(order[i]);
    std::vector<float> row(x, x + data.dim);
    if (i < test_count) {
      test.Add(row, data.labels[order[i]]);
    } else {
      train.Add(row, data.labels[order[i]]);
    }
  }
  return {std::move(train), std::move(test)};
}

}  // namespace mlfs

#endif  // MLFS_ML_DATASET_H_
