#include "ml/metrics.h"

#include <algorithm>
#include <set>

namespace mlfs {
namespace {

Status CheckAligned(size_t a, size_t b) {
  if (a != b) {
    return Status::InvalidArgument("metric inputs have different lengths");
  }
  if (a == 0) {
    return Status::InvalidArgument("metric inputs are empty");
  }
  return Status::OK();
}

}  // namespace

StatusOr<double> Accuracy(const std::vector<int>& truth,
                          const std::vector<int>& predicted) {
  MLFS_RETURN_IF_ERROR(CheckAligned(truth.size(), predicted.size()));
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) correct += truth[i] == predicted[i];
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

StatusOr<Prf> PrecisionRecallF1(const std::vector<int>& truth,
                                const std::vector<int>& predicted,
                                int positive_class) {
  MLFS_RETURN_IF_ERROR(CheckAligned(truth.size(), predicted.size()));
  double tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    bool actual = truth[i] == positive_class;
    bool guessed = predicted[i] == positive_class;
    if (actual && guessed) ++tp;
    if (!actual && guessed) ++fp;
    if (actual && !guessed) ++fn;
  }
  Prf out;
  out.precision = (tp + fp) > 0 ? tp / (tp + fp) : 0.0;
  out.recall = (tp + fn) > 0 ? tp / (tp + fn) : 0.0;
  out.f1 = (out.precision + out.recall) > 0
               ? 2 * out.precision * out.recall /
                     (out.precision + out.recall)
               : 0.0;
  return out;
}

StatusOr<double> MacroF1(const std::vector<int>& truth,
                         const std::vector<int>& predicted) {
  MLFS_RETURN_IF_ERROR(CheckAligned(truth.size(), predicted.size()));
  std::set<int> classes(truth.begin(), truth.end());
  double sum = 0.0;
  for (int cls : classes) {
    MLFS_ASSIGN_OR_RETURN(Prf prf, PrecisionRecallF1(truth, predicted, cls));
    sum += prf.f1;
  }
  return sum / static_cast<double>(classes.size());
}

StatusOr<double> AucRoc(const std::vector<int>& truth,
                        const std::vector<double>& scores) {
  MLFS_RETURN_IF_ERROR(CheckAligned(truth.size(), scores.size()));
  size_t positives = 0;
  for (int y : truth) {
    if (y != 0 && y != 1) {
      return Status::InvalidArgument("AUC needs binary 0/1 labels");
    }
    positives += y;
  }
  size_t negatives = truth.size() - positives;
  if (positives == 0 || negatives == 0) {
    return Status::InvalidArgument("AUC needs both classes present");
  }
  // Rank-sum (Mann-Whitney) formulation with midranks for ties.
  std::vector<size_t> order(truth.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> ranks(truth.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    double midrank = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) +
                     1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }
  double positive_rank_sum = 0.0;
  for (size_t k = 0; k < truth.size(); ++k) {
    if (truth[k] == 1) positive_rank_sum += ranks[k];
  }
  double auc = (positive_rank_sum -
                static_cast<double>(positives) *
                    (static_cast<double>(positives) + 1.0) / 2.0) /
               (static_cast<double>(positives) *
                static_cast<double>(negatives));
  return auc;
}

StatusOr<double> PredictionChurn(const std::vector<int>& predictions_a,
                                 const std::vector<int>& predictions_b) {
  MLFS_RETURN_IF_ERROR(
      CheckAligned(predictions_a.size(), predictions_b.size()));
  size_t changed = 0;
  for (size_t i = 0; i < predictions_a.size(); ++i) {
    changed += predictions_a[i] != predictions_b[i];
  }
  return static_cast<double>(changed) /
         static_cast<double>(predictions_a.size());
}

}  // namespace mlfs
