#include "ml/linear_model.h"

#include <algorithm>
#include <cmath>

namespace mlfs {

Status SoftmaxClassifier::TrainEpochs(const Dataset& data,
                                      const TrainConfig& config,
                                      double* final_loss) {
  const size_t n = data.size();
  const size_t d = data.dim;
  const int k = num_classes_;
  if (!config.example_weights.empty() &&
      config.example_weights.size() != n) {
    return Status::InvalidArgument(
        "example_weights size does not match dataset");
  }
  std::vector<double> velocity(w_.size(), 0.0);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  Rng rng(config.seed);
  std::vector<double> probs(k);

  double loss = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    loss = 0.0;
    double weight_total = 0.0;
    for (size_t idx : order) {
      const float* x = data.example(idx);
      const int y = data.labels[idx];
      const double example_weight =
          config.example_weights.empty() ? 1.0 : config.example_weights[idx];
      if (example_weight == 0.0) continue;
      Scores(x, &probs);
      // Softmax with max-shift.
      double max_score = *std::max_element(probs.begin(), probs.end());
      double z = 0.0;
      for (int c = 0; c < k; ++c) {
        probs[c] = std::exp(probs[c] - max_score);
        z += probs[c];
      }
      for (int c = 0; c < k; ++c) probs[c] /= z;
      loss += -example_weight * std::log(std::max(probs[y], 1e-12));
      weight_total += example_weight;
      // Gradient step on every class row.
      const double lr = config.learning_rate;
      for (int c = 0; c < k; ++c) {
        double grad_scale =
            example_weight * (probs[c] - (c == y ? 1.0 : 0.0));
        double* wc = w_.data() + static_cast<size_t>(c) * (d + 1);
        double* vc = velocity.data() + static_cast<size_t>(c) * (d + 1);
        for (size_t j = 0; j < d; ++j) {
          double g = grad_scale * x[j] + config.l2 * wc[j];
          vc[j] = config.momentum * vc[j] - lr * g;
          wc[j] += vc[j];
        }
        double gb = grad_scale + config.l2 * wc[d];
        vc[d] = config.momentum * vc[d] - lr * gb;
        wc[d] += vc[d];
      }
    }
    if (weight_total > 0) loss /= weight_total;
  }
  *final_loss = loss;
  return Status::OK();
}

StatusOr<double> SoftmaxClassifier::Fit(const Dataset& data,
                                        const TrainConfig& config) {
  if (data.size() == 0 || data.dim == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  int k = data.num_classes();
  if (k < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }
  for (int y : data.labels) {
    if (y < 0) return Status::InvalidArgument("negative label");
  }
  dim_ = data.dim;
  num_classes_ = k;
  w_.assign(static_cast<size_t>(k) * (dim_ + 1), 0.0);
  double loss = 0.0;
  MLFS_RETURN_IF_ERROR(TrainEpochs(data, config, &loss));
  return loss;
}

StatusOr<double> SoftmaxClassifier::FitMore(const Dataset& data,
                                            const TrainConfig& config) {
  if (!trained()) {
    return Status::FailedPrecondition("FitMore before Fit");
  }
  if (data.dim != dim_) {
    return Status::InvalidArgument("dimension mismatch in FitMore");
  }
  if (data.num_classes() > num_classes_) {
    return Status::InvalidArgument("FitMore saw a new class");
  }
  double loss = 0.0;
  MLFS_RETURN_IF_ERROR(TrainEpochs(data, config, &loss));
  return loss;
}

void SoftmaxClassifier::Scores(const float* x,
                               std::vector<double>* out) const {
  out->resize(num_classes_);
  for (int c = 0; c < num_classes_; ++c) {
    const double* wc = w_.data() + static_cast<size_t>(c) * (dim_ + 1);
    double s = wc[dim_];  // Bias.
    for (size_t j = 0; j < dim_; ++j) s += wc[j] * x[j];
    (*out)[c] = s;
  }
}

StatusOr<int> SoftmaxClassifier::Predict(const float* x, size_t dim) const {
  if (!trained()) return Status::FailedPrecondition("model not trained");
  if (dim != dim_) {
    return Status::InvalidArgument("dimension mismatch: model expects " +
                                   std::to_string(dim_));
  }
  std::vector<double> scores;
  Scores(x, &scores);
  return static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

StatusOr<std::vector<int>> SoftmaxClassifier::PredictBatch(
    const Dataset& data) const {
  std::vector<int> out;
  out.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    MLFS_ASSIGN_OR_RETURN(int y, Predict(data.example(i), data.dim));
    out.push_back(y);
  }
  return out;
}

StatusOr<std::vector<double>> SoftmaxClassifier::PredictProba(
    const float* x, size_t dim) const {
  if (!trained()) return Status::FailedPrecondition("model not trained");
  if (dim != dim_) return Status::InvalidArgument("dimension mismatch");
  std::vector<double> scores;
  Scores(x, &scores);
  double max_score = *std::max_element(scores.begin(), scores.end());
  double z = 0.0;
  for (double& s : scores) {
    s = std::exp(s - max_score);
    z += s;
  }
  for (double& s : scores) s /= z;
  return scores;
}

}  // namespace mlfs
