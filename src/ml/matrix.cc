#include "ml/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace mlfs {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  MLFS_CHECK(cols_ == other.rows_)
      << "matmul shape mismatch: " << rows_ << "x" << cols_ << " * "
      << other.rows_ << "x" << other.cols_;
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = at(i, k);
      if (a == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out.at(i, j) += a * other.at(k, j);
      }
    }
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return std::sqrt(sum);
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  MLFS_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double best = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    best = std::max(best, std::abs(data_[i] - other.data_[i]));
  }
  return best;
}

std::string Matrix::ToString() const {
  std::string out = "[";
  for (size_t r = 0; r < rows_; ++r) {
    out += (r == 0) ? "[" : " [";
    for (size_t c = 0; c < cols_; ++c) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%s%.4g", c ? ", " : "", at(r, c));
      out += buf;
    }
    out += "]";
    if (r + 1 < rows_) out += "\n";
  }
  out += "]";
  return out;
}

StatusOr<EigenDecomposition> SymmetricEigen(const Matrix& m, int max_sweeps) {
  const size_t n = m.rows();
  if (n == 0 || m.cols() != n) {
    return Status::InvalidArgument("eigendecomposition needs a square matrix");
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (std::abs(m.at(i, j) - m.at(j, i)) >
          1e-8 * (1.0 + std::abs(m.at(i, j)))) {
        return Status::InvalidArgument("matrix is not symmetric");
      }
    }
  }

  Matrix a = m;  // Working copy.
  Matrix v = Matrix::Identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += a.at(p, q) * a.at(p, q);
    }
    if (off < 1e-22) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = a.at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        double app = a.at(p, p);
        double aqq = a.at(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        // Rotate rows/cols p and q of A.
        for (size_t k = 0; k < n; ++k) {
          double akp = a.at(k, p);
          double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          double apk = a.at(p, k);
          double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (size_t k = 0; k < n; ++k) {
          double vkp = v.at(k, p);
          double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return a.at(x, x) > a.at(y, y);
  });
  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (size_t k = 0; k < n; ++k) {
    out.values[k] = a.at(order[k], order[k]);
    for (size_t i = 0; i < n; ++i) out.vectors.at(i, k) = v.at(i, order[k]);
  }
  return out;
}

Matrix OrthonormalizeColumns(const Matrix& m, double tolerance) {
  const size_t n = m.rows();
  const size_t cols = m.cols();
  std::vector<std::vector<double>> basis;
  for (size_t c = 0; c < cols; ++c) {
    std::vector<double> v(n);
    for (size_t r = 0; r < n; ++r) v[r] = m.at(r, c);
    // Modified Gram-Schmidt against the accepted basis (twice, for
    // numerical stability).
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& b : basis) {
        double dot = 0.0;
        for (size_t r = 0; r < n; ++r) dot += v[r] * b[r];
        for (size_t r = 0; r < n; ++r) v[r] -= dot * b[r];
      }
    }
    double norm = 0.0;
    for (double x : v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm <= tolerance) continue;  // Linearly dependent column.
    for (double& x : v) x /= norm;
    basis.push_back(std::move(v));
  }
  Matrix out(n, basis.size());
  for (size_t c = 0; c < basis.size(); ++c) {
    for (size_t r = 0; r < n; ++r) out.at(r, c) = basis[c][r];
  }
  return out;
}

StatusOr<Svd> ThinSvd(const Matrix& m) {
  const size_t n = m.rows();
  const size_t d = m.cols();
  if (n == 0 || d == 0 || n < d) {
    return Status::InvalidArgument("ThinSvd needs an n x d matrix, n >= d");
  }
  // Gram matrix G = m^T m = V S^2 V^T.
  Matrix gram = m.Transpose().Multiply(m);
  MLFS_ASSIGN_OR_RETURN(EigenDecomposition eigen, SymmetricEigen(gram));
  Svd out;
  out.v = eigen.vectors;
  out.singular_values.resize(d);
  for (size_t k = 0; k < d; ++k) {
    out.singular_values[k] = std::sqrt(std::max(0.0, eigen.values[k]));
  }
  // U = m V S^{-1}; columns with (near-)zero singular value are left zero
  // (the thin factorization is then rank-truncated).
  out.u = Matrix(n, d);
  const double tol =
      (out.singular_values.empty() ? 0.0 : out.singular_values[0]) * 1e-12;
  Matrix mv = m.Multiply(out.v);
  for (size_t k = 0; k < d; ++k) {
    double s = out.singular_values[k];
    if (s <= tol) continue;
    for (size_t i = 0; i < n; ++i) out.u.at(i, k) = mv.at(i, k) / s;
  }
  return out;
}

StatusOr<Matrix> OrthogonalProcrustes(const Matrix& x, const Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols() || x.cols() == 0) {
    return Status::InvalidArgument(
        "Procrustes needs same-shape non-empty matrices");
  }
  if (x.rows() < x.cols()) {
    return Status::InvalidArgument(
        "Procrustes needs at least d anchor rows for a d-dim rotation");
  }
  Matrix cross = x.Transpose().Multiply(y);  // d x d.
  MLFS_ASSIGN_OR_RETURN(Svd svd, ThinSvd(cross));
  const double tol = svd.singular_values[0] * 1e-9;
  for (double s : svd.singular_values) {
    if (s <= tol) {
      return Status::FailedPrecondition(
          "cross-covariance is rank deficient; rotation is not unique");
    }
  }
  return svd.u.Multiply(svd.v.Transpose());
}

}  // namespace mlfs
