#ifndef MLFS_ML_METRICS_H_
#define MLFS_ML_METRICS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace mlfs {

/// Classification accuracy; inputs must be equal-length and non-empty.
StatusOr<double> Accuracy(const std::vector<int>& truth,
                          const std::vector<int>& predicted);

/// Precision / recall / F1 of one class (one-vs-rest).
struct Prf {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
StatusOr<Prf> PrecisionRecallF1(const std::vector<int>& truth,
                                const std::vector<int>& predicted,
                                int positive_class);

/// Unweighted mean of per-class F1 over classes present in `truth`.
StatusOr<double> MacroF1(const std::vector<int>& truth,
                         const std::vector<int>& predicted);

/// Area under the ROC curve for binary labels (0/1) given positive-class
/// scores. Ties handled by midrank.
StatusOr<double> AucRoc(const std::vector<int>& truth,
                        const std::vector<double>& scores);

/// Fraction of examples whose prediction differs between two models — the
/// *downstream instability / prediction churn* metric of Leszczynski et
/// al. [17] (paper §3.1.2).
StatusOr<double> PredictionChurn(const std::vector<int>& predictions_a,
                                 const std::vector<int>& predictions_b);

}  // namespace mlfs

#endif  // MLFS_ML_METRICS_H_
